"""Revenue accounting for a pricing function over a pricing instance.

A single-minded buyer with valuation ``v_e`` purchases iff ``p(e) <= v_e``
(we allow a tiny relative tolerance so LP round-off does not flip sales).
Revenue is the sum of prices of sold edges — the unlimited-supply objective
``R(p)`` of Section 3.3.

The actual pricing/summing is delegated to the process-wide
:class:`~repro.core.evaluator.RevenueEvaluator` (strategy ``vectorized`` by
default — segment sums over the hypergraph's CSR incidence arrays; strategy
``scalar`` is the per-edge definition kept as the parity oracle). Pass an
explicit ``evaluator`` or scope one with
:func:`repro.core.evaluator.use_strategy` to select the strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.evaluator import PRICE_TOLERANCE, RevenueEvaluator, default_evaluator
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import PricingFunction

__all__ = [
    "PRICE_TOLERANCE",
    "RevenueReport",
    "compute_revenue",
    "revenue_of_item_weights",
]


@dataclass(frozen=True)
class RevenueReport:
    """Outcome of offering a pricing function to the instance's buyers."""

    revenue: float
    num_sold: int
    num_edges: int
    prices: np.ndarray
    sold: np.ndarray  # boolean mask over edges

    @property
    def sell_through(self) -> float:
        """Fraction of buyers who purchased."""
        if self.num_edges == 0:
            return 0.0
        return self.num_sold / self.num_edges

    def normalized(self, reference: float) -> float:
        """Revenue normalized by a reference bound (e.g. sum of valuations)."""
        if reference <= 0:
            return 0.0
        return self.revenue / reference


def compute_revenue(
    pricing: PricingFunction,
    instance: PricingInstance,
    tolerance: float = PRICE_TOLERANCE,
    evaluator: RevenueEvaluator | None = None,
) -> RevenueReport:
    """Evaluate ``pricing`` against every buyer of ``instance``."""
    return (evaluator or default_evaluator()).evaluate(pricing, instance, tolerance)


def revenue_of_item_weights(
    weights: np.ndarray,
    instance: PricingInstance,
    tolerance: float = PRICE_TOLERANCE,
    evaluator: RevenueEvaluator | None = None,
) -> float:
    """Fast path: revenue of an additive pricing given as a weight vector."""
    return (evaluator or default_evaluator()).revenue_of_item_weights(
        weights, instance, tolerance
    )
