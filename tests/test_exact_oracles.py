"""Exact pricing oracles: hand-checked optima, sandwich bounds, caps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithms import (
    CIP,
    ExactItemPricing,
    ExactSubadditivePricing,
    Layering,
    LPIP,
    TabularSetPricing,
    UBP,
    UIP,
    exact_optimal_item_pricing,
    exact_optimal_subadditive_revenue,
    price_table_is_monotone_subadditive,
)
from repro.core.bounds import subadditive_upper_bound, sum_of_valuations
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import ItemPricing
from repro.exceptions import PricingError

TOL = 1e-6


def make_instance(num_items, edges, valuations, name="test"):
    return PricingInstance(Hypergraph(num_items, edges), valuations, name=name)


# ---------------------------------------------------------------------------
# Hand-computed optima
# ---------------------------------------------------------------------------


class TestExactItemKnownOptima:
    def test_disjoint_singletons_extract_everything(self):
        instance = make_instance(2, [{0}, {1}], [1.0, 2.0])
        _, revenue = exact_optimal_item_pricing(instance)
        assert revenue == pytest.approx(3.0)

    def test_nested_edges(self):
        # {0} at 1 and {0,1} at 3: w = (1, 2) sells both for 4.
        instance = make_instance(2, [{0}, {0, 1}], [1.0, 3.0])
        pricing, revenue = exact_optimal_item_pricing(instance)
        assert revenue == pytest.approx(4.0)
        assert pricing.price({0}) <= 1.0 + TOL

    def test_identical_bundles_price_once(self):
        # Two buyers want {0}: sell both at 1 (revenue 2) or one at 5.
        instance = make_instance(1, [{0}, {0}], [5.0, 1.0])
        _, revenue = exact_optimal_item_pricing(instance)
        assert revenue == pytest.approx(5.0)

        instance = make_instance(1, [{0}, {0}], [5.0, 4.0])
        _, revenue = exact_optimal_item_pricing(instance)
        assert revenue == pytest.approx(8.0)

    def test_star_extracts_full_value_through_center_item(self):
        # Edges {0,1}, {0,2}, {0}, all valued 1: w = (1, 0, 0) prices every
        # edge at exactly its valuation, so the optimum is the full 3.0.
        instance = make_instance(3, [{0, 1}, {0, 2}, {0}], [1.0, 1.0, 1.0])
        _, revenue = exact_optimal_item_pricing(instance)
        assert revenue == pytest.approx(3.0)

    def test_empty_and_zero_valued_edges_are_ignored(self):
        instance = make_instance(2, [set(), {0}, {1}], [7.0, 0.0, 2.0])
        _, revenue = exact_optimal_item_pricing(instance)
        assert revenue == pytest.approx(2.0)


class TestExactSubadditiveKnownOptima:
    def test_empty_bundle_can_be_priced(self):
        # An empty conflict set with positive valuation is only monetizable
        # by a pricing with f(empty) > 0 — item pricing gets 0 from it. But
        # monotonicity caps f(empty) at the price of every superset: selling
        # {0} at 3 caps the flat fee at 3, so the optimum is 3 + 3 = 6, not
        # 5 + 3.
        instance = make_instance(1, [set(), {0}], [5.0, 3.0])
        revenue = exact_optimal_subadditive_revenue(instance)
        assert revenue == pytest.approx(6.0)
        _, item_revenue = exact_optimal_item_pricing(instance)
        assert item_revenue == pytest.approx(3.0)

    def test_subadditive_beats_item_on_submodular_style_instance(self):
        # Lemma 4 in miniature: singletons valued 1 each plus their union
        # valued 1.5. A subadditive pricing sells every bundle at its value
        # (1 + 1 + 1.5 = 3.5). Item pricing selling all three must charge the
        # union w0 + w1, so its price is capped by 1.5, forcing
        # w0 + w1 <= 1.5 and total revenue 2 * 1.5 = 3.
        instance = make_instance(2, [{0}, {1}, {0, 1}], [1.0, 1.0, 1.5])
        sub = exact_optimal_subadditive_revenue(instance)
        assert sub == pytest.approx(3.5)
        _, item = exact_optimal_item_pricing(instance)
        assert item == pytest.approx(3.0)
        assert sub > item

    def test_oracle_output_is_arbitrage_free(self):
        instance = make_instance(
            3, [{0}, {1}, {0, 1}, {2}, set()], [2.0, 1.5, 2.5, 4.0, 0.5]
        )
        result = ExactSubadditivePricing().run(instance)
        assert isinstance(result.pricing, TabularSetPricing)
        assert price_table_is_monotone_subadditive(result.pricing)

    def test_tabular_pricing_restricts_foreign_items(self):
        table = {
            frozenset(): 0.0,
            frozenset({0}): 1.0,
            frozenset({1}): 2.0,
            frozenset({0, 1}): 2.5,
        }
        pricing = TabularSetPricing([0, 1], table)
        assert pricing.price({0, 99}) == pytest.approx(1.0)
        assert pricing.price({99}) == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# Guard rails
# ---------------------------------------------------------------------------


class TestOracleCaps:
    def test_item_oracle_refuses_large_m(self):
        edges = [{i} for i in range(6)]
        instance = make_instance(6, edges, [1.0] * 6)
        with pytest.raises(PricingError, match="max_edges"):
            ExactItemPricing(max_edges=5).run(instance)

    def test_subadditive_oracle_refuses_large_n(self):
        instance = make_instance(4, [{0, 1, 2, 3}], [1.0])
        with pytest.raises(PricingError, match="max_items"):
            ExactSubadditivePricing(max_items=3).run(instance)

    def test_invalid_caps_rejected(self):
        with pytest.raises(PricingError):
            ExactItemPricing(max_edges=0)
        with pytest.raises(PricingError):
            ExactSubadditivePricing(max_edges=0)

    def test_table_shape_is_validated(self):
        with pytest.raises(PricingError, match="entries"):
            TabularSetPricing([0, 1], {frozenset(): 0.0})


# ---------------------------------------------------------------------------
# The sandwich: heuristics <= exact item <= exact subadditive <= bounds
# ---------------------------------------------------------------------------


@st.composite
def tiny_instances(draw):
    num_items = draw(st.integers(1, 5))
    num_edges = draw(st.integers(1, 6))
    edges = [
        draw(st.sets(st.integers(0, num_items - 1), max_size=num_items))
        for _ in range(num_edges)
    ]
    valuations = [
        draw(
            st.floats(
                0, 50, allow_nan=False, allow_infinity=False, width=32
            )
        )
        for _ in range(num_edges)
    ]
    return make_instance(num_items, edges, valuations, name="tiny")


class TestSandwich:
    @settings(max_examples=25, deadline=None)
    @given(instance=tiny_instances())
    def test_item_heuristics_never_beat_exact_item(self, instance):
        _, exact = exact_optimal_item_pricing(instance)
        slack = 1e-6 + 1e-6 * exact
        for algorithm in (UIP(), LPIP(), CIP(epsilon=1.0), Layering()):
            result = algorithm.run(instance)
            assert result.revenue <= exact + slack, algorithm.name

    @settings(max_examples=15, deadline=None)
    @given(instance=tiny_instances())
    def test_exact_item_within_exact_subadditive_within_welfare(self, instance):
        _, item = exact_optimal_item_pricing(instance)
        sub = exact_optimal_subadditive_revenue(instance)
        total = sum_of_valuations(instance)
        slack = 1e-6 + 1e-6 * max(1.0, total)
        assert item <= sub + slack
        assert sub <= total + slack

    def test_greedy_bound_caveat_is_real(self):
        # bounds.py documents that the paper's greedy LP reference is an
        # upper bound only for pricings that sell *every* edge: on this
        # instance it reports 4 while the true item-pricing optimum declines
        # the cheap singletons and earns 101. The exact oracles certify the
        # caveat rather than hiding it.
        instance = make_instance(2, [{0}, {1}, {0, 1}], [1.0, 1.0, 100.0])
        greedy_bound = subadditive_upper_bound(instance)
        _, item = exact_optimal_item_pricing(instance)
        assert greedy_bound == pytest.approx(4.0)
        assert item == pytest.approx(101.0)

    @settings(max_examples=15, deadline=None)
    @given(instance=tiny_instances())
    def test_ubp_never_beats_exact_subadditive(self, instance):
        # A uniform bundle price is itself monotone subadditive.
        ubp = UBP().run(instance).revenue
        sub = exact_optimal_subadditive_revenue(instance)
        assert ubp <= sub + 1e-6 + 1e-6 * sub

    @settings(max_examples=20, deadline=None)
    @given(instance=tiny_instances())
    def test_exact_item_pricing_is_rational(self, instance):
        # Every buyer charged <= valuation among those counted as sold.
        pricing, revenue = exact_optimal_item_pricing(instance)
        assert isinstance(pricing, ItemPricing)
        assert np.all(pricing.weights >= 0)
        assert revenue >= -TOL
