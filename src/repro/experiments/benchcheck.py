"""Tolerance-based regression gate over the ``BENCH_*.json`` trajectory.

The bench suites write machine-readable summaries (``BENCH_backends.json``,
``BENCH_pricing.json``, ``BENCH_service.json``, ...) on every run; until
now CI only *uploaded* them, so a PR could quietly halve a speedup without
failing anything. ``repro-pricing bench-check`` closes that gap: it compares
a freshly written artifact directory against the committed baselines in
``benchmarks/baselines/`` and fails on regression.

Only **ratio** metrics are compared by default — the ``speedups`` block
(vectorized-vs-naive, service-vs-sequential, 4-shards-vs-1) — because
ratios survive a machine change where absolute wall times and throughput do
not. Absolute ``throughput`` entries can be opted in with a separate (very
loose) tolerance for same-fleet comparisons.

A regression is ``current < baseline * (1 - tolerance)``: with the default
tolerance of 0.5, a benchmark whose baseline speedup is 6x fails below 3x.
Improvements never fail (re-baseline by committing the new JSON). A
baseline file whose current twin is *missing* is also a failure — a
benchmark that silently stops emitting its JSON is how a perf trajectory
dies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ExperimentError

#: Metric blocks compared, with their default enablement.
RATIO_BLOCK = "speedups"
THROUGHPUT_BLOCK = "throughput"


@dataclass(frozen=True)
class BenchComparison:
    """One metric compared against its baseline."""

    file: str
    metric: str
    baseline: float
    current: float
    floor: float

    @property
    def regressed(self) -> bool:
        return self.current < self.floor

    def describe(self) -> str:
        verdict = "FAIL" if self.regressed else "ok"
        return (
            f"[{verdict}] {self.file}: {self.metric} "
            f"baseline={self.baseline:.3f} current={self.current:.3f} "
            f"floor={self.floor:.3f}"
        )


def _numeric_items(block) -> dict[str, float]:
    """Flatten a metric block to ``name -> float`` (non-numerics skipped)."""
    if not isinstance(block, dict):
        return {}
    items = {}
    for name, value in block.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            items[str(name)] = float(value)
    return items


def compare_payloads(
    baseline: dict,
    current: dict,
    *,
    file: str,
    tolerance: float,
    throughput_tolerance: float | None = None,
) -> list[BenchComparison]:
    """Compare one benchmark payload against its baseline.

    Every numeric entry of the baseline's ``speedups`` block must exist in
    the current payload and clear ``baseline * (1 - tolerance)``; a metric
    the current payload dropped counts as a regression to 0. Throughput
    entries are compared the same way only when ``throughput_tolerance`` is
    given.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ExperimentError(f"tolerance must be in [0, 1), got {tolerance}")
    plans = [(RATIO_BLOCK, tolerance)]
    if throughput_tolerance is not None:
        if not 0.0 <= throughput_tolerance < 1.0:
            raise ExperimentError(
                f"throughput tolerance must be in [0, 1), got {throughput_tolerance}"
            )
        plans.append((THROUGHPUT_BLOCK, throughput_tolerance))
    comparisons = []
    for block, block_tolerance in plans:
        baseline_items = _numeric_items(baseline.get(block))
        current_items = _numeric_items(current.get(block))
        for metric, reference in sorted(baseline_items.items()):
            comparisons.append(
                BenchComparison(
                    file=file,
                    metric=f"{block}.{metric}",
                    baseline=reference,
                    current=current_items.get(metric, 0.0),
                    floor=reference * (1.0 - block_tolerance),
                )
            )
    return comparisons


def check_bench_dirs(
    baseline_dir: str | Path,
    current_dir: str | Path,
    *,
    tolerance: float = 0.5,
    throughput_tolerance: float | None = None,
    pattern: str = "BENCH_*.json",
    allow_missing: tuple[str, ...] | list[str] = (),
) -> tuple[list[BenchComparison], list[str]]:
    """Compare every baseline ``BENCH_*.json`` against the current run.

    Returns ``(comparisons, missing)``: the per-metric comparisons plus the
    baseline files that have no current twin (each of which should fail the
    gate — see module docstring). ``allow_missing`` names baseline files a
    leg legitimately cannot produce (e.g. ``BENCH_http.json`` where sockets
    are unavailable): those are skipped without failing — but when a current
    twin *does* exist it is still compared, so the exemption never hides a
    real regression.
    """
    baseline_dir = Path(baseline_dir)
    current_dir = Path(current_dir)
    if not baseline_dir.is_dir():
        raise ExperimentError(f"baseline directory not found: {baseline_dir}")
    baselines = sorted(baseline_dir.glob(pattern))
    if not baselines:
        raise ExperimentError(
            f"no {pattern} baselines under {baseline_dir}; commit some first"
        )
    allowed = set(allow_missing)
    unknown = allowed - {path.name for path in baselines}
    if unknown:
        raise ExperimentError(
            f"--allow-missing names files with no baseline: {sorted(unknown)}"
        )
    comparisons: list[BenchComparison] = []
    missing: list[str] = []
    for baseline_path in baselines:
        current_path = current_dir / baseline_path.name
        if not current_path.is_file():
            if baseline_path.name not in allowed:
                missing.append(baseline_path.name)
            continue
        comparisons.extend(
            compare_payloads(
                json.loads(baseline_path.read_text()),
                json.loads(current_path.read_text()),
                file=baseline_path.name,
                tolerance=tolerance,
                throughput_tolerance=throughput_tolerance,
            )
        )
    return comparisons, missing


def render_report(
    comparisons: list[BenchComparison], missing: list[str]
) -> tuple[str, bool]:
    """(printable report, ok?) for a bench-check run."""
    lines = [comparison.describe() for comparison in comparisons]
    lines.extend(
        f"[FAIL] {name}: baseline has no current BENCH json (benchmark "
        f"stopped emitting?)"
        for name in missing
    )
    regressions = [c for c in comparisons if c.regressed]
    ok = not regressions and not missing
    lines.append(
        "bench-check: "
        + (
            "ok — no regressions"
            if ok
            else f"{len(regressions)} regression(s), {len(missing)} missing file(s)"
        )
        + f" across {len(comparisons)} metric(s)"
    )
    return "\n".join(lines), ok
