"""Extension experiments (repro.experiments.extensions) and their CLI path."""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.experiments.extensions import (
    extension_bayesian_saa,
    extension_heuristics,
    extension_limited_capacity,
)

#: Tiny shared settings so each experiment runs in well under a second of
#: hypergraph construction (cached across tests within the module).
SMALL = {"scale": 0.1, "support_size": 120}


class TestExtensionFigures:
    def test_heuristics_figure_shape(self):
        artifact = extension_heuristics("skewed", **SMALL)
        assert artifact.figure_id == "ext-heuristics-skewed"
        labels = [row[0] for row in artifact.data["rows"]]
        assert "ascent(uip)" in labels and "lpip" in labels
        revenue = {row[0]: row[1] for row in artifact.data["rows"]}
        assert revenue["ascent(uip)"] >= revenue["uip"] - 1e-9
        assert "normalized revenue" in artifact.text

    def test_limited_figure_monotone_welfare(self):
        artifact = extension_limited_capacity(
            "skewed", capacities=(1, 4), **SMALL
        )
        rows = artifact.data["rows"]
        assert [row[0] for row in rows] == [1, 4]
        welfare = [row[1] for row in rows]
        assert welfare[1] >= welfare[0] - 1e-6
        for _, ceiling, cip, uip, _ in rows:
            assert cip <= ceiling + 1e-6
            assert uip <= ceiling + 1e-6

    def test_saa_figure_reports_hindsight(self):
        artifact = extension_bayesian_saa(
            "skewed",
            sample_sizes=(2, 16),
            num_seeds=2,
            hindsight_rounds=5,
            **SMALL,
        )
        assert artifact.data["ev_optimal"] > 0
        assert artifact.data["hindsight"] >= artifact.data["ev_optimal"] * 0.5
        assert "hindsight" in artifact.text


class TestCLIExt:
    @pytest.mark.parametrize("experiment", ["heuristics", "limited", "saa"])
    def test_ext_commands_run(self, experiment, capsys):
        code = cli_main(
            [
                "ext",
                experiment,
                "--workload",
                "skewed",
                "--support",
                "120",
                "--scale",
                "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"ext-{'limited' if experiment == 'limited' else experiment}" \
            in out or "ext-" in out

    def test_ext_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["ext", "nope"])
