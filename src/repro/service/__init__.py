"""The serving tier: concurrent, cached, micro-batched query pricing.

Where :mod:`repro.qirana` optimizes and prices a *workload*,
:mod:`repro.service` serves a *request stream*:

- :mod:`repro.service.canonical` — plan-level fingerprints so textual
  variants of one query share a cache entry,
- :mod:`repro.service.cache` — bounded, generation-invalidated LRU caching,
- :mod:`repro.service.batching` — :class:`MicroBatcher`, the bounded-queue
  micro-batch scheduler with shed-instead-of-queue admission control,
- :mod:`repro.service.server` — :class:`PricingService`, the thread-safe
  micro-batching facade over :class:`~repro.qirana.broker.QueryMarket`,
- :mod:`repro.service.sharding` — :class:`ShardedPricingService`, the
  support-partitioned tier: one market + scheduler per shard,
  consistent-hash routing, scatter/gather quoting, and warm-start
  snapshots,
- :mod:`repro.service.multicore` — :class:`ProcessShardedPricingService`,
  the same partitioned tier across worker *processes* over shared-memory
  tensors (:mod:`repro.service.shm`) and a pipe RPC protocol
  (:mod:`repro.service.worker`): true multi-core conflict computation
  with crash supervision,
- :mod:`repro.service.http` — :class:`PricingHTTPServer`, the asyncio
  HTTP/JSON front-end (``/quote``, ``/purchase``, ``/healthz``,
  ``/readyz``, ``/metrics``) with graceful drain + warm rolling restarts,
- :mod:`repro.service.observability` — Prometheus text exposition of the
  tier's counters and the front-end's latency histograms,
- :mod:`repro.service.loadgen` / :mod:`repro.service.metrics` — synthetic
  open/closed-loop traffic (in-process or over the wire via
  :class:`HTTPServiceClient`) and (per-shard) latency accounting for
  benchmarks.
"""

from repro.service.batching import BatcherStats, BatchRequest, MicroBatcher
from repro.service.cache import CacheStats, LRUCache, QuoteCache
from repro.service.canonical import canonical_form, canonical_key
from repro.service.http import PricingHTTPServer, serve_in_thread
from repro.service.loadgen import (
    HTTPQuote,
    HTTPServiceClient,
    LoadProfile,
    LoadReport,
    run_load,
    zipf_schedule,
)
from repro.service.metrics import (
    LatencyRecorder,
    LatencySummary,
    ShardLatencyRecorder,
)
from repro.service.multicore import (
    MulticoreServiceStats,
    ProcessShardedPricingService,
    ProcessShardStats,
    fork_available,
)
from repro.service.observability import (
    LatencyHistogram,
    parse_exposition,
    render_metrics,
)
from repro.service.server import BuyerSession, PricingService, ServiceStats
from repro.service.sharding import (
    ConsistentHashRouter,
    ShardedPricingService,
    ShardedServiceStats,
    ShardPartition,
    ShardStats,
    partition_support,
)
from repro.service.shm import SegmentRegistry

__all__ = [
    "BatchRequest",
    "BatcherStats",
    "BuyerSession",
    "CacheStats",
    "ConsistentHashRouter",
    "HTTPQuote",
    "HTTPServiceClient",
    "LRUCache",
    "LatencyHistogram",
    "LatencyRecorder",
    "LatencySummary",
    "LoadProfile",
    "LoadReport",
    "MicroBatcher",
    "MulticoreServiceStats",
    "PricingHTTPServer",
    "PricingService",
    "ProcessShardStats",
    "ProcessShardedPricingService",
    "QuoteCache",
    "SegmentRegistry",
    "ServiceStats",
    "ShardLatencyRecorder",
    "ShardPartition",
    "ShardStats",
    "ShardedPricingService",
    "ShardedServiceStats",
    "canonical_form",
    "canonical_key",
    "fork_available",
    "parse_exposition",
    "partition_support",
    "render_metrics",
    "run_load",
    "serve_in_thread",
    "zipf_schedule",
]
