"""A day in a data marketplace: the paper's motivating scenario, served live.

The seller lists the ``world`` dataset; data analysts (the paper's "Alice")
issue targeted SQL queries instead of buying the whole dataset. The broker:

1. samples a Qirana support set,
2. learns buyer demand (the skewed 986-query workload with an additive
   valuation model — some parts of the data are worth more than others),
3. optimizes an arbitrage-free item pricing,
4. stands up a ``PricingService`` — the concurrent serving tier with a
   canonical quote cache and micro-batched quoting — and serves a mixed
   stream of buyers, rejecting none of the arbitrage attacks,
5. reports what a serving tier reports: throughput, latency percentiles,
   and cache hit rates,
6. scales out: a ``ShardedPricingService`` partitions the support set
   across four markets/schedulers with consistent-hash routing and bounded
   per-shard queues, serves the same traffic at the same (bit-equal)
   prices, then snapshots its canonical quote cache so tomorrow's restart
   opens warm.

Run:  python examples/data_marketplace.py        (about a minute)
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.algorithms import LPIP, UBP
from repro.qirana import QueryMarket, verify_arbitrage_freeness
from repro.service import (
    LoadProfile,
    PricingService,
    ShardedPricingService,
    run_load,
)
from repro.valuations import AdditiveValuations
from repro.workloads.world import world_workload


def main() -> None:
    # --- 1. the listing --------------------------------------------------
    workload = world_workload(scale=0.2)  # 986 queries, smaller data
    database = workload.database
    print(f"listed dataset: {database.name} "
          f"({', '.join(f'{r.schema.name}({len(r)})' for r in database.tables())})")

    support = workload.support(size=400, seed=0, cells_per_instance=2)
    print(f"support set: {len(support)} neighboring instances\n")

    # --- 2. demand research ----------------------------------------------
    texts = [query.text for query in workload.queries]
    hypergraph = workload.hypergraph(support)
    model = AdditiveValuations(k=10, assigner="uniform")
    valuations = model.generate(hypergraph, np.random.default_rng(1))
    print(f"market research: {len(texts)} queries, "
          f"total willingness-to-pay {valuations.sum():.0f}")

    # --- 3. pricing optimization -----------------------------------------
    instance = model.instance(hypergraph, rng=np.random.default_rng(1))
    flat = UBP().run(instance)
    smart = LPIP(max_programs=60).run(instance)
    print(f"flat fee (status quo):  revenue {flat.revenue:9.1f} "
          f"({flat.revenue / valuations.sum():.1%} of demand)")
    print(f"item pricing (LPIP):    revenue {smart.revenue:9.1f} "
          f"({smart.revenue / valuations.sum():.1%} of demand)")
    print(f"uplift from query-based pricing: "
          f"{smart.revenue / max(flat.revenue, 1e-9):.2f}x\n")

    # --- 4. the serving tier ----------------------------------------------
    market = QueryMarket(support)
    # Prime the broker's bundle cache with the workload's conflict sets.
    market.build_hypergraph(workload.queries)
    with PricingService(market, max_batch_size=32) as service:
        service.install_pricing(smart.pricing)

        # A handful of named analysts buy through history-aware sessions:
        # returning buyers pay marginal prices for overlapping queries.
        rng = np.random.default_rng(2)
        buyers = rng.choice(len(texts), size=25, replace=False)
        for position, query_index in enumerate(buyers[:6]):
            sql = texts[query_index]
            budget = float(valuations[query_index])
            session = service.session(f"analyst-{position}")
            answer, quote = session.purchase(sql, valuation=budget)
            outcome = (
                f"bought for {quote.marginal_price:.2f}" if answer else "walked away"
            )
            print(f"analyst-{position}: budget {budget:7.2f}, {outcome}")
            print(f"  {sql[:90]}")

        print(f"\nledger: {len(service.transactions)} sales, "
              f"revenue {service.revenue:.2f}")

        # Anonymous traffic: a zipf-repeated request stream from 8 concurrent
        # clients — the canonical cache and the micro-batcher at work.
        report = run_load(
            service,
            texts[:200],
            LoadProfile(num_requests=2000, num_clients=8, zipf_s=1.1, seed=3),
        )
        print(f"\nserving {report.requests} quote requests "
              f"from 8 concurrent clients:")
        print(f"  throughput: {report.throughput_rps:,.0f} req/s  "
              f"(p50 {report.latency.p50_ms:.3f}ms, "
              f"p99 {report.latency.p99_ms:.3f}ms)")
        cache = report.service["quote_cache"]
        print(f"  quote cache: {cache['hit_rate']:.1%} hit rate "
              f"({cache['hits']} hits / {cache['misses']} misses)")
        print(f"  micro-batches: {report.service['batches']} flushed, "
              f"mean size {report.service['mean_batch_size']:.1f}, "
              f"max {report.service['max_batch_size']}")

        # --- 5. no arbitrage -----------------------------------------------
        violations = verify_arbitrage_freeness(
            service.pricing, len(support), trials=300, rng=3
        )
        print(f"\narbitrage check over 600 sampled bundle pairs: "
              f"{'no violations' if not violations else violations[:1]}")

        # Information arbitrage, concretely: a narrower query never costs
        # more — and textual variants of it hit the same cache entry.
        narrow = service.quote(
            "select count(Name) from Country where Continent = 'Asia'"
        )
        variant = service.quote(
            "SELECT count(Name) FROM Country c WHERE c.Continent = 'Asia'"
        )
        broad = service.quote(
            "select Continent, count(Name) from Country group by Continent"
        )
        print(f"narrow query: {narrow.price:.2f} "
              f"(alias/case variant, same cache entry: {variant.price:.2f}), "
              f"broader query: {broad.price:.2f} "
              f"(subset bundle: {narrow.bundle <= broad.bundle})")

    # --- 6. scale-out: the sharded tier ------------------------------------
    # Four markets over four support partitions, one scheduler each;
    # requests route to a home shard by consistent hashing on the canonical
    # key, misses scatter/gather partial conflict sets, and bounded
    # per-shard queues shed (ServiceOverloadError) instead of queueing
    # unboundedly under overload.
    print("\nscaling out to 4 shards "
          f"({len(support)} support instances, round-robin partitions):")
    with ShardedPricingService(
        support, num_shards=4, max_batch_size=32, max_queue_depth=256
    ) as sharded:
        sharded.install_pricing(smart.pricing)
        report = run_load(
            sharded,
            texts[:200],
            LoadProfile(num_requests=2000, num_clients=8, zipf_s=1.1, seed=3),
        )
        for quote, label in ((narrow, "narrow"), (broad, "broad")):
            sharded_price = sharded.quote(quote.query_text).price
            assert sharded_price == quote.price, (label, sharded_price)
        print(f"  throughput: {report.throughput_rps:,.0f} req/s, "
              f"{report.shed} shed; prices bit-equal to the single market")
        stats = report.service
        for shard in stats["shards"]:
            shard_latency = report.per_shard.get(shard["shard_id"]) if report.per_shard else None
            p99 = f", p99 {shard_latency.p99_ms:.3f}ms" if shard_latency else ""
            print(f"  shard {shard['shard_id']}: "
                  f"|S|={shard['support_size']}, "
                  f"hit rate {shard['quote_cache']['hit_rate']:.1%}, "
                  f"{shard['batcher']['batches']} batches{p99}")

        # Warm-start snapshot: the canonical quote cache itself persists, so
        # a restarted tier (here: 8 shards — resharding keeps most keys
        # home) serves yesterday's working set without touching an engine.
        snapshot_path = Path(tempfile.gettempdir()) / "marketplace-tier.json"
        sharded.snapshot(snapshot_path)
    restarted = ShardedPricingService(support, num_shards=8, start=False)
    restarted.restore(snapshot_path)
    warm = restarted.quote(narrow.query_text)
    totals = restarted.stats().quote_cache_totals()
    print(f"\nrestart (8 shards) from {snapshot_path.name}: "
          f"first quote {warm.price:.2f} served from the restored cache "
          f"({totals['hits']} hit / {totals['misses']} misses)")
    snapshot_path.unlink()


if __name__ == "__main__":
    main()
