"""Columnar (batched) expression and plan evaluation.

The scalar path in :mod:`repro.db.expr` compiles expressions into
``row -> value`` closures: fine for answering one query, ruinous for conflict
sets, where the same handful of expressions is evaluated against thousands of
candidate support instances. This module is the batched twin: a column is a
NumPy vector plus a NULL mask, a batch is one vector per scope slot, and an
expression compiles into a ``batch -> vector`` function — so deciding every
candidate of a query costs a handful of array operations instead of a Python
loop.

Representation
--------------
Numeric columns (``INT``/``FLOAT``) become ``float64`` arrays with NULLs as
NaN + mask; everything else becomes ``object`` arrays. Integers are exact in
``float64`` up to 2**53, far beyond the workloads' key and population ranges;
comparisons between old and new versions of a cell are therefore exact.

NULL semantics mirror the scalar evaluators bit for bit: comparisons
involving NULL are false, ``AND``/``OR`` treat unknown as false, arithmetic
propagates NULL, and division by zero yields NULL.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Scope,
    _like_to_regex,
)
from repro.db.schema import ColumnType, Value
from repro.exceptions import QueryError


@dataclass
class ColumnVector:
    """One column of a batch: values plus a NULL mask.

    ``values`` is ``float64`` (NaN at NULLs), ``bool`` (predicate results,
    never NULL), or ``object``. ``null`` is a boolean mask, True at NULLs.
    """

    values: np.ndarray
    null: np.ndarray

    @property
    def size(self) -> int:
        return len(self.values)

    @property
    def is_numeric(self) -> bool:
        return self.values.dtype.kind in "fb"

    def copy(self) -> "ColumnVector":
        return ColumnVector(self.values.copy(), self.null.copy())

    def take(self, indices: np.ndarray) -> "ColumnVector":
        return ColumnVector(self.values.take(indices), self.null.take(indices))

    def value_at(self, index: int) -> Value:
        """The Python-level value at ``index`` (None for NULL)."""
        if self.null[index]:
            return None
        value = self.values[index]
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.bool_):
            return bool(value)
        return value

    def as_object(self) -> np.ndarray:
        """The column as an object array with ``None`` at NULLs."""
        out = self.values.astype(object)
        if self.null.any():
            out[self.null] = None
        return out


def vector_from_values(values: list[Value], dtype: ColumnType | None = None) -> ColumnVector:
    """Columnarize a list of scalar values.

    ``dtype`` (from the table schema) short-circuits kind detection; without
    it the column is numeric iff every non-NULL value is an int/float.
    """
    null = np.fromiter((value is None for value in values), dtype=bool, count=len(values))
    numeric = (
        dtype in (ColumnType.INT, ColumnType.FLOAT)
        if dtype is not None
        else all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in values
            if value is not None
        )
    )
    if numeric:
        data = np.fromiter(
            (np.nan if value is None else float(value) for value in values),
            dtype=np.float64,
            count=len(values),
        )
    else:
        data = np.empty(len(values), dtype=object)
        data[:] = values
    return ColumnVector(data, null)


@dataclass
class ColumnarBatch:
    """A batch of rows in columnar form: one vector per scope slot.

    Slots an evaluator never references may be ``None`` (the conflict engine
    only materializes a query's referenced cells).
    """

    scope: Scope
    columns: list[ColumnVector | None]
    num_rows: int

    def compress(self, mask: np.ndarray) -> "ColumnarBatch":
        """Keep only the rows where ``mask`` is True."""
        indices = np.nonzero(mask)[0]
        return ColumnarBatch(
            self.scope,
            [column.take(indices) if column is not None else None for column in self.columns],
            int(len(indices)),
        )

    def take(self, indices: np.ndarray) -> "ColumnarBatch":
        """A new batch of the rows at ``indices`` (repeats allowed)."""
        return ColumnarBatch(
            self.scope,
            [column.take(indices) if column is not None else None for column in self.columns],
            int(len(indices)),
        )


#: A compiled batch expression: maps a batch to one vector of results.
BatchEvaluator = Callable[[ColumnarBatch], ColumnVector]


class LiteralBindings:
    """The mutable literal vector a parameterized template reads at call time.

    A template compiles once with each stripped Literal node assigned a
    position in this vector (see ``param_slots`` on :func:`compile_expr`);
    executing the Nth literal-variant then *binds* its extracted literals
    here instead of recompiling — the compiled closures read the slot on
    every evaluation. The holder is shared by every evaluator of one
    template, so installing a variant's vector re-targets all of them at
    once. Not safe for concurrent evaluation of different variants.
    """

    __slots__ = ("values",)

    def __init__(self, values: tuple[Value, ...] = ()):
        self.values = tuple(values)


def table_batch(relation, scope: Scope | None = None) -> ColumnarBatch:
    """Columnarize a whole relation (all rows, all columns)."""
    schema = relation.schema
    if scope is None:
        scope = Scope([(schema.name, name) for name in schema.column_names])
    transposed = list(zip(*relation.rows)) if relation.rows else [
        () for _ in schema.columns
    ]
    columns = [
        vector_from_values(list(values), column.dtype)
        for values, column in zip(transposed, schema.columns)
    ]
    return ColumnarBatch(scope, columns, len(relation))


# ---------------------------------------------------------------------------
# Helpers shared by the compiled evaluators
# ---------------------------------------------------------------------------


def _false_vector(n: int) -> ColumnVector:
    return ColumnVector(np.zeros(n, dtype=bool), np.zeros(n, dtype=bool))


def _bool_vector(values: np.ndarray) -> ColumnVector:
    return ColumnVector(values, np.zeros(len(values), dtype=bool))


def truth(vector: ColumnVector) -> np.ndarray:
    """SQL truthiness: NULL and falsy values are False."""
    values = vector.values
    if values.dtype == bool:
        truthy = values
    elif values.dtype.kind == "f":
        with np.errstate(invalid="ignore"):
            truthy = values != 0.0
    else:
        truthy = np.fromiter(
            (bool(value) for value in values), dtype=bool, count=len(values)
        )
    return truthy & ~vector.null


_NUMPY_COMPARATORS = {
    "=": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ORDERING_OPS = {"<", "<=", ">", ">="}


def _aligned_values(a: ColumnVector, b: ColumnVector, op: str) -> tuple[np.ndarray, np.ndarray]:
    """Value arrays of two operands coerced to a comparable common kind."""
    if a.is_numeric == b.is_numeric:
        return a.values, b.values
    if op in _ORDERING_OPS:
        # The scalar path raises on e.g. str < int; mismatched kinds here
        # mean the whole column would raise on its first non-NULL row.
        raise QueryError("cannot compare numeric and non-numeric columns")
    return a.as_object(), b.as_object()


def _compare(op: str, a: ColumnVector, b: ColumnVector) -> np.ndarray:
    """Elementwise comparison with SQL NULL semantics (NULL compares false)."""
    left, right = _aligned_values(a, b, op)
    try:
        with np.errstate(invalid="ignore"):
            raw = _NUMPY_COMPARATORS[op](left, right)
    except TypeError:
        raise QueryError(
            f"cannot compare columns of kinds {left.dtype} and {right.dtype}"
        ) from None
    return np.asarray(raw, dtype=bool) & ~a.null & ~b.null


# ---------------------------------------------------------------------------
# Expression compiler
# ---------------------------------------------------------------------------


def _literal_vector(value: Value, n: int) -> ColumnVector:
    """A constant broadcast to ``n`` rows (NULL, numeric, or object)."""
    if value is None:
        return ColumnVector(np.full(n, np.nan), np.ones(n, dtype=bool))
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return ColumnVector(np.full(n, float(value)), np.zeros(n, dtype=bool))
    data = np.empty(n, dtype=object)
    data[:] = value
    return ColumnVector(data, np.zeros(n, dtype=bool))


def compile_expr(
    expression: Expr,
    scope: Scope,
    bindings: LiteralBindings | None = None,
    param_slots: dict[int, int] | None = None,
) -> BatchEvaluator:
    """Compile ``expression`` against ``scope`` into a batch evaluator.

    The batched twin of :meth:`Expr.bind`; every expression type is
    supported, so batch-evaluability is decided at the plan level, not here.

    ``param_slots`` maps ``id(literal_node)`` to a position in ``bindings``:
    a Literal listed there compiles into a closure that reads
    ``bindings.values[slot]`` at evaluation time instead of baking the value
    in, which is how one compiled template serves every literal-variant.
    Literals not listed (and every structural value: LIKE patterns, IN-list
    members) are baked in exactly as before.
    """
    if isinstance(expression, ColumnRef):
        slot = scope.resolve(expression.qualifier, expression.name)

        def eval_column(batch: ColumnarBatch, index=slot) -> ColumnVector:
            column = batch.columns[index]
            if column is None:
                raise QueryError(
                    f"batch is missing column slot {index} "
                    f"({batch.scope.slots[index]})"
                )
            return column

        return eval_column

    if isinstance(expression, Literal):
        slot = None if param_slots is None else param_slots.get(id(expression))
        if slot is not None:

            def eval_param(batch: ColumnarBatch, slot=slot) -> ColumnVector:
                return _literal_vector(bindings.values[slot], batch.num_rows)

            return eval_param
        value = expression.value

        def eval_literal(batch: ColumnarBatch) -> ColumnVector:
            return _literal_vector(value, batch.num_rows)

        return eval_literal

    if isinstance(expression, Comparison):
        op = expression.op
        left = compile_expr(expression.left, scope, bindings, param_slots)
        right = compile_expr(expression.right, scope, bindings, param_slots)
        return lambda batch: _bool_vector(_compare(op, left(batch), right(batch)))

    if isinstance(expression, Between):
        operand = compile_expr(expression.operand, scope, bindings, param_slots)
        low = compile_expr(expression.low, scope, bindings, param_slots)
        high = compile_expr(expression.high, scope, bindings, param_slots)

        def eval_between(batch: ColumnarBatch) -> ColumnVector:
            value = operand(batch)
            return _bool_vector(
                _compare("<=", low(batch), value) & _compare("<=", value, high(batch))
            )

        return eval_between

    if isinstance(expression, Like):
        operand = compile_expr(expression.operand, scope, bindings, param_slots)
        regex = re.compile(_like_to_regex(expression.pattern), re.IGNORECASE | re.DOTALL)
        negated = expression.negated

        def eval_like(batch: ColumnarBatch) -> ColumnVector:
            vector = operand(batch)
            values = vector.as_object() if vector.is_numeric else vector.values
            matched = np.fromiter(
                (
                    isinstance(value, str) and regex.fullmatch(value) is not None
                    for value in values
                ),
                dtype=bool,
                count=vector.size,
            )
            # Non-string and NULL operands are false under either polarity.
            applicable = np.fromiter(
                (isinstance(value, str) for value in values),
                dtype=bool,
                count=vector.size,
            ) & ~vector.null
            result = (~matched if negated else matched) & applicable
            return _bool_vector(result)

        return eval_like

    if isinstance(expression, InList):
        operand = compile_expr(expression.operand, scope, bindings, param_slots)
        members = set(expression.values)
        numeric_members = np.array(
            sorted(
                float(value)
                for value in members
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ),
            dtype=np.float64,
        )
        negated = expression.negated

        def eval_in(batch: ColumnarBatch) -> ColumnVector:
            vector = operand(batch)
            if vector.is_numeric:
                contained = np.isin(vector.values, numeric_members)
            else:
                contained = np.fromiter(
                    (value in members for value in vector.values),
                    dtype=bool,
                    count=vector.size,
                )
            result = (~contained if negated else contained) & ~vector.null
            return _bool_vector(result)

        return eval_in

    if isinstance(expression, IsNull):
        operand = compile_expr(expression.operand, scope, bindings, param_slots)
        negated = expression.negated
        return lambda batch: _bool_vector(
            ~operand(batch).null if negated else operand(batch).null.copy()
        )

    if isinstance(expression, And):
        left = compile_expr(expression.left, scope, bindings, param_slots)
        right = compile_expr(expression.right, scope, bindings, param_slots)
        return lambda batch: _bool_vector(truth(left(batch)) & truth(right(batch)))

    if isinstance(expression, Or):
        left = compile_expr(expression.left, scope, bindings, param_slots)
        right = compile_expr(expression.right, scope, bindings, param_slots)
        return lambda batch: _bool_vector(truth(left(batch)) | truth(right(batch)))

    if isinstance(expression, Not):
        operand = compile_expr(expression.operand, scope, bindings, param_slots)
        return lambda batch: _bool_vector(~truth(operand(batch)))

    if isinstance(expression, Arithmetic):
        op = expression.op
        left = compile_expr(expression.left, scope, bindings, param_slots)
        right = compile_expr(expression.right, scope, bindings, param_slots)

        def eval_arithmetic(batch: ColumnarBatch) -> ColumnVector:
            a = left(batch)
            b = right(batch)
            if not (a.is_numeric and b.is_numeric):
                # String arithmetic stays on the scalar path.
                raise QueryError("batched arithmetic requires numeric operands")
            null = a.null | b.null
            with np.errstate(invalid="ignore", divide="ignore"):
                if op == "+":
                    values = a.values + b.values
                elif op == "-":
                    values = a.values - b.values
                elif op == "*":
                    values = a.values * b.values
                else:
                    zero = b.values == 0.0
                    null = null | zero
                    values = np.where(zero, np.nan, a.values / np.where(zero, 1.0, b.values))
            values = np.where(null, np.nan, values)
            return ColumnVector(values, null)

        return eval_arithmetic

    raise QueryError(
        f"no batch evaluation for expression type {type(expression).__name__}"
    )


# ---------------------------------------------------------------------------
# Hash-join kernels (shared by HashJoin.execute_batch and the conflict engine)
# ---------------------------------------------------------------------------


def key_tuples(vectors: list[ColumnVector]) -> list[tuple]:
    """Row-wise key tuples of one or more key vectors (None at NULLs)."""
    if not vectors:
        return []
    return list(zip(*(vector.as_object() for vector in vectors)))


def build_key_index(
    keys: list[tuple], mask: np.ndarray | None = None
) -> dict[tuple, list[int]]:
    """Hash index: key tuple -> row positions, in row order.

    Rows whose key contains NULL never match (SQL equality) and are left out;
    ``mask`` restricts the index to passing rows (e.g. a side filter).
    """
    index: dict[tuple, list[int]] = {}
    positions = range(len(keys)) if mask is None else np.nonzero(mask)[0]
    for position in positions:
        key = keys[position]
        if any(part is None for part in key):
            continue
        index.setdefault(key, []).append(int(position))
    return index


def hash_join_indices(
    probe_keys: list[tuple],
    index: dict[tuple, list[int]],
    probe_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join row pairs: (probe row, indexed row) position arrays.

    Pairs are produced probe-row-major with indexed rows in row order —
    exactly the output order of :meth:`HashJoin.execute`.
    """
    probe_positions: list[int] = []
    match_positions: list[int] = []
    positions = (
        range(len(probe_keys)) if probe_mask is None else np.nonzero(probe_mask)[0]
    )
    for position in positions:
        key = probe_keys[position]
        if any(part is None for part in key):
            continue
        matches = index.get(key)
        if not matches:
            continue
        probe_positions.extend([int(position)] * len(matches))
        match_positions.extend(matches)
    return (
        np.asarray(probe_positions, dtype=np.int64),
        np.asarray(match_positions, dtype=np.int64),
    )


def null_aware_neq(a: ColumnVector, b: ColumnVector) -> np.ndarray:
    """Elementwise "values differ" with NULL == NULL (for change detection).

    Unlike SQL's ``!=`` (NULL compares false), this is the *identity* test the
    conflict engine needs: two cells differ iff exactly one is NULL or both
    are non-NULL with different values.
    """
    left, right = _aligned_values(a, b, "!=")
    with np.errstate(invalid="ignore"):
        raw = np.asarray(np.not_equal(left, right), dtype=bool)
    both_null = a.null & b.null
    one_null = a.null ^ b.null
    return (raw & ~both_null & ~one_null) | one_null
