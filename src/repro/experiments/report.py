"""Plain-text rendering of experiment outputs.

The paper's figures plot *normalized revenue* per algorithm as a parameter
varies; these helpers render the same data as aligned text tables so every
figure/table has a textual twin in the benchmark output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    columns = len(headers)
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_series_table(
    parameter_name: str,
    parameter_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render figure-style data: one row per algorithm, one column per
    parameter value (what the paper plots as grouped bars)."""
    headers = [parameter_name] + [_fmt(value) for value in parameter_values]
    rows = [
        [name] + [_fmt(value) for value in values]
        for name, values in series.items()
    ]
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
