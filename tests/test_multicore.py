"""Process-per-shard tier tests: shared memory, parity, crashes, deltas.

The tier's claims, on top of everything the thread-sharded tier already
proves (:mod:`tests.test_service_sharding` — same partitioning, routing,
and scatter/gather algebra):

1. **Shared-memory lifecycle** — tensors cross the process boundary as
   named segments with refcounted, finalizer-backed cleanup: no leaked
   ``/dev/shm`` entries after close *or* crash, typed errors for
   object-dtype arrays and attach-after-unlink.
2. **Cross-process parity** — prices and bundles are bit-equal to an
   unsharded :class:`~repro.qirana.broker.QueryMarket` oracle, with the
   conflict sets demonstrably computed in the worker processes.
3. **Crash supervision** — a SIGKILLed worker is re-forked (by the next
   RPC or by the heartbeat sweep) and its replacement serves bit-equal
   prices, including replayed snapshot-seeded partials.
4. **Delta fan-out** — a delta applied on the coordinator reaches every
   worker before the next compute: worker data versions advance in step
   and post-delta prices match a fresh oracle over the mutated support.
5. **Fork-safe schedulers** — a forked child inherits every
   :class:`MicroBatcher` in a coherent idle state (daemon worker gone,
   queue empty, fresh lock) and can exit cleanly.
"""

import gc
import os
import signal
import threading
import time

import pytest

from repro.exceptions import (
    PricingError,
    ServiceError,
    ServiceOverloadError,
    SharedMemoryError,
)
from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service import (
    MicroBatcher,
    ProcessShardedPricingService,
    SegmentRegistry,
    fork_available,
)

np = pytest.importorskip("numpy")

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method (POSIX only)"
)

QUERIES = [
    "select Name from Country",
    "select Code from Country where Population > 20000000",
    "select avg(Population) from Country",
    "select Name from City where Population > 1000000",
    "select Continent, count(*) from Country group by Continent",
    "select CountryCode from CountryLanguage where Percentage > 90",
    "select max(LifeExpectancy) from Country",
    "select Name from Country where Continent = 'Europe'",
]


@pytest.fixture
def oracle(mini_support):
    market = QueryMarket(mini_support)
    market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
    return market


@pytest.fixture
def pricing(mini_support):
    return uniform_calibrated_pricing(mini_support, 100.0)


def make_service(mini_support, pricing, **kwargs):
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault("start", False)
    # Deterministic crash detection by default: the next RPC re-forks, no
    # background sweep racing the assertions. Supervisor tests opt back in.
    kwargs.setdefault("heartbeat_interval", 0.0)
    kwargs.setdefault("heartbeat_timeout", 10.0)
    service = ProcessShardedPricingService(mini_support, **kwargs)
    service.install_pricing(pricing)
    return service


def _repro_shm_entries() -> list[str]:
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm to inspect on this platform")
    return sorted(name for name in os.listdir("/dev/shm") if "repro-" in name)


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestSharedMemoryLifecycle:
    def test_share_attach_roundtrip_is_one_copy(self):
        owner, attacher = SegmentRegistry(), SegmentRegistry()
        try:
            array = np.arange(24, dtype=np.int64).reshape(4, 6)
            segment, owner_view = owner.share_array(array, label="roundtrip")
            attached = attacher.attach_array(segment)
            np.testing.assert_array_equal(attached, array)
            # Same bytes, not a copy: a write through one mapping is
            # visible through the other.
            owner_view[2, 3] = -77
            assert attached[2, 3] == -77
        finally:
            attacher.close()
            owner.close()
        assert owner.active_segments() == []
        assert not any(segment.name in name for name in _repro_shm_entries())

    def test_zero_length_arrays_share(self):
        with SegmentRegistry() as registry:
            segment, view = registry.share_array(
                np.empty(0, dtype=np.int64), label="empty"
            )
            assert view.shape == (0,)
            assert registry.attach_array(segment).shape == (0,)

    def test_object_dtype_refused_with_typed_error(self):
        with SegmentRegistry() as registry:
            values = np.empty(3, dtype=object)
            with pytest.raises(SharedMemoryError, match="object-dtype"):
                registry.share_array(values, label="patch-values")

    def test_attach_after_unlink_raises_typed_error(self):
        owner = SegmentRegistry()
        segment, _ = owner.share_array(np.ones(5), label="doomed")
        owner.close()
        with SegmentRegistry() as attacher:
            with pytest.raises(SharedMemoryError, match="already unlinked"):
                attacher.attach_array(segment)

    def test_finalizer_cleans_up_abandoned_registry(self):
        registry = SegmentRegistry()
        segment, _ = registry.share_array(np.ones(7), label="abandoned")
        assert any(segment.name in name for name in _repro_shm_entries())
        del registry
        gc.collect()
        assert not any(segment.name in name for name in _repro_shm_entries())

    def test_service_close_releases_every_segment(self, mini_support, pricing):
        before = _repro_shm_entries()
        service = make_service(mini_support, pricing)
        try:
            assert service._registry.active_segments()
            for sql in QUERIES[:3]:
                service.quote(sql)
        finally:
            service.close()
        assert service._registry.active_segments() == []
        assert _repro_shm_entries() == before

    def test_close_is_idempotent(self, mini_support, pricing):
        service = make_service(mini_support, pricing)
        service.close()
        service.close()


class TestCrossProcessParity:
    def test_prices_and_bundles_match_unsharded_oracle(
        self, mini_support, pricing, oracle
    ):
        with make_service(mini_support, pricing) as service:
            for sql in QUERIES:
                quote = service.quote(sql)
                expected = oracle.quote(sql)
                assert quote.price == expected.price
                assert quote.bundle == expected.bundle
            # Repeats are coordinator cache hits — no worker round trip.
            tier = service.stats()
            accepted_before = tier.accepted
            for sql in QUERIES:
                service.quote(sql)
            assert service.stats().accepted == accepted_before

    def test_conflict_sets_are_computed_in_worker_processes(
        self, mini_support, pricing
    ):
        with make_service(mini_support, pricing) as service:
            for sql in QUERIES:
                service.quote(sql)
            tier = service.stats()
            for shard in tier.shards:
                assert shard.pid > 0
                assert shard.pid != os.getpid()
                assert shard.worker is not None
                assert shard.worker["batches"] >= 1
                assert shard.worker["batched_requests"] >= len(QUERIES)

    def test_purchase_records_transaction(self, mini_support, pricing, oracle):
        with make_service(mini_support, pricing) as service:
            answer, quote = service.purchase(QUERIES[0], buyer="alice")
            assert quote.price == oracle.quote(QUERIES[0]).price
            assert len(service.transactions) == 1
            assert service.revenue == quote.price

    def test_quote_without_pricing_raises(self, mini_support):
        service = ProcessShardedPricingService(
            mini_support, num_shards=2, start=False, heartbeat_interval=0.0
        )
        try:
            with pytest.raises(PricingError, match="no pricing installed"):
                service.quote(QUERIES[0])
        finally:
            service.close()


class TestCrashRecovery:
    def test_sigkilled_worker_is_reforked_with_bit_equal_prices(
        self, mini_support, pricing, oracle
    ):
        with make_service(mini_support, pricing) as service:
            before = {sql: service.quote(sql).price for sql in QUERIES[:4]}
            victim = service.stats().shards[1].pid
            os.kill(victim, signal.SIGKILL)
            # Fresh queries force a scatter to every shard, including the
            # dead one: the compute RPC detects the death and re-forks.
            for sql in QUERIES[4:]:
                assert service.quote(sql).price == oracle.quote(sql).price
            tier = service.stats()
            assert tier.worker_restarts >= 1
            assert tier.shards[1].pid not in (-1, victim)
            # The pre-crash working set still serves bit-equal.
            for sql, price in before.items():
                assert service.quote(sql).price == price

    def test_ping_detects_death_and_recovery(self, mini_support, pricing):
        with make_service(mini_support, pricing) as service:
            assert all(service.ping(shard) for shard in range(3))
            victim = service.stats().shards[0].pid
            os.kill(victim, signal.SIGKILL)
            assert _wait_until(lambda: not service.ping(0))
            service.quote(QUERIES[0])  # any compute re-forks the shard
            assert service.ping(0)

    def test_supervisor_reforks_silently_dead_worker(
        self, mini_support, pricing, oracle
    ):
        with make_service(
            mini_support, pricing, heartbeat_interval=0.05
        ) as service:
            victim = service.stats().shards[2].pid
            os.kill(victim, signal.SIGKILL)
            # No RPC touches the shard: only the sweep can notice.
            assert _wait_until(
                lambda: service._handles[2].restarts >= 1
            ), "heartbeat sweep never re-forked the dead worker"
            for sql in QUERIES:
                assert service.quote(sql).price == oracle.quote(sql).price


class TestDeltaFanout:
    def test_patch_base_reaches_every_worker_before_next_compute(
        self, mini_support, pricing
    ):
        from repro.delta import PatchBase

        with make_service(mini_support, pricing) as service:
            for sql in QUERIES:
                service.quote(sql)
            effect = service.apply_delta(
                PatchBase("Country", 1, "Population", 99_000_000)
            )
            assert effect.base_changed
            assert service.data_version == 1
            tier = service.stats()
            for shard in tier.shards:
                assert shard.worker is not None
                assert shard.worker["data_version"] == 1
            # Post-delta prices match a fresh oracle over the mutated
            # support — the workers recomputed against the patched rows.
            oracle = QueryMarket(service.support)
            oracle.set_pricing(service.pricing)
            for sql in QUERIES:
                quote = service.quote(sql)
                expected = oracle.quote(sql)
                assert quote.price == expected.price
                assert quote.bundle == expected.bundle

    def test_structural_deltas_keep_parity_and_survive_a_crash(
        self, mini_support, pricing
    ):
        from repro.delta import AddInstance, RetireInstances
        from repro.support.delta import CellDelta

        with make_service(mini_support, pricing) as service:
            service.apply_delta(
                AddInstance((CellDelta("City", 2, "Population", 4_000_000),))
            )
            service.apply_delta(RetireInstances((2, 7)))
            assert service.data_version == 2
            oracle = QueryMarket(service.support)
            oracle.set_pricing(service.pricing)
            for sql in QUERIES:
                assert service.quote(sql).bundle == oracle.quote(sql).bundle
            # A crash after a structural delta exercises the stale-layout
            # guard: the replacement forks from the mutated mirror instead
            # of re-attaching the pre-delta segments. Fresh queries force
            # a scatter (the warm working set would hit the cache and
            # never touch a worker).
            victim = service.stats().shards[0].pid
            os.kill(victim, signal.SIGKILL)
            fresh = [
                f"select Name from Country where Population > {bound}"
                for bound in (5_000_000, 15_000_000, 45_000_000)
            ]
            for sql in fresh:
                assert service.quote(sql).bundle == oracle.quote(sql).bundle
            assert service.stats().worker_restarts >= 1

    def test_worker_mirrors_live_size(self, mini_support, pricing):
        from repro.delta import RetireInstances

        with make_service(mini_support, pricing) as service:
            total_before = sum(
                shard.worker["live_size"] for shard in service.stats().shards
            )
            assert total_before == mini_support.live_size
            service.apply_delta(RetireInstances((1, 5, 9)))
            total_after = sum(
                shard.worker["live_size"] for shard in service.stats().shards
            )
            assert total_after == mini_support.live_size == total_before - 3


class TestOverloadShedding:
    def test_full_queues_shed_with_typed_error(
        self, mini_support, pricing, oracle
    ):
        gate = threading.Event()
        service = make_service(
            mini_support,
            pricing,
            num_shards=2,
            start=True,
            max_batch_size=1,
            max_batch_delay=0.0,
            max_queue_depth=2,
        )
        for batcher in service._batchers:
            original = batcher._execute

            def gated(batch, _original=original):
                gate.wait()
                return _original(batch)

            batcher._execute = gated
        distinct = [
            f"select Name from Country where Population > {bound}"
            for bound in range(1000, 1016)
        ]
        served: dict[str, float] = {}
        shed: list[str] = []
        lock = threading.Lock()

        def client(sql: str) -> None:
            try:
                quote = service.quote(sql)
                with lock:
                    served[sql] = quote.price
            except ServiceOverloadError:
                with lock:
                    shed.append(sql)

        threads = [
            threading.Thread(target=client, args=(sql,), daemon=True)
            for sql in distinct
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=0.05)
        finally:
            gate.set()
            for thread in threads:
                thread.join()
            stats = service.stats()
            service.close()
        assert shed, "bounded queues never shed under a gated scheduler"
        assert served, "admission control shed every request"
        assert len(served) + len(shed) == len(distinct)
        assert stats.shed == len(shed)
        for sql, price in served.items():
            assert price == oracle.quote(sql).price


class TestWarmSnapshots:
    def test_restore_serves_working_set_without_recomputing(
        self, mini_support, pricing, oracle, tmp_path
    ):
        with make_service(mini_support, pricing) as service:
            for sql in QUERIES:
                service.quote(sql)
            path = tmp_path / "tier.json"
            service.snapshot(path)
        with make_service(mini_support, pricing) as restored:
            restored.restore(path)
            for sql in QUERIES:
                assert restored.quote(sql).price == oracle.quote(sql).price
            tier = restored.stats()
            totals = tier.quote_cache_totals()
            assert totals["hits"] == len(QUERIES)
            assert totals["misses"] == 0
            # The partials were seeded into the live workers too.
            for shard in tier.shards:
                assert shard.worker["bundles"]["size"] > 0

    def test_pinned_partials_replayed_into_a_reforked_worker(
        self, mini_support, pricing, oracle, tmp_path
    ):
        with make_service(mini_support, pricing) as service:
            for sql in QUERIES:
                service.quote(sql)
            path = tmp_path / "tier.json"
            service.snapshot(path)
        with make_service(mini_support, pricing) as restored:
            restored.restore(path)
            victim = restored.stats().shards[1].pid
            os.kill(victim, signal.SIGKILL)
            # A *fresh* query (the warm set would hit the cache) scatters
            # to every worker, detecting the death and re-forking.
            restored.quote("select Name from City where Population > 500000")
            tier = restored.stats()
            assert tier.worker_restarts >= 1
            # The replacement worker got the pinned partials replayed, so
            # even a quote-cache eviction could not force a recompute of
            # the snapshot's working set.
            assert tier.shards[1].worker["bundles"]["size"] > 0
            for sql in QUERIES:
                assert restored.quote(sql).price == oracle.quote(sql).price


class TestForkSafeBatchers:
    def test_worker_thread_is_daemon(self):
        batcher = MicroBatcher(lambda batch: [None] * len(batch))
        try:
            assert batcher._worker is not None
            assert batcher._worker.daemon is True
        finally:
            batcher.close()

    def test_forked_child_resets_batchers_and_exits_cleanly(self):
        import multiprocessing

        batcher = MicroBatcher(lambda batch: [r.payload for r in batch])
        try:

            def child() -> None:
                # os.register_at_fork repaired the inherited batcher: no
                # phantom worker thread, nothing queued, a fresh lock. A
                # synchronous submit proves the repaired state is usable,
                # and a clean exit proves nothing hangs teardown.
                assert batcher._worker is None
                assert not batcher._pending
                from repro.service.batching import BatchRequest

                request = BatchRequest.make("payload", "key")
                batcher.submit([request])
                assert request.future.result(timeout=1.0) == "payload"
                os._exit(0)

            ctx = multiprocessing.get_context("fork")
            process = ctx.Process(target=child)
            process.start()
            process.join(10.0)
            assert process.exitcode == 0
        finally:
            batcher.close()

    def test_closed_service_rejects_quotes(self, mini_support, pricing):
        service = make_service(mini_support, pricing, num_shards=2)
        service.close()
        with pytest.raises(ServiceError):
            service.quote(QUERIES[0])
