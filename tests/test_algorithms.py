"""Unit tests for the six pricing algorithms (+ UBP refinement)."""

import numpy as np
import pytest

from repro.core.algorithms import (
    CIP,
    Layering,
    LPIP,
    UBP,
    UBPRefine,
    UIP,
    XOSCombiner,
    available_algorithms,
    default_algorithm_suite,
    get_algorithm,
    register_algorithm,
)
from repro.core.algorithms.cip import capacity_schedule
from repro.core.algorithms.layering import minimal_cover, unique_items
from repro.core.algorithms.ubp import best_uniform_bundle_price
from repro.core.algorithms.uip import best_uniform_item_price
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import UniformBundlePricing, XOSPricing
from repro.exceptions import PricingError


class TestUBP:
    def test_optimal_price_simple(self):
        # valuations 3, 2, 1: price 2 sells 2 -> revenue 4 beats 3 and 3.
        _, revenue = best_uniform_bundle_price(np.array([3.0, 2.0, 1.0]))
        assert revenue == pytest.approx(4.0)

    def test_uniform_valuations_full_revenue(self):
        hypergraph = Hypergraph(3, [{0}, {1}, {2}])
        instance = PricingInstance(hypergraph, [5.0, 5.0, 5.0])
        result = UBP().run(instance)
        assert result.revenue == pytest.approx(15.0)

    def test_empty_instance(self):
        instance = PricingInstance(Hypergraph(0, []), [])
        assert UBP().run(instance).revenue == 0.0

    def test_price_is_some_valuation(self, random_instance_factory):
        instance = random_instance_factory(seed=1)
        result = UBP().run(instance)
        assert isinstance(result.pricing, UniformBundlePricing)
        assert result.pricing.bundle_price in instance.valuations

    def test_exhaustive_optimality(self, random_instance_factory):
        instance = random_instance_factory(num_edges=12, seed=2)
        result = UBP().run(instance)
        for price in instance.valuations:
            manual = price * np.sum(instance.valuations >= price)
            assert result.revenue >= manual - 1e-9

    def test_sells_empty_edges_too(self, small_instance):
        result = UBP().run(small_instance)
        # a uniform bundle price applies to the empty conflict set as well
        prices = result.pricing.price_edges(small_instance.edges)
        assert prices[5] == result.pricing.bundle_price


class TestUIP:
    def test_uniform_weight_structure(self, random_instance_factory):
        instance = random_instance_factory(seed=3)
        result = UIP().run(instance)
        weights = result.pricing.weights
        positive = weights[weights > 0]
        assert len(set(np.round(positive, 12))) <= 1

    def test_candidate_is_quality_ratio(self):
        hypergraph = Hypergraph(4, [{0, 1}, {2}, {3}])
        instance = PricingInstance(hypergraph, [8.0, 3.0, 3.0])
        weight, _ = best_uniform_item_price(instance)
        # candidates: 8/2=4, 3/1=3; w=3 sells all: 6+3+3=12 > w=4: 8.
        assert weight == pytest.approx(3.0)

    def test_empty_edges_ignored(self):
        hypergraph = Hypergraph(2, [set(), {0}])
        instance = PricingInstance(hypergraph, [100.0, 2.0])
        weight, revenue = best_uniform_item_price(instance)
        assert weight == pytest.approx(2.0)
        assert revenue == pytest.approx(2.0)

    def test_all_empty_edges(self):
        hypergraph = Hypergraph(2, [set(), set()])
        instance = PricingInstance(hypergraph, [1.0, 2.0])
        assert UIP().run(instance).revenue == 0.0


class TestLPIP:
    def test_beats_uip_on_typical_random_instances(self, random_instance_factory):
        # Not a theorem (see test_properties), but holds on typical random
        # instances without nested subset structure — pinned with fixed seeds.
        for seed in range(4):
            instance = random_instance_factory(seed=seed)
            lpip_revenue = LPIP().run(instance).revenue
            uip_revenue = UIP().run(instance).revenue
            assert lpip_revenue >= uip_revenue - 1e-6

    def test_extracts_full_revenue_on_disjoint_edges(self):
        hypergraph = Hypergraph(4, [{0}, {1}, {2, 3}])
        instance = PricingInstance(hypergraph, [3.0, 7.0, 5.0])
        result = LPIP().run(instance)
        assert result.revenue == pytest.approx(15.0)

    def test_max_programs_caps_lp_count(self, random_instance_factory):
        instance = random_instance_factory(num_edges=25, seed=4)
        result = LPIP(max_programs=5).run(instance)
        assert result.metadata["num_programs"] <= 5

    def test_respects_valuation_constraints_on_frontier(self):
        # Threshold at the top edge must sell it exactly at its valuation.
        hypergraph = Hypergraph(2, [{0, 1}])
        instance = PricingInstance(hypergraph, [9.0])
        result = LPIP().run(instance)
        assert result.revenue == pytest.approx(9.0)


class TestCIP:
    def test_capacity_schedule_geometric(self):
        schedule = capacity_schedule(10, 1.0)
        assert schedule[0] == 1.0
        assert schedule[-1] == 10.0
        assert all(b > a for a, b in zip(schedule, schedule[1:]))

    def test_capacity_schedule_requires_positive_epsilon(self):
        with pytest.raises(PricingError):
            capacity_schedule(10, 0.0)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(PricingError):
            CIP(epsilon=-1.0)

    def test_duals_price_scarce_items(self):
        # Two buyers want the same item; k=1 prices it at the lower valuation.
        hypergraph = Hypergraph(1, [{0}, {0}])
        instance = PricingInstance(hypergraph, [10.0, 4.0])
        result = CIP(epsilon=0.5).run(instance)
        assert result.revenue >= 8.0 - 1e-6  # price 4 sells twice

    def test_handles_empty_edges(self, small_instance):
        result = CIP(epsilon=0.5).run(small_instance)
        assert result.revenue >= 0.0

    def test_no_edges(self):
        instance = PricingInstance(Hypergraph(3, []), [])
        assert CIP().run(instance).revenue == 0.0


class TestLayering:
    def test_minimal_cover_has_unique_items(self, random_instance_factory):
        instance = random_instance_factory(num_items=20, num_edges=15, seed=6)
        edge_ids = [i for i in range(instance.num_edges) if instance.edges[i]]
        cover = minimal_cover(edge_ids, instance.edges)
        assignment = unique_items(cover, instance.edges)
        assert set(assignment) == set(cover)  # every cover edge got one
        assert len(set(assignment.values())) == len(assignment)

    def test_cover_covers_universe(self, random_instance_factory):
        instance = random_instance_factory(num_items=20, num_edges=15, seed=7)
        edge_ids = [i for i in range(instance.num_edges) if instance.edges[i]]
        universe = set().union(*(instance.edges[i] for i in edge_ids))
        cover = minimal_cover(edge_ids, instance.edges)
        covered = set().union(*(instance.edges[i] for i in cover))
        assert covered == universe

    def test_extracts_best_layer_value(self):
        # Disjoint edges form a single layer -> full revenue.
        hypergraph = Hypergraph(4, [{0}, {1}, {2}, {3}])
        instance = PricingInstance(hypergraph, [1.0, 2.0, 3.0, 4.0])
        result = Layering().run(instance)
        assert result.revenue == pytest.approx(10.0)

    def test_at_most_B_layers(self, random_instance_factory):
        instance = random_instance_factory(num_items=15, num_edges=25, seed=8)
        result = Layering().run(instance)
        assert result.metadata["num_layers"] <= instance.hypergraph.max_degree + 1

    def test_duplicate_edges_handled(self):
        hypergraph = Hypergraph(2, [{0, 1}, {0, 1}, {0, 1}])
        instance = PricingInstance(hypergraph, [2.0, 3.0, 4.0])
        result = Layering().run(instance)
        assert result.revenue > 0


class TestXOS:
    def test_combines_lpip_and_cip_by_default(self, random_instance_factory):
        instance = random_instance_factory(seed=9)
        result = XOSCombiner().run(instance)
        assert isinstance(result.pricing, XOSPricing)
        assert result.pricing.num_components == 2
        assert set(result.metadata["component_revenues"]) == {"lpip", "cip"}

    def test_requires_components(self):
        with pytest.raises(PricingError):
            XOSCombiner([])

    def test_rejects_non_item_components(self, random_instance_factory):
        instance = random_instance_factory(seed=10)
        with pytest.raises(PricingError, match="item pricing"):
            XOSCombiner([UBP()]).run(instance)

    def test_xos_price_at_least_components(self, random_instance_factory):
        instance = random_instance_factory(seed=11)
        result = XOSCombiner().run(instance)
        for component in result.pricing.components:
            for edge in instance.edges:
                assert result.pricing.price(edge) >= component.price(edge) - 1e-12


class TestUBPRefine:
    def test_never_worse_than_ubp(self, random_instance_factory):
        for seed in range(4):
            instance = random_instance_factory(seed=seed)
            refined = UBPRefine().run(instance).revenue
            plain = UBP().run(instance).revenue
            assert refined >= plain - 1e-6

    def test_refinement_strictly_helps_on_heterogeneous_edges(self):
        # One uniform price cannot separate 10 and 6; item weights can.
        hypergraph = Hypergraph(2, [{0}, {1}])
        instance = PricingInstance(hypergraph, [10.0, 6.0])
        refined = UBPRefine().run(instance)
        assert refined.revenue == pytest.approx(16.0)
        assert UBP().run(instance).revenue == pytest.approx(12.0)

    def test_falls_back_on_empty_edges_only(self):
        hypergraph = Hypergraph(1, [set(), set()])
        instance = PricingInstance(hypergraph, [5.0, 5.0])
        result = UBPRefine().run(instance)
        assert not result.metadata["refined"]


class TestSuiteInvariants:
    def test_revenue_never_exceeds_welfare(self, random_instance_factory):
        for seed in range(3):
            instance = random_instance_factory(seed=seed, num_edges=30)
            for algorithm in default_algorithm_suite():
                result = algorithm.run(instance)
                assert result.revenue <= instance.total_valuation() + 1e-6

    def test_sold_buyers_pay_at_most_their_valuation(self, random_instance_factory):
        instance = random_instance_factory(seed=12)
        for algorithm in default_algorithm_suite():
            result = algorithm.run(instance)
            prices = result.report.prices
            sold = result.report.sold
            tolerance = instance.valuations[sold] * 1e-6 + 1e-6
            assert np.all(prices[sold] <= instance.valuations[sold] + tolerance)

    def test_runtime_recorded(self, random_instance_factory):
        result = UBP().run(random_instance_factory(seed=13))
        assert result.runtime_seconds >= 0.0

    def test_all_pricings_arbitrage_free(self, random_instance_factory):
        from repro.qirana.validation import verify_arbitrage_freeness

        instance = random_instance_factory(seed=14)
        for algorithm in default_algorithm_suite():
            result = algorithm.run(instance)
            violations = verify_arbitrage_freeness(
                result.pricing, instance.num_items, trials=100, rng=0
            )
            assert violations == [], algorithm.name


class TestRegistry:
    def test_all_registered(self):
        names = available_algorithms()
        for expected in ("ubp", "ubp+lp", "uip", "lpip", "cip", "layering", "xos"):
            assert expected in names

    def test_get_algorithm_with_params(self):
        algorithm = get_algorithm("lpip", max_programs=3)
        assert algorithm.max_programs == 3

    def test_unknown_name(self):
        with pytest.raises(PricingError, match="unknown algorithm"):
            get_algorithm("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(PricingError, match="already registered"):
            register_algorithm("ubp", UBP)

    def test_case_insensitive(self):
        assert isinstance(get_algorithm("UBP"), UBP)

    def test_default_suite_order(self):
        names = [algorithm.name for algorithm in default_algorithm_suite()]
        assert names == ["lpip", "ubp", "cip", "uip", "layering", "xos"]
