"""MicroBatcher unit tests: coalescing, admission control, lifecycle."""

import threading
import time

import pytest

from repro.exceptions import ServiceError, ServiceOverloadError
from repro.service.batching import BatchRequest, MicroBatcher


def echo(batch):
    return [request.payload for request in batch]


def make_requests(*payloads):
    return [BatchRequest.make(payload, f"key-{payload}") for payload in payloads]


class TestSynchronousMode:
    def test_executes_inline_in_chunks(self):
        calls = []

        def execute(batch):
            calls.append(len(batch))
            return echo(batch)

        batcher = MicroBatcher(execute, max_batch_size=2, start=False)
        requests = make_requests(*range(5))
        batcher.submit(requests)
        assert [r.future.result(timeout=0) for r in requests] == list(range(5))
        assert calls == [2, 2, 1]
        stats = batcher.stats()
        assert stats.batches == 3
        assert stats.batched_requests == 5
        assert stats.max_batch_size == 2
        assert stats.accepted == 5

    def test_sync_mode_never_sheds(self):
        batcher = MicroBatcher(echo, max_queue_depth=1, start=False)
        requests = make_requests(*range(10))
        batcher.submit(requests)  # no queue, nothing to bound
        assert batcher.stats().shed == 0

    def test_execute_exception_reaches_every_future(self):
        def explode(batch):
            raise ValueError("boom")

        batcher = MicroBatcher(explode, start=False)
        requests = make_requests("a", "b")
        batcher.submit(requests)
        for request in requests:
            with pytest.raises(ValueError, match="boom"):
                request.future.result(timeout=0)


class TestThreadedMode:
    def test_coalesces_concurrent_submissions(self):
        release = threading.Event()
        sizes = []

        def execute(batch):
            if not release.wait(timeout=5):
                raise TimeoutError("gate never opened")
            sizes.append(len(batch))
            return echo(batch)

        batcher = MicroBatcher(execute, max_batch_size=8, max_batch_delay=0.05)
        try:
            first = make_requests(0)
            batcher.submit(first)  # occupies the worker at the gate
            time.sleep(0.01)
            rest = make_requests(*range(1, 7))
            for request in rest:
                batcher.submit([request])
            release.set()
            results = [r.future.result(timeout=5) for r in first + rest]
        finally:
            release.set()
            batcher.close()
        assert results == list(range(7))
        # The six follow-ups queued while the worker was busy coalesce into
        # one flush (their window had already elapsed).
        assert sizes[0] in (1, 7)
        assert max(sizes) >= 6

    def test_bounded_queue_sheds_whole_submissions(self):
        release = threading.Event()

        def execute(batch):
            if not release.wait(timeout=5):
                raise TimeoutError("gate never opened")
            return echo(batch)

        batcher = MicroBatcher(
            execute, max_batch_size=1, max_batch_delay=0.0, max_queue_depth=2
        )
        try:
            admitted = make_requests("running")
            batcher.submit(admitted)  # popped by the worker, gated
            time.sleep(0.01)
            queued = make_requests("q1", "q2")
            batcher.submit(queued)  # fills the queue to its bound
            with pytest.raises(ServiceOverloadError, match="queue is full"):
                batcher.submit(make_requests("overflow"))
            # A multi-request submission is all-or-nothing.
            with pytest.raises(ServiceOverloadError):
                batcher.submit(make_requests("o1", "o2", "o3"))
            stats = batcher.stats()
            assert stats.accepted == 3
            assert stats.shed == 4
            assert stats.queue_depth <= 2
            assert stats.shed_rate == pytest.approx(4 / 7)
            release.set()
            # Shed requests left no trace; admitted ones all complete.
            for request in admitted + queued:
                assert request.future.result(timeout=5) == request.payload
        finally:
            release.set()
            batcher.close()

    def test_empty_queue_admits_oversized_submission(self):
        """Progress guarantee: a submission larger than the bound is not
        permanently unadmittable — an empty queue admits it whole (the
        offline bulk paths submit whole workloads in one call)."""
        batcher = MicroBatcher(echo, max_batch_size=4, max_queue_depth=2)
        try:
            requests = make_requests(*range(10))
            batcher.submit(requests)
            assert [r.future.result(timeout=5) for r in requests] == list(range(10))
            assert batcher.stats().shed == 0
        finally:
            batcher.close()

    def test_close_flushes_pending_then_rejects(self):
        batcher = MicroBatcher(echo, max_batch_delay=0.2)
        requests = make_requests(*range(4))
        batcher.submit(requests)
        batcher.close()
        assert [r.future.result(timeout=0) for r in requests] == list(range(4))
        with pytest.raises(ServiceError, match="closed"):
            batcher.submit(make_requests("late"))

    def test_restart_after_close(self):
        batcher = MicroBatcher(echo)
        batcher.close()
        batcher.start()
        request = make_requests("again")
        batcher.submit(request)
        assert request[0].future.result(timeout=5) == "again"
        batcher.close()


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ServiceError, match="max_batch_size"):
            MicroBatcher(echo, max_batch_size=0, start=False)
        with pytest.raises(ServiceError, match="max_batch_delay"):
            MicroBatcher(echo, max_batch_delay=-1, start=False)
        with pytest.raises(ServiceError, match="max_queue_depth"):
            MicroBatcher(echo, max_queue_depth=0, start=False)
