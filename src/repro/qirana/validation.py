"""Empirical arbitrage-freeness checks.

Theorem 1: ``p(Q, D) = f(CS(Q, D))`` is arbitrage-free iff ``f`` is monotone
and subadditive. Exhaustive verification is exponential in the item count, so
these helpers sample bundle pairs; they are used both in property tests and
as a guardrail when installing custom pricing functions in a market.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pricing import PricingFunction


@dataclass(frozen=True)
class Violation:
    """A sampled counterexample to monotonicity or subadditivity."""

    kind: str  # "monotonicity" | "subadditivity"
    bundle_a: frozenset[int]
    bundle_b: frozenset[int]
    price_a: float
    price_b: float
    price_union: float

    def __str__(self) -> str:  # pragma: no cover - display helper
        if self.kind == "monotonicity":
            return (
                f"monotonicity violated: p({set(self.bundle_a)}) = {self.price_a:g} "
                f"> p({set(self.bundle_b)}) = {self.price_b:g}"
            )
        return (
            f"subadditivity violated: p(A u B) = {self.price_union:g} > "
            f"p(A) + p(B) = {self.price_a:g} + {self.price_b:g}"
        )


def _random_bundle(rng: np.random.Generator, num_items: int) -> frozenset[int]:
    size = int(rng.integers(0, max(1, num_items // 2) + 1))
    if size == 0:
        return frozenset()
    return frozenset(int(x) for x in rng.choice(num_items, size=size, replace=False))


def check_monotonicity(
    pricing: PricingFunction,
    num_items: int,
    trials: int = 200,
    rng: np.random.Generator | int | None = None,
    tolerance: float = 1e-9,
) -> list[Violation]:
    """Sample subset pairs ``A ⊆ B`` and report ``p(A) > p(B)`` violations."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    violations: list[Violation] = []
    for _ in range(trials):
        superset = _random_bundle(rng, num_items)
        if superset:
            keep = rng.random(len(superset)) < 0.5
            subset = frozenset(
                item for item, kept in zip(sorted(superset), keep) if kept
            )
        else:
            subset = frozenset()
        price_subset = pricing.price(subset)
        price_superset = pricing.price(superset)
        if price_subset > price_superset + tolerance:
            violations.append(
                Violation(
                    "monotonicity", subset, superset,
                    price_subset, price_superset, 0.0,
                )
            )
    return violations


def check_subadditivity(
    pricing: PricingFunction,
    num_items: int,
    trials: int = 200,
    rng: np.random.Generator | int | None = None,
    tolerance: float = 1e-9,
) -> list[Violation]:
    """Sample bundle pairs and report ``p(A u B) > p(A) + p(B)`` violations."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    violations: list[Violation] = []
    for _ in range(trials):
        bundle_a = _random_bundle(rng, num_items)
        bundle_b = _random_bundle(rng, num_items)
        price_a = pricing.price(bundle_a)
        price_b = pricing.price(bundle_b)
        price_union = pricing.price(bundle_a | bundle_b)
        if price_union > price_a + price_b + tolerance:
            violations.append(
                Violation(
                    "subadditivity", bundle_a, bundle_b,
                    price_a, price_b, price_union,
                )
            )
    return violations


def verify_arbitrage_freeness(
    pricing: PricingFunction,
    num_items: int,
    trials: int = 200,
    rng: np.random.Generator | int | None = None,
) -> list[Violation]:
    """Sampled check of both arbitrage conditions; empty list = no violation
    found (not a proof, but the three built-in families are arbitrage-free by
    construction)."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    return check_monotonicity(pricing, num_items, trials, rng) + check_subadditivity(
        pricing, num_items, trials, rng
    )
