"""The data-market broker: quoting, selling, and the transaction ledger.

:class:`QueryMarket` is the end-to-end entry point a data seller would use:

1. wrap the dataset and a sampled support set,
2. collect the buyers' queries and valuations,
3. call :meth:`QueryMarket.optimize_pricing` with one of the paper's
   algorithms to install a revenue-maximizing arbitrage-free pricing,
4. serve :meth:`quote` / :meth:`purchase` requests.

Prices come from a monotone subadditive function applied to conflict sets,
so they are arbitrage-free for *any* incoming query — including queries that
were not in the optimization workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import PricingFunction, UniformBundlePricing
from repro.db.database import Database
from repro.db.query import Query, sql_query
from repro.db.result import QueryResult
from repro.exceptions import PricingError
from repro.qirana.conflict import ConflictSetEngine
from repro.support.generator import SupportSet


@dataclass(frozen=True)
class PriceQuote:
    """A quoted price for a query, with its conflict set for transparency."""

    query_text: str
    price: float
    bundle: frozenset[int]


@dataclass(frozen=True)
class Transaction:
    """One completed sale."""

    buyer: str
    query_text: str
    price: float


@dataclass
class QueryMarket:
    """A Qirana-style data market session.

    ``conflict_backend`` selects the conflict-set strategy by registry name
    (``naive``, ``incremental``, ``vectorized``, ``auto``); the default
    ``auto`` batches vectorizable queries and is the right choice for
    production traffic.
    """

    support: SupportSet
    pricing: PricingFunction | None = None
    conflict_backend: str = "auto"
    transactions: list[Transaction] = field(default_factory=list)
    _engine: ConflictSetEngine = field(init=False, repr=False)
    _bundle_cache: dict[str, frozenset[int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._engine = ConflictSetEngine(self.support, backend=self.conflict_backend)

    @property
    def base(self) -> Database:
        """The seller's database."""
        return self.support.base

    @property
    def engine(self) -> ConflictSetEngine:
        return self._engine

    # ------------------------------------------------------------------
    # Pricing management
    # ------------------------------------------------------------------

    def set_pricing(self, pricing: PricingFunction) -> None:
        """Install a pricing function (must be monotone + subadditive)."""
        self.pricing = pricing

    def set_flat_fee(self, price: float) -> None:
        """Install the simplest scheme: one price for everything."""
        self.pricing = UniformBundlePricing(price)

    def build_hypergraph(self, queries: list[Query | str]) -> Hypergraph:
        """Conflict-set hypergraph of a workload, feeding the bundle cache.

        Batched on purpose: the engine's delta tensors and columnar base
        tables are built once and shared across every query, so pricing a
        whole workload costs far less than quoting its queries one by one.
        """
        planned = [self._as_query(query) for query in queries]
        hypergraph = self._engine.build_hypergraph(planned)
        for query, edge in zip(planned, hypergraph.edges):
            self._bundle_cache[query.text] = edge
        return hypergraph

    def build_instance(
        self,
        queries: list[Query | str],
        valuations: list[float] | np.ndarray,
        name: str = "market",
    ) -> PricingInstance:
        """Transform a (query, valuation) workload into a pricing instance."""
        if len(queries) != len(valuations):
            raise PricingError(
                f"{len(queries)} queries but {len(valuations)} valuations"
            )
        hypergraph = self.build_hypergraph(queries)
        return PricingInstance(hypergraph, np.asarray(valuations, dtype=float), name)

    def optimize_pricing(
        self,
        queries: list[Query | str],
        valuations: list[float] | np.ndarray,
        algorithm: PricingAlgorithm,
    ) -> PricingResult:
        """Run a pricing algorithm on the workload and install the result."""
        instance = self.build_instance(queries, valuations)
        result = algorithm.run(instance)
        self.pricing = result.pricing
        return result

    # ------------------------------------------------------------------
    # Buyer-facing API
    # ------------------------------------------------------------------

    def quote(self, query: Query | str) -> PriceQuote:
        """Price a query without selling it."""
        if self.pricing is None:
            raise PricingError("no pricing installed; call optimize_pricing first")
        planned = self._as_query(query)
        bundle = self._bundle_of(planned)
        return PriceQuote(planned.text, self.pricing.price(bundle), bundle)

    def quote_batch(self, queries: list[Query | str]) -> list[PriceQuote]:
        """Price many queries at once.

        Uncached conflict sets are computed together through
        :meth:`build_hypergraph`, which warms the engine's per-workload
        caches up front (one delta tensor per referenced table — hence one
        per *join side* — columnar base tables, compiled batch plans) so
        their construction is amortized across the batch: the fast path for
        bulk quoting traffic.
        """
        if self.pricing is None:
            raise PricingError("no pricing installed; call optimize_pricing first")
        planned = [self._as_query(query) for query in queries]
        missing = {
            query.text: query
            for query in planned
            if query.text not in self._bundle_cache
        }
        if missing:
            self.build_hypergraph(list(missing.values()))
        return [
            PriceQuote(
                query.text,
                self.pricing.price(self._bundle_cache[query.text]),
                self._bundle_cache[query.text],
            )
            for query in planned
        ]

    def purchase(
        self,
        query: Query | str,
        buyer: str,
        valuation: float | None = None,
    ) -> tuple[QueryResult | None, PriceQuote]:
        """Attempt to sell a query answer.

        A buyer with a stated ``valuation`` walks away when the price exceeds
        it (returns ``(None, quote)``); with no valuation the buyer always
        pays. Sales are appended to the ledger.
        """
        planned = self._as_query(query)
        quote = self.quote(planned)
        if valuation is not None and quote.price > valuation:
            return None, quote
        answer = planned.run(self.base)
        self.transactions.append(Transaction(buyer, quote.query_text, quote.price))
        return answer, quote

    @property
    def revenue(self) -> float:
        """Total revenue collected so far."""
        return sum(transaction.price for transaction in self.transactions)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _as_query(self, query: Query | str) -> Query:
        if isinstance(query, Query):
            return query
        return sql_query(query, self.base)

    def _bundle_of(self, query: Query) -> frozenset[int]:
        bundle = self._bundle_cache.get(query.text)
        if bundle is None:
            bundle = self._engine.conflict_set(query)
            self._bundle_cache[query.text] = bundle
        return bundle


def market_hypergraph(
    support: SupportSet, queries: list[Query], backend: str = "auto"
) -> Hypergraph:
    """Convenience: the hypergraph of a workload over a support set."""
    return ConflictSetEngine(support, backend=backend).build_hypergraph(queries)
