"""Unit tests for the three pricing-function families + arbitrage checks."""

import numpy as np
import pytest

from repro.core.pricing import (
    ItemPricing,
    UniformBundlePricing,
    XOSPricing,
    zero_pricing,
)
from repro.exceptions import PricingError
from repro.qirana.validation import (
    check_monotonicity,
    check_subadditivity,
    verify_arbitrage_freeness,
)


class TestUniformBundlePricing:
    def test_constant_price(self):
        pricing = UniformBundlePricing(5.0)
        assert pricing.price({0, 1}) == 5.0
        assert pricing.price(set()) == 5.0

    def test_price_edges_vectorized(self):
        pricing = UniformBundlePricing(2.0)
        assert list(pricing.price_edges([{0}, {1, 2}])) == [2.0, 2.0]

    def test_negative_rejected(self):
        with pytest.raises(PricingError):
            UniformBundlePricing(-1.0)

    def test_arbitrage_free(self):
        violations = verify_arbitrage_freeness(UniformBundlePricing(3.0), 10, rng=0)
        assert violations == []


class TestItemPricing:
    def test_equal_bundles_price_bit_identically(self):
        """Regression: prices are a function of the *set*, not its history.

        Equal frozensets can iterate in different orders depending on how
        they were built (insertion order shapes the hash table), so a
        scatter/gathered union and a directly computed conflict set used to
        price apart by a few ulps. Prices must sum in canonical (ascending)
        order in both the scalar and the CSR form.
        """
        rng = np.random.default_rng(5)
        pricing = ItemPricing(rng.uniform(0.0, 1.0, 400))
        members = [int(i) for i in rng.choice(400, size=120, replace=False)]
        constructions = [
            frozenset(members),
            frozenset(reversed(members)),
            frozenset(sorted(members)),
            # Incremental unions in odd chunk sizes (the sharded gather).
            frozenset().union(
                *(frozenset(members[start : start + 7])
                  for start in range(0, len(members), 7))
            ),
        ]
        reference = float(sum(pricing.weights[item] for item in sorted(members)))
        csr_reference = float(pricing.price_edges([constructions[0]])[0])
        for bundle in constructions:
            assert bundle == constructions[0]
            assert pricing.price(bundle) == reference
            # The CSR form may round differently (pairwise summation) but
            # must be equally construction-order-independent.
            assert float(pricing.price_edges([bundle])[0]) == csr_reference

    def test_additive_price(self):
        pricing = ItemPricing([1.0, 2.0, 3.0])
        assert pricing.price({0, 2}) == 4.0
        assert pricing.price(set()) == 0.0

    def test_from_dict(self):
        pricing = ItemPricing({1: 5.0}, num_items=3)
        assert pricing.price({0, 1}) == 5.0
        assert pricing.num_items == 3

    def test_uniform_constructor(self):
        pricing = ItemPricing.uniform(4, 2.5)
        assert pricing.price({0, 1, 2, 3}) == 10.0

    def test_support_size(self):
        assert ItemPricing([0.0, 1.0, 0.0, 2.0]).support_size() == 2

    def test_negative_weight_rejected(self):
        with pytest.raises(PricingError):
            ItemPricing([1.0, -0.1])

    def test_matrix_rejected(self):
        with pytest.raises(PricingError):
            ItemPricing(np.ones((2, 2)))

    def test_arbitrage_free(self):
        rng = np.random.default_rng(1)
        pricing = ItemPricing(rng.uniform(0, 10, size=12))
        assert verify_arbitrage_freeness(pricing, 12, rng=2) == []

    def test_zero_pricing_helper(self):
        assert zero_pricing(5).price({0, 4}) == 0.0


class TestXOSPricing:
    def test_max_of_components(self):
        a = ItemPricing([3.0, 0.0])
        b = ItemPricing([0.0, 5.0])
        pricing = XOSPricing([a, b])
        assert pricing.price({0}) == 3.0
        assert pricing.price({1}) == 5.0
        assert pricing.price({0, 1}) == 5.0  # max(3, 5), not 8

    def test_accepts_raw_vectors(self):
        pricing = XOSPricing([[1.0, 2.0], [2.0, 1.0]])
        assert pricing.price({0, 1}) == 3.0

    def test_single_component_equals_item_pricing(self):
        weights = [1.0, 2.0, 4.0]
        xos = XOSPricing([weights])
        item = ItemPricing(weights)
        for bundle in ({0}, {1, 2}, {0, 1, 2}, set()):
            assert xos.price(bundle) == item.price(bundle)

    def test_empty_components_rejected(self):
        with pytest.raises(PricingError):
            XOSPricing([])

    def test_mismatched_universes_rejected(self):
        with pytest.raises(PricingError):
            XOSPricing([[1.0], [1.0, 2.0]])

    def test_arbitrage_free(self):
        rng = np.random.default_rng(3)
        components = [rng.uniform(0, 10, size=10) for _ in range(4)]
        assert verify_arbitrage_freeness(XOSPricing(components), 10, rng=4) == []

    def test_num_components(self):
        assert XOSPricing([[1.0], [2.0]]).num_components == 2


class TestValidationCatchesViolations:
    """The validators must actually detect non-arbitrage-free functions."""

    class _SuperadditivePricing(ItemPricing):
        """Price = (sum of weights)^2 — violates subadditivity."""

        def price(self, bundle):
            return super().price(bundle) ** 2

    class _AntitonePricing(ItemPricing):
        """Bigger bundles cheaper — violates monotonicity."""

        def price(self, bundle):
            return max(0.0, 100.0 - super().price(bundle))

    def test_detects_subadditivity_violation(self):
        pricing = self._SuperadditivePricing(np.ones(10) * 3)
        violations = check_subadditivity(pricing, 10, trials=500, rng=5)
        assert violations
        assert all(v.kind == "subadditivity" for v in violations)

    def test_detects_monotonicity_violation(self):
        pricing = self._AntitonePricing(np.ones(10) * 3)
        violations = check_monotonicity(pricing, 10, trials=500, rng=6)
        assert violations
        assert all(v.kind == "monotonicity" for v in violations)

    def test_violation_str(self):
        pricing = self._AntitonePricing(np.ones(10) * 3)
        violations = check_monotonicity(pricing, 10, trials=500, rng=7)
        assert "monotonicity" in str(violations[0])
