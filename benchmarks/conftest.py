"""Shared benchmark configuration.

Each benchmark reproduces one table/figure of the paper at laptop scale and
prints its textual rendering (run with ``-s`` to see them, or check the
``data`` captured in the benchmark's ``extra_info``). ``benchmark.pedantic``
with a single round is used throughout: the experiments are deterministic
given their seeds, and the interesting measurement is the one-shot wall time.
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Where figure/table data lands as CSV (machine-readable twin of the text).
ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with exactly one warm round."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once():
    return run_once


def save_artifact(artifact) -> None:
    """Export a FigureData's data as CSV under ``benchmarks/artifacts/``.

    Silently skips artifacts whose data shape has no exporter — every bench
    can call this unconditionally.
    """
    from repro.experiments.export import (
        export_histogram_csv,
        export_runtimes_csv,
        export_series_csv,
    )

    ARTIFACT_DIR.mkdir(exist_ok=True)
    base = ARTIFACT_DIR / artifact.figure_id
    if "series" in artifact.data:
        export_series_csv(artifact, base.with_suffix(".csv"))
    if "counts" in artifact.data and "bin_edges" in artifact.data:
        export_histogram_csv(artifact, base.with_suffix(".hist.csv"))
    if "runtimes" in artifact.data:
        export_runtimes_csv(artifact, base.with_suffix(".runtimes.csv"))
