"""Smoke tests for the load generator and latency metrics (tier-1 CI).

A small closed-loop and open-loop run against a real service over the mini
database — the CI smoke for the whole serving path (plan memo, canonical
cache, micro-batcher, metrics) at a scale that costs well under a second.
"""

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service import LoadProfile, PricingService, run_load, zipf_schedule
from repro.service.metrics import LatencyRecorder

QUERIES = [
    "select Name from Country",
    "select avg(Population) from Country",
    "select Name from City where Population > 1000000",
    "select Code from Country where Continent = 'Europe'",
]


@pytest.fixture
def service(mini_support):
    market = QueryMarket(mini_support)
    market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
    with PricingService(market, max_batch_delay=0.0005) as service:
        yield service


class TestZipfSchedule:
    def test_deterministic_and_in_range(self):
        a = zipf_schedule(10, 200, 1.1, np.random.default_rng(3))
        b = zipf_schedule(10, 200, 1.1, np.random.default_rng(3))
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 10
        assert len(a) == 200

    def test_skew_prefers_low_ranks(self):
        schedule = zipf_schedule(50, 2000, 1.5, np.random.default_rng(0))
        counts = np.bincount(schedule, minlength=50)
        assert counts[0] == counts.max()
        assert counts[0] > 10 * counts[49]

    def test_zero_skew_is_uniform(self):
        schedule = zipf_schedule(4, 4000, 0.0, np.random.default_rng(1))
        counts = np.bincount(schedule, minlength=4)
        assert counts.min() > 800  # ~1000 each

    def test_needs_at_least_one_query(self):
        with pytest.raises(ServiceError, match="at least one"):
            zipf_schedule(0, 10, 1.0, np.random.default_rng(0))


class TestLoadProfileValidation:
    def test_unknown_mode(self):
        with pytest.raises(ServiceError, match="mode"):
            LoadProfile(mode="sideways")

    def test_open_loop_needs_a_rate(self):
        with pytest.raises(ServiceError, match="arrival_rate"):
            LoadProfile(mode="open")

    def test_positive_counts(self):
        with pytest.raises(ServiceError, match="num_requests"):
            LoadProfile(num_requests=0)
        with pytest.raises(ServiceError, match="num_clients"):
            LoadProfile(num_clients=0)


class TestClosedLoop:
    def test_smoke_run_accounts_for_every_request(self, service):
        profile = LoadProfile(num_requests=120, num_clients=4, zipf_s=1.1, seed=2)
        report = run_load(service, QUERIES, profile)
        assert report.mode == "closed"
        assert report.requests == 120
        assert report.errors == 0
        assert report.latency.count == 120
        assert report.throughput_rps > 0
        cache = report.service["quote_cache"]
        assert cache["hits"] + cache["misses"] == 120
        assert cache["hits"] > 0  # repetition exercised the cache
        assert report.service["batches"] >= 1
        assert "req/s" in str(report)

    def test_quoting_errors_are_counted_not_raised(self, mini_support):
        # No pricing installed: every request errors, the run still reports.
        # Errored requests are counted but not timed — only *served*
        # requests belong in the percentiles, so latency.count tracks the
        # completed count.
        with PricingService(QueryMarket(mini_support)) as unpriced:
            report = run_load(
                unpriced, QUERIES, LoadProfile(num_requests=20, num_clients=2)
            )
        assert report.errors == 20
        assert report.completed == 0
        assert report.latency.count == 0

    def test_unexpected_errors_do_not_kill_client_threads(self, service, monkeypatch):
        # A non-ReproError from the engine must count as an errored request,
        # not silently kill the client thread (which would understate the run).
        import threading

        calls = [0]
        call_lock = threading.Lock()
        real_quote = service.quote

        def flaky(sql):
            with call_lock:
                calls[0] += 1
                fail = calls[0] % 3 == 0
            if fail:
                raise RuntimeError("engine bug")
            return real_quote(sql)

        monkeypatch.setattr(service, "quote", flaky)
        report = run_load(
            service, QUERIES, LoadProfile(num_requests=30, num_clients=3, seed=7)
        )
        assert report.errors == 10
        # Only the 20 served requests are timed: a fast-fail error must not
        # flatter the latency percentiles.
        assert report.completed == 20
        assert report.latency.count == 20


class TestOpenLoop:
    def test_poisson_arrivals_record_offered_rate(self, service):
        profile = LoadProfile(
            num_requests=80,
            num_clients=4,
            mode="open",
            arrival_rate=4000.0,
            seed=3,
        )
        report = run_load(service, QUERIES, profile)
        assert report.mode == "open"
        assert report.offered_rate_rps == 4000.0
        assert report.requests == 80
        assert report.errors == 0
        assert report.latency.count == 80
        assert "offered rate" in str(report)
        assert report.as_dict()["offered_rate_rps"] == 4000.0


class TestLatencyRecorder:
    def test_empty_summary_is_zero(self):
        summary = LatencyRecorder().summary()
        assert summary.count == 0
        assert summary.p99_ms == 0.0

    def test_percentiles_in_milliseconds(self):
        recorder = LatencyRecorder()
        for value in (0.001, 0.002, 0.003, 0.004):
            recorder.record(value)
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean_ms == pytest.approx(2.5)
        assert summary.p50_ms == pytest.approx(2.5)
        assert summary.max_ms == pytest.approx(4.0)
        assert summary.as_dict()["p95_ms"] >= summary.p50_ms


class TestShardLatencyRecorder:
    def test_idle_expected_labels_report_zero_summary(self):
        from repro.service.metrics import ShardLatencyRecorder

        recorder = ShardLatencyRecorder()
        recorder.record(0, 0.002)
        recorder.record(0, 0.004)
        breakdown = recorder.by_label(expected=range(4))
        # Every expected shard appears; the idle ones carry the zero
        # summary instead of crashing np.percentile on an empty array.
        assert sorted(breakdown) == [0, 1, 2, 3]
        assert breakdown[0].count == 2
        for shard in (1, 2, 3):
            assert breakdown[shard].count == 0
            assert breakdown[shard].p99_ms == 0.0

    def test_fully_idle_recorder_summarizes(self):
        from repro.service.metrics import ShardLatencyRecorder

        recorder = ShardLatencyRecorder()
        assert recorder.summary().count == 0
        breakdown = recorder.by_label(expected=range(2))
        assert breakdown[0].count == 0 and breakdown[1].count == 0

    def test_idle_shards_survive_a_real_load_run(self, mini_support):
        """A one-query working set leaves shards idle; the report still
        carries a summary for every shard of the tier."""
        from repro.service import ShardedPricingService

        service = ShardedPricingService(mini_support, num_shards=4)
        service.install_pricing(uniform_calibrated_pricing(mini_support, 100.0))
        try:
            report = run_load(
                service,
                [QUERIES[0]],
                LoadProfile(num_requests=12, num_clients=2, zipf_s=0.0),
            )
        finally:
            service.close()
        assert report.errors == 0
        assert report.per_shard is not None
        assert sorted(report.per_shard) == [0, 1, 2, 3]
        counts = [summary.count for summary in report.per_shard.values()]
        assert sum(counts) == 12
        assert counts.count(0) == 3  # one home shard, three idle
        # The dict form renders too (BENCH json path).
        assert len(report.as_dict()["per_shard_latency"]) == 4
