"""Test utilities: random databases and random queries for differential
testing.

Downstream users extending the engine (new operators, new incremental
checker shapes) can fuzz their changes the same way this repo's test suite
does: generate a random star-schema database, generate random queries within
the supported fragment, and compare engine output against an oracle (or an
older engine version).
"""

from __future__ import annotations

import numpy as np

from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema

#: Group values used by the generated fact table.
GROUPS = ("a", "b", "c")


def random_star_database(
    rng: np.random.Generator | int | None = None,
    fact_rows: int = 25,
) -> Database:
    """A small fact table ``F(fid, g, x, y)`` plus a dimension ``D(g, w)``."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    fact = Relation(
        TableSchema(
            "F",
            (
                Column("fid", ColumnType.INT),
                Column("g", ColumnType.TEXT),
                Column("x", ColumnType.INT),
                Column("y", ColumnType.FLOAT),
            ),
            primary_key=("fid",),
        )
    )
    for i in range(fact_rows):
        fact.insert(
            (
                i,
                GROUPS[int(rng.integers(len(GROUPS)))],
                int(rng.integers(0, 20)),
                float(np.round(rng.uniform(0, 5), 1)),
            )
        )
    dim = Relation(
        TableSchema(
            "D", (Column("g", ColumnType.TEXT), Column("w", ColumnType.INT))
        )
    )
    for position, g in enumerate(GROUPS):
        dim.insert((g, position + 1))
    return Database("rand", [fact, dim])


def random_query_text(rng: np.random.Generator | int | None = None) -> str:
    """A random query over :func:`random_star_database`'s schema.

    Stays within the engine's supported fragment *and* within the shapes the
    incremental conflict checker handles, so the same generator fuzzes both.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    kind = int(rng.integers(6))
    g = GROUPS[int(rng.integers(len(GROUPS)))]
    lo = int(rng.integers(0, 15))
    hi = lo + int(rng.integers(1, 8))
    if kind == 0:
        return f"select fid, x from F where g = '{g}'"
    if kind == 1:
        return f"select fid from F where x between {lo} and {hi}"
    if kind == 2:
        return "select g, count(*), sum(x) from F group by g"
    if kind == 3:
        return f"select avg(y) from F where x > {lo}"
    if kind == 4:
        return "select min(y), max(x) from F"
    return (
        "select D.w, sum(F.x) from F, D where F.g = D.g "
        f"and F.x <= {hi} group by D.w"
    )


# ---------------------------------------------------------------------------
# Cross-backend parity fuzzing: database, support set, and query generators
# ---------------------------------------------------------------------------

#: Text domain shared by the fuzz fact/dim tables (small, so joins and group
#: keys collide often — collisions are where conflict checkers go wrong).
FUZZ_TEXT_DOMAIN = ("a", "b", "c", "d")


def random_fuzz_database(
    rng: np.random.Generator | int | None = None,
) -> Database:
    """A two-table database for conflict-backend parity fuzzing.

    ``T(id, k, g, x, y, s)`` joins ``U(k, h, w)`` on the small-domain key
    ``k``, and ``U`` joins ``V(h, v, z)`` on ``h`` — the three-table chain
    exercises the cascaded join kernels. NULLs are sprinkled through keys,
    group columns, and aggregate inputs. Float values are multiples of 0.25,
    so float sums are exact in binary regardless of accumulation order —
    decisions then depend on the data, not on which order a backend happens
    to add values in.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    fact = Relation(
        TableSchema(
            "T",
            (
                Column("id", ColumnType.INT),
                Column("k", ColumnType.INT),
                Column("g", ColumnType.TEXT),
                Column("x", ColumnType.INT),
                Column("y", ColumnType.FLOAT),
                Column("s", ColumnType.TEXT),
            ),
            primary_key=("id",),
        )
    )
    for i in range(int(rng.integers(8, 25))):
        fact.insert(
            (
                i,
                None if rng.random() < 0.07 else int(rng.integers(0, 5)),
                None
                if rng.random() < 0.12
                else FUZZ_TEXT_DOMAIN[int(rng.integers(3))],
                None if rng.random() < 0.08 else int(rng.integers(0, 9)),
                None if rng.random() < 0.12 else float(int(rng.integers(0, 32))) / 4.0,
                None
                if rng.random() < 0.15
                else FUZZ_TEXT_DOMAIN[int(rng.integers(len(FUZZ_TEXT_DOMAIN)))],
            )
        )
    dim = Relation(
        TableSchema(
            "U",
            (
                Column("k", ColumnType.INT),
                Column("h", ColumnType.TEXT),
                Column("w", ColumnType.INT),
            ),
        )
    )
    for _ in range(int(rng.integers(3, 9))):
        dim.insert(
            (
                None if rng.random() < 0.08 else int(rng.integers(0, 5)),
                FUZZ_TEXT_DOMAIN[int(rng.integers(3))],
                int(rng.integers(0, 7)),
            )
        )
    outer = Relation(
        TableSchema(
            "V",
            (
                Column("h", ColumnType.TEXT),
                Column("v", ColumnType.INT),
                Column("z", ColumnType.FLOAT),
            ),
        )
    )
    for _ in range(int(rng.integers(3, 9))):
        outer.insert(
            (
                None
                if rng.random() < 0.08
                else FUZZ_TEXT_DOMAIN[int(rng.integers(3))],
                int(rng.integers(0, 7)),
                None if rng.random() < 0.1 else float(int(rng.integers(0, 32))) / 4.0,
            )
        )
    return Database("fuzz", [fact, dim, outer])


def random_fuzz_value(rng: np.random.Generator, column: Column):
    """A random replacement value for a fuzz-database column (maybe NULL)."""
    if rng.random() < 0.12:
        return None
    if column.dtype is ColumnType.INT:
        return int(rng.integers(0, 9))
    if column.dtype is ColumnType.FLOAT:
        return float(int(rng.integers(0, 32))) / 4.0
    return FUZZ_TEXT_DOMAIN[int(rng.integers(len(FUZZ_TEXT_DOMAIN)))]


def random_support_set(
    db: Database,
    rng: np.random.Generator | int | None = None,
    size: int = 24,
    max_deltas: int = 3,
):
    """A random support set over ``db``: 1..max_deltas cell patches each.

    Unlike :class:`~repro.support.generator.NeighborSampler` this patches
    *any* column — including primary keys and join keys — which checkers
    must decide correctly. Replacement values always differ from the base
    cell (a support instance must be a *neighbor* of ``D``).
    """
    from repro.support.delta import CellDelta, SupportInstance
    from repro.support.generator import SupportSet

    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    tables = list(db.tables())
    instances = []
    for instance_id in range(size):
        wanted = 1 + int(rng.integers(max_deltas))
        used: set[tuple[str, int, str]] = set()
        deltas = []
        attempts = 0
        while len(deltas) < wanted and attempts < 50:
            attempts += 1
            relation = tables[int(rng.integers(len(tables)))]
            schema = relation.schema
            row_index = int(rng.integers(len(relation)))
            column = schema.columns[int(rng.integers(len(schema.columns)))]
            key = (schema.name.lower(), row_index, column.name.lower())
            if key in used:
                continue
            replacement = random_fuzz_value(rng, column)
            if replacement == relation.cell(row_index, column.name):
                continue
            used.add(key)
            deltas.append(
                CellDelta(schema.name, row_index, column.name, replacement)
            )
        instances.append(SupportInstance(instance_id, tuple(deltas)))
    return SupportSet(db, instances)


def _fuzz_fact_atom(rng: np.random.Generator, qualifier: str = "") -> str:
    """One random predicate atom over the fuzz fact table ``T``."""
    kind = int(rng.integers(7))
    op = ("=", "!=", "<", "<=", ">", ">=")[int(rng.integers(6))]
    if kind == 0:
        return f"{qualifier}x {op} {int(rng.integers(0, 9))}"
    if kind == 1:
        low = float(int(rng.integers(0, 16))) / 4.0
        return f"{qualifier}y between {low} and {low + float(int(rng.integers(1, 16))) / 4.0}"
    if kind == 2:
        return f"{qualifier}g in ('a', 'b')"
    if kind == 3:
        negated = "not " if rng.random() < 0.4 else ""
        return f"{qualifier}s {negated}like '{FUZZ_TEXT_DOMAIN[int(rng.integers(3))]}%'"
    if kind == 4:
        negated = "not " if rng.random() < 0.5 else ""
        return f"{qualifier}g is {negated}null"
    if kind == 5:
        return f"{qualifier}x + 1 {op} {int(rng.integers(1, 10))}"
    return f"{qualifier}k {op} {int(rng.integers(0, 5))}"


def _fuzz_where(rng: np.random.Generator, atoms: list[str]) -> str:
    if not atoms:
        return ""
    connector = " or " if len(atoms) > 1 and rng.random() < 0.3 else " and "
    return " where " + connector.join(atoms)


def _fuzz_aggs(rng: np.random.Generator, qualifier: str = "") -> list[str]:
    """1..3 random aggregate expressions over the fuzz fact table."""
    pool = [
        "count(*)",
        f"count({qualifier}s)",
        f"sum({qualifier}x)",
        f"avg({qualifier}x)",
        f"min({qualifier}y)",
        f"max({qualifier}y)",
        f"min({qualifier}s)",
        f"max({qualifier}x)",
        f"sum({qualifier}y)",
        f"avg({qualifier}y)",
    ]
    picks = rng.choice(len(pool), size=1 + int(rng.integers(3)), replace=False)
    return [pool[int(index)] for index in picks]


def random_fuzz_query_text(rng: np.random.Generator | int | None = None) -> str:
    """A random query over :func:`random_fuzz_database`'s schema.

    The grammar spans the conflict engine's whole decision surface: flat
    selections/projections, scalar aggregates, GROUP BY (with the group key
    sometimes *not* projected — the collision case), all five aggregate
    functions over INT/FLOAT/TEXT columns, ORDER BY, HAVING, DISTINCT,
    LIMIT, two-table equi-joins in flat, scalar, and grouped forms
    (including joined float SUM/AVG and HAVING), and three-table join
    chains ``T -> U -> V`` in all three forms. Extend it here (one new
    branch per feature) and every parity suite that samples it picks the
    new shapes up automatically.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    kind = int(rng.integers(16))
    atoms = [_fuzz_fact_atom(rng) for _ in range(int(rng.integers(3)))]
    where = _fuzz_where(rng, atoms)

    if kind == 0:
        order = " order by x" if rng.random() < 0.4 else ""
        return f"select x, s from T{where}{order}"
    if kind == 1:
        return f"select * from T{where}"
    if kind == 2:  # Sort below the projection (unsupported shape, full fallback)
        return f"select s from T{where} order by y desc"
    if kind == 3:
        return f"select {', '.join(_fuzz_aggs(rng))} from T{where}"
    if kind == 4:  # DISTINCT / LIMIT: fallback shapes stay parity-checked
        if rng.random() < 0.5:
            return f"select distinct g from T{where}"
        return f"select x from T{where} order by x limit {int(rng.integers(1, 5))}"
    if kind in (5, 6, 7):  # grouped single-table
        keys = [["g"], ["x"], ["g", "x"]][int(rng.integers(3))]
        aggs = _fuzz_aggs(rng)
        if rng.random() < 0.3:
            selected = aggs  # group key not projected: the collision case
        else:
            selected = keys + aggs
        having = ""
        if rng.random() < 0.25:
            having = f" having count(*) >= {int(rng.integers(1, 4))}"
        order = ""
        if rng.random() < 0.3:
            selected = selected + ["count(*) as c"]
            order = " order by c"
        return (
            f"select {', '.join(selected)} from T{where} "
            f"group by {', '.join(keys)}{having}{order}"
        )
    three_way = kind >= 12
    join_atoms = ["T.k = U.k"]
    if three_way:
        join_atoms.append("U.h = V.h")
    join_atoms += [_fuzz_fact_atom(rng, "T.") for _ in range(int(rng.integers(3)))]
    if rng.random() < 0.5:
        join_atoms.append(f"U.w {('<', '>=')[int(rng.integers(2))]} {int(rng.integers(0, 7))}")
    if rng.random() < 0.3:
        join_atoms.append(f"U.h = '{FUZZ_TEXT_DOMAIN[int(rng.integers(3))]}'")
    if three_way and rng.random() < 0.4:
        join_atoms.append(f"V.v {('<', '>=')[int(rng.integers(2))]} {int(rng.integers(0, 7))}")
    where = " where " + " and ".join(join_atoms)
    tables = "T, U, V" if three_way else "T, U"
    if kind == 8:
        order = " order by x" if rng.random() < 0.4 else ""
        return f"select T.x as x, U.w as w from T, U{where}{order}"
    if kind == 9:
        # Joined scalar aggregates, including float SUM/AVG — decided via
        # order-stable contribution enumeration.
        aggs = [
            "count(*)", "count(U.h)", "sum(T.x)", "avg(T.x)", "sum(U.w)",
            "sum(T.y)", "avg(T.y)",
        ]
        picks = rng.choice(len(aggs), size=1 + int(rng.integers(2)), replace=False)
        return f"select {', '.join(aggs[int(i)] for i in picks)} from T, U{where}"
    if kind in (10, 11):
        key = ("U.h", "T.g", "U.k")[int(rng.integers(3))]
        aggs = [
            "count(*)", "sum(T.x)", "min(T.y)", "max(U.w)", "count(T.s)",
            "sum(T.y)", "avg(T.y)",
        ]
        picks = rng.choice(len(aggs), size=1 + int(rng.integers(2)), replace=False)
        selected = [aggs[int(i)] for i in picks]
        if rng.random() >= 0.3:
            selected = [key] + selected
        having = ""
        if rng.random() < 0.3:
            having = f" having count(*) >= {int(rng.integers(1, 4))}"
        order = ""
        if rng.random() < 0.35:
            # Ordered grouped joins: ORDER BY ties are broken by group
            # emission order, which depends on join contribution *positions*
            # — the case where value-level comparisons alone are unsound.
            selected = selected + ["count(*) as c"]
            order = " order by c"
        return (
            f"select {', '.join(selected)} from T, U{where} "
            f"group by {key}{having}{order}"
        )
    if kind == 12:  # flat three-way chain
        order = " order by x" if rng.random() < 0.4 else ""
        return f"select T.x as x, U.w as w, V.v as v from {tables}{where}{order}"
    if kind == 13:  # scalar aggregates over the chain, floats from both ends
        aggs = [
            "count(*)", "sum(T.x)", "avg(T.x)", "sum(T.y)", "avg(T.y)",
            "sum(V.z)", "count(V.h)",
        ]
        picks = rng.choice(len(aggs), size=1 + int(rng.integers(2)), replace=False)
        return f"select {', '.join(aggs[int(i)] for i in picks)} from {tables}{where}"
    # kinds 14/15: grouped three-way, with HAVING or ordered output
    key = ("U.h", "T.g", "V.v")[int(rng.integers(3))]
    aggs = [
        "count(*)", "sum(T.x)", "sum(T.y)", "min(T.y)", "max(U.w)", "sum(V.z)",
    ]
    picks = rng.choice(len(aggs), size=1 + int(rng.integers(2)), replace=False)
    selected = [aggs[int(i)] for i in picks]
    if rng.random() >= 0.3:
        selected = [key] + selected
    having = ""
    order = ""
    if kind == 14 and rng.random() < 0.6:
        having = f" having count(*) >= {int(rng.integers(1, 4))}"
    if kind == 15 and rng.random() < 0.6:
        selected = selected + ["count(*) as c"]
        order = " order by c"
    return (
        f"select {', '.join(selected)} from {tables}{where} "
        f"group by {key}{having}{order}"
    )


def render_parity_repro(
    db: Database, support, query_text: str, note: str = ""
) -> str:
    """A standalone repro script for a cross-backend parity mismatch.

    The returned source rebuilds the database and support set literally (no
    seeds involved), runs every registered backend on the query, and prints
    each backend's hyperedge — ready to attach to a bug report or bisect.
    """
    lines = [
        '"""Auto-generated cross-backend parity repro.',
        "",
        f"{note}".rstrip(),
        "Run: PYTHONPATH=src python <this file>",
        '"""',
        "",
        "from repro.db.database import Database",
        "from repro.db.query import sql_query",
        "from repro.db.relation import Relation",
        "from repro.db.schema import Column, ColumnType, TableSchema",
        "from repro.qirana.conflict import ConflictSetEngine",
        "from repro.support.delta import CellDelta, SupportInstance",
        "from repro.support.generator import SupportSet",
        "",
        "tables = []",
    ]
    for relation in db.tables():
        schema = relation.schema
        columns = ", ".join(
            f"Column({column.name!r}, ColumnType.{column.dtype.name})"
            for column in schema.columns
        )
        lines.append(
            f"relation = Relation(TableSchema({schema.name!r}, ({columns},), "
            f"primary_key={tuple(schema.primary_key)!r}))"
        )
        lines.append(f"relation.insert_many({[tuple(row) for row in relation.rows]!r})")
        lines.append("tables.append(relation)")
    lines.append(f"db = Database({db.name!r}, tables)")
    lines.append("instances = [")
    for instance in support:
        deltas = ", ".join(
            f"CellDelta({d.table!r}, {d.row_index!r}, {d.column!r}, {d.value!r})"
            for d in instance.deltas
        )
        # A delta-less instance must render as () — "(,)" is a SyntaxError.
        tuple_source = f"({deltas},)" if instance.deltas else "()"
        lines.append(f"    SupportInstance({instance.instance_id}, {tuple_source}),")
    lines.append("]")
    lines.append("support = SupportSet(db, instances)")
    lines.append(f"query = sql_query({query_text!r}, db)")
    lines.append(
        "for backend in ('naive', 'incremental', 'vectorized', 'auto'):"
    )
    lines.append(
        "    edge = ConflictSetEngine(support, backend=backend).conflict_set(query)"
    )
    lines.append("    print(backend, sorted(edge))")
    return "\n".join(lines) + "\n"
