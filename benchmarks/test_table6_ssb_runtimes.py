"""Table 6: runtimes vs support size, SSB workload (construction excluded).

Paper finding: CIP's cost falls steeply with the support size (one LP
constraint per item, and B shrinks with the item count).
"""

from repro.experiments.figures import support_runtime_table

from benchmarks.conftest import save_artifact
import pytest

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow


SIZES = (100, 200, 400, 800)


def test_table6_ssb_support_runtimes(benchmark):
    artifact = benchmark.pedantic(
        support_runtime_table,
        args=("ssb",),
        kwargs={"support_sizes": SIZES, "include_construction": False},
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    runtimes = artifact.data["runtimes"]

    smallest, largest = min(SIZES), max(SIZES)
    # CIP has one constraint per item: cost grows with the support size.
    assert runtimes[largest]["cip"] >= runtimes[smallest]["cip"] * 0.5
    # UBP stays flat and cheap.
    assert runtimes[largest]["ubp"] < 1.0
