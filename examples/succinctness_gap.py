"""How much revenue do succinct pricing families leave on the table?

Section 4 of the paper proves worst-case Ω(log m) gaps between the succinct
families and the optimal subadditive pricing, but worst-case constructions
say little about typical instances. On instances small enough for the exact
oracles (`repro.core.algorithms.exact`) we can measure the *actual* gaps:

    UBP <= UIP-family <= exact item OPT <= exact subadditive OPT <= sum(v)

This example prints the whole chain for (a) the paper's three lower-bound
constructions shrunk to oracle scale and (b) random instances, showing how
far from the worst case typical hypergraphs sit.

Run:  python examples/succinctness_gap.py
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import (
    LPIP,
    UBP,
    UIP,
    exact_optimal_item_pricing,
    exact_optimal_subadditive_revenue,
)
from repro.workloads.synthetic import (
    harmonic_instance,
    laminar_instance,
    partition_instance,
    random_instance,
)


def report(name, instance):
    total = instance.total_valuation()
    ubp = UBP().run(instance).revenue
    uip = UIP().run(instance).revenue
    lpip = LPIP().run(instance).revenue
    _, item_opt = exact_optimal_item_pricing(instance, max_edges=12)
    sub_opt = exact_optimal_subadditive_revenue(
        instance, max_edges=10, max_items=8
    )
    print(f"{name:26s} m={instance.num_edges:2d}  "
          f"UBP {ubp:6.2f}  UIP {uip:6.2f}  LPIP {lpip:6.2f}  "
          f"item-OPT {item_opt:6.2f}  sub-OPT {sub_opt:6.2f}  Σv {total:6.2f}")
    return ubp, uip, item_opt, sub_opt, total


def main() -> None:
    print("exact revenue chains (all numbers absolute):\n")

    # (a) the paper's lower-bound constructions, shrunk to oracle scale.
    print("paper lower-bound constructions —")
    # Lemma 2: harmonic valuations kill uniform bundle pricing.
    h = harmonic_instance(8)
    ubp, _, item_opt, _, total = report("Lemma 2 (harmonic, m=8)", h)
    print(f"  -> UBP recovers {ubp / total:.0%} of Σv; "
          f"item pricing recovers {item_opt / total:.0%} (gap is real)\n")

    # Lemma 3: uniform valuations on a partition system kill item pricing.
    p = partition_instance(4)
    ubp, uip, item_opt, sub_opt, total = report("Lemma 3 (partition, n=4)", p)
    print(f"  -> item OPT {item_opt / total:.0%} of Σv vs "
          f"UBP {ubp / total:.0%} (the mirror-image gap)\n")

    # Lemma 4: the laminar family hurts both families at once.
    lam = laminar_instance(1, copy_cap=2)
    ubp, uip, item_opt, sub_opt, total = report("Lemma 4 (laminar, t=1)", lam)
    print(f"  -> both families below the subadditive optimum "
          f"({max(ubp, item_opt) / sub_opt:.0%} of OPT)\n")

    # (b) random instances: the typical case.
    print("random tiny instances (n=5, m=6, Uniform[0,50] valuations) —")
    rng = np.random.default_rng(4)
    fractions = []
    for index in range(8):
        instance = random_instance(
            num_items=5, num_edges=6, max_edge_size=4,
            valuation_high=50.0, rng=rng,
        )
        _, _, item_opt, sub_opt, _ = report(f"random #{index}", instance)
        if sub_opt > 0:
            fractions.append(item_opt / sub_opt)
    print(f"\nmean item-OPT / subadditive-OPT on random instances: "
          f"{np.mean(fractions):.1%}")
    print("typical instances sit far from the Ω(log m) worst case — the")
    print("paper's conclusion that succinct item pricing is a good practical")
    print("choice, certified against the exact optimum.")


if __name__ == "__main__":
    main()
