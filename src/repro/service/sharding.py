"""``ShardedPricingService``: support-partitioned, shard-per-scheduler serving.

A single :class:`~repro.service.server.PricingService` funnels every cache
miss through one market and one scheduler thread, and its caches live in one
process's memory budget. This module scales the serving tier *horizontally*
the way a deployed pricing tier would — by partitioning the support set:

- **Support partitions** — :func:`partition_support` splits the support set
  into ``K`` round-robin shards, each a re-indexed
  :class:`~repro.support.generator.SupportSet` that remembers its
  local-to-global instance mapping. Conflict-set membership is decided per
  instance (``D' in CS(Q) iff Q(D') != Q(D)``), so the union of per-shard
  partial conflict sets *is* the full conflict set: scatter/gather is exact,
  and prices are bit-equal to the unsharded oracle.
- **One market + scheduler per shard** — each shard runs its own
  :class:`~repro.qirana.broker.QueryMarket` over its partition and its own
  :class:`~repro.service.batching.MicroBatcher`, so partial conflict sets
  for concurrent misses are micro-batched per shard (and, on multi-core
  hardware, computed in parallel across shards).
- **Consistent-hash routing** — every request has a *home shard*, chosen by
  :class:`ConsistentHashRouter` over its canonical key (a SHA-256 plan
  fingerprint, stable across restarts and processes). The home shard owns
  the request's quote-cache entry and its admission/latency accounting, so
  cache locality survives resharding: changing ``K`` re-homes only ~``1/K``
  of the keyspace instead of shuffling everything.
- **Bounded per-shard caches** — quote and bundle caches are bounded *per
  shard* (a deployed shard is a node with a fixed memory budget), so adding
  shards grows the tier's aggregate cache capacity linearly. That is the
  single-core scaling mechanism the throughput benchmark measures: a
  working set that thrashes one shard's caches (evict → recompute the
  conflict set) fits comfortably in four shards' caches.
- **Admission control** — per-shard queues are bounded; overload sheds with
  :class:`~repro.exceptions.ServiceOverloadError` and per-shard
  accepted/shed counters instead of queueing unboundedly.
- **Online deltas** — :meth:`ShardedPricingService.apply_delta` scatters a
  staged market mutation (see :mod:`repro.delta`) across the shards under
  the market lock plus every shard's compute lock: adds route to their
  round-robin home shard, retires map to the owning shard's local ids, and
  base changes notify every partition over the shared database. Per-shard
  quote and partial-bundle caches are invalidated *surgically* — only
  entries whose referenced columns intersect the delta's footprint drop.
- **Warm-start snapshots** — :meth:`ShardedPricingService.snapshot`
  persists the canonical quote cache (plus pricing, transactions, and buyer
  histories) through :mod:`repro.qirana.persistence`; :meth:`restore`
  re-homes every entry through the ring and re-seeds each shard's partial
  bundle cache, so a restarted tier — even one restarted with a *different*
  shard count — serves its previous working set as cache hits.

Pricing itself stays global (one pricing function, one transaction ledger,
one history-aware ledger), guarded by a single lock that is only held for
the O(bundle) price application — never during conflict computation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import PricingFunction, extend_pricing
from repro.db.database import Database
from repro.db.query import Query, sql_query
from repro.delta import (
    DeltaEffect,
    DeltaLog,
    DeltaOp,
    DeltaRecord,
    apply_to_support,
    delta_from_dict,
    validate_op,
)
from repro.exceptions import (
    DeltaValidationError,
    PricingError,
    ServiceError,
    ServiceOverloadError,
    SnapshotError,
)
from repro.qirana.backends import referenced_columns
from repro.qirana.broker import PriceQuote, QueryMarket, Transaction
from repro.qirana.history import HistoryAwareLedger
from repro.qirana.persistence import QuoteEntry, load_market_state, save_market_state
from repro.service.batching import BatcherStats, BatchRequest, MicroBatcher
from repro.service.cache import CacheStats, LRUCache, QuoteCache
from repro.service.server import CanonicalServingMixin
from repro.support.generator import SupportSet

__all__ = [
    "ConsistentHashRouter",
    "ShardPartition",
    "ShardStats",
    "ShardedPricingService",
    "ShardedServiceStats",
    "partition_support",
]


# ---------------------------------------------------------------------------
# Support partitioning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPartition:
    """One shard's slice of the support set.

    ``support`` is a re-indexed :class:`SupportSet` (instance ids are
    consecutive shard-local ids); ``global_ids[local]`` maps back to the
    instance's id in the full support set, which is the id space bundles,
    pricings, and ledgers speak.
    """

    shard_id: int
    num_shards: int
    support: SupportSet
    global_ids: np.ndarray

    def __len__(self) -> int:
        return len(self.support)

    def to_global(self, local_bundle: frozenset[int]) -> frozenset[int]:
        """Map a shard-local conflict set to global instance ids."""
        return frozenset(int(self.global_ids[local]) for local in local_bundle)


def partition_support(support: SupportSet, num_shards: int) -> list[ShardPartition]:
    """Round-robin partition of ``support`` into ``num_shards`` shards.

    Round-robin keeps every shard's per-table/per-column touch distribution
    statistically identical to the full support's, so per-shard candidate
    pruning and batch kernels behave the same at ``1/K`` scale.
    """
    if num_shards < 1:
        raise ServiceError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > len(support):
        raise ServiceError(
            f"cannot split {len(support)} support instances into "
            f"{num_shards} shards"
        )
    retired = support.retired_ids
    partitions = []
    for shard in range(num_shards):
        members = support.instances[shard::num_shards]
        reindexed = [
            dataclasses.replace(instance, instance_id=local)
            for local, instance in enumerate(members)
        ]
        shard_support = SupportSet(support.base, reindexed)
        # Retirement must survive partitioning: a tier built over an
        # already-mutated support (restart, oracle rebuild) must not
        # resurrect retired instances inside its shards.
        local_retired = [
            local
            for local in range(len(members))
            if shard + local * num_shards in retired
        ]
        if local_retired:
            shard_support.retire_instances(local_retired)
        partitions.append(
            ShardPartition(
                shard_id=shard,
                num_shards=num_shards,
                support=shard_support,
                global_ids=np.arange(shard, len(support), num_shards, dtype=np.int64),
            )
        )
    return partitions


# ---------------------------------------------------------------------------
# Consistent-hash routing
# ---------------------------------------------------------------------------


def _ring_hash(token: str) -> int:
    """A stable 64-bit ring position (SHA-256, not the per-process hash())."""
    return int.from_bytes(hashlib.sha256(token.encode()).digest()[:8], "big")


class ConsistentHashRouter:
    """Key -> shard assignment on a SHA-256 hash ring with virtual nodes.

    Each shard owns ``replicas`` points on a 64-bit ring; a key routes to
    the shard owning the first point at or after the key's own ring
    position (wrapping). The mapping is deterministic across processes and
    restarts, and adding or removing one shard re-homes only the arcs that
    shard's points cover (~``1/K`` of the keyspace) — the property that
    keeps persisted caches mostly warm through a reshard.
    """

    def __init__(self, num_shards: int, *, replicas: int = 64):
        if num_shards < 1:
            raise ServiceError(f"num_shards must be >= 1, got {num_shards}")
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self.num_shards = num_shards
        self.replicas = replicas
        points = [
            (_ring_hash(f"shard-{shard}-replica-{replica}"), shard)
            for shard in range(num_shards)
            for replica in range(replicas)
        ]
        points.sort()
        self._hashes = np.array([point for point, _ in points], dtype=np.uint64)
        self._shards = np.array([shard for _, shard in points], dtype=np.int64)

    def route(self, key: str) -> int:
        """The home shard of ``key``."""
        position = np.uint64(_ring_hash(key))
        index = int(np.searchsorted(self._hashes, position, side="left"))
        return int(self._shards[index % len(self._shards)])


# ---------------------------------------------------------------------------
# Per-shard worker
# ---------------------------------------------------------------------------


class _ShardWorker:
    """One shard: a market over its partition plus a micro-batch scheduler.

    The worker computes *partial* conflict sets (already mapped to global
    instance ids) and memoizes them in a bounded LRU keyed by the canonical
    fingerprint. It never prices anything — pricing is global and applied by
    the front-end under the pricing lock.
    """

    def __init__(
        self,
        partition: ShardPartition,
        *,
        conflict_backend: str = "auto",
        bundle_cache_capacity: int = 4096,
        max_batch_size: int = 64,
        max_batch_delay: float = 0.001,
        max_queue_depth: int | None = 256,
        start: bool = True,
    ):
        self.partition = partition
        self.market = QueryMarket(partition.support, conflict_backend=conflict_backend)
        # QuoteCache, not plain LRU: partial bundles carry their query's
        # referenced-column footprint so market deltas can invalidate them
        # surgically (entries seeded from snapshots have no footprint and
        # drop conservatively).
        self._bundles = QuoteCache(bundle_cache_capacity)
        #: Serializes conflict computation against market deltas: a delta
        #: holds every shard's compute lock, so in-flight flushes finish
        #: against the pre-delta partition and later flushes see the
        #: post-delta one — never a half-mutated support set.
        self.compute_lock = threading.Lock()
        self.batcher = MicroBatcher(
            self._execute,
            max_batch_size=max_batch_size,
            max_batch_delay=max_batch_delay,
            max_queue_depth=max_queue_depth,
            name=f"pricing-shard-{partition.shard_id}",
            start=start,
        )

    def submit(self, requests: list[BatchRequest]) -> None:
        """Queue sub-requests (payload: planned query, key: canonical)."""
        self.batcher.submit(requests)

    def seed(self, key: str, partial_bundle: frozenset[int]) -> None:
        """Warm the partial-bundle cache (snapshot restore)."""
        self._bundles.put(key, partial_bundle)

    def _execute(self, batch: list[BatchRequest]) -> list[frozenset[int]]:
        # Deduplicate within the flush: concurrent misses on one canonical
        # key scatter independently but are computed once per shard, and
        # each unique key consults the cache exactly once (the hit/miss
        # counters feed BENCH_service.json — no synthetic read-back hits).
        with self.compute_lock:
            resolved: dict[str, frozenset[int]] = {}
            missing: dict[str, Query] = {}
            for request in batch:
                if request.key in resolved or request.key in missing:
                    continue
                partial = self._bundles.get(request.key)
                if partial is None:
                    missing[request.key] = request.payload
                else:
                    resolved[request.key] = partial
            if missing:
                hypergraph = self.market.engine.build_hypergraph(
                    list(missing.values())
                )
                for (key, planned), edge in zip(missing.items(), hypergraph.edges):
                    partial = self.partition.to_global(edge)
                    columns = frozenset(
                        referenced_columns(planned, self.market.base)
                    )
                    self._bundles.put(key, partial, columns=columns)
                    # Answer from the computed value, not a cache read-back:
                    # an LRU smaller than the flush may already have evicted
                    # it.
                    resolved[key] = partial
        return [resolved[request.key] for request in batch]


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardStats:
    """One shard's cache, scheduling, and admission counters."""

    shard_id: int
    support_size: int
    quotes: CacheStats
    bundles: CacheStats
    batcher: BatcherStats
    requests_accepted: int
    requests_shed: int

    @property
    def shed_rate(self) -> float:
        offered = self.requests_accepted + self.requests_shed
        return self.requests_shed / offered if offered else 0.0

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "support_size": self.support_size,
            "quote_cache": self.quotes.as_dict(),
            "bundle_cache": self.bundles.as_dict(),
            "batcher": self.batcher.as_dict(),
            "requests_accepted": self.requests_accepted,
            "requests_shed": self.requests_shed,
            "shed_rate": self.shed_rate,
        }


@dataclass(frozen=True)
class ShardedServiceStats:
    """A snapshot of the whole sharded tier: per-shard plus aggregates."""

    shards: tuple[ShardStats, ...]
    plans: CacheStats
    transactions: int
    #: Delta-log counters (accepted/applied/cancelled/rejected).
    deltas: dict | None = None
    #: High-water data version of applied market deltas.
    data_version: int = 0

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def accepted(self) -> int:
        return sum(shard.requests_accepted for shard in self.shards)

    @property
    def shed(self) -> int:
        return sum(shard.requests_shed for shard in self.shards)

    @property
    def shed_rate(self) -> float:
        offered = self.accepted + self.shed
        return self.shed / offered if offered else 0.0

    def quote_cache_totals(self) -> dict:
        """Aggregate quote-cache counters across shards."""
        hits = sum(shard.quotes.hits for shard in self.shards)
        misses = sum(shard.quotes.misses for shard in self.shards)
        return {
            "capacity": sum(shard.quotes.capacity for shard in self.shards),
            "size": sum(shard.quotes.size for shard in self.shards),
            "hits": hits,
            "misses": misses,
            "evictions": sum(shard.quotes.evictions for shard in self.shards),
            "stale_drops": sum(shard.quotes.stale_drops for shard in self.shards),
            "delta_drops": sum(shard.quotes.delta_drops for shard in self.shards),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }

    def as_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "shards": [shard.as_dict() for shard in self.shards],
            "quote_cache": self.quote_cache_totals(),
            "plan_memo": self.plans.as_dict(),
            "requests_accepted": self.accepted,
            "requests_shed": self.shed,
            "shed_rate": self.shed_rate,
            "transactions": self.transactions,
            "deltas": self.deltas,
            "data_version": self.data_version,
        }


# ---------------------------------------------------------------------------
# The sharded service
# ---------------------------------------------------------------------------


class ShardedPricingService(CanonicalServingMixin):
    """Support-partitioned serving tier: K markets, K schedulers, one price.

    Parameters
    ----------
    support:
        The full support set; it is partitioned round-robin into
        ``num_shards`` shards.
    num_shards / replicas:
        Shard count and virtual nodes per shard on the consistent-hash
        ring.
    conflict_backend:
        Backend name for every shard market (``auto`` re-decides per shard:
        small partitions may prefer the incremental checkers).
    cache_capacity / bundle_cache_capacity:
        **Per-shard** bounds for the canonical quote cache and the partial
        conflict-set cache (``bundle_cache_capacity`` defaults to
        ``cache_capacity``). Per-shard budgets are the point: adding shards
        adds aggregate cache, exactly like adding nodes to a cache tier.
    max_batch_size / max_batch_delay / max_queue_depth:
        Per-shard micro-batching and admission-control knobs (see
        :class:`~repro.service.batching.MicroBatcher`).
    start:
        When ``False`` no scheduler threads run and misses are computed
        synchronously (deterministic test mode).
    """

    def __init__(
        self,
        support: SupportSet,
        *,
        num_shards: int = 4,
        replicas: int = 64,
        conflict_backend: str = "auto",
        max_batch_size: int = 64,
        max_batch_delay: float = 0.001,
        max_queue_depth: int | None = 256,
        cache_capacity: int = 4096,
        bundle_cache_capacity: int | None = None,
        plan_memo_capacity: int = 8192,
        start: bool = True,
    ):
        self.support = support
        self.partitions = partition_support(support, num_shards)
        self.num_shards = num_shards
        self._router = ConsistentHashRouter(num_shards, replicas=replicas)
        if bundle_cache_capacity is None:
            bundle_cache_capacity = cache_capacity
        self._workers = [
            _ShardWorker(
                partition,
                conflict_backend=conflict_backend,
                bundle_cache_capacity=bundle_cache_capacity,
                max_batch_size=max_batch_size,
                max_batch_delay=max_batch_delay,
                max_queue_depth=max_queue_depth,
                start=start,
            )
            for partition in self.partitions
        ]
        self._quote_caches = [QuoteCache(cache_capacity) for _ in self.partitions]
        self._plans = LRUCache(plan_memo_capacity)
        # global -> owning shard, for re-seeding partial caches on restore.
        self._shard_of = np.empty(len(support), dtype=np.int64)
        for partition in self.partitions:
            self._shard_of[partition.global_ids] = partition.shard_id
        # Pricing, ledgers, and transactions are tier-global; the lock is
        # held only for price application and ledger mutation, never during
        # conflict computation.
        self._market_lock = threading.RLock()
        self._pricing: PricingFunction | None = None
        self._ledger = HistoryAwareLedger(None)
        self._delta_log = DeltaLog()
        self.transactions: list[Transaction] = []
        # Per-home-shard admission accounting (a request is accepted when
        # every shard admitted its sub-request).
        self._requests_accepted = [0] * num_shards
        self._requests_shed = [0] * num_shards

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every shard's scheduler thread (idempotent)."""
        for worker in self._workers:
            worker.batcher.start()

    def close(self) -> None:
        """Flush and stop every shard's scheduler."""
        for worker in self._workers:
            worker.batcher.close()

    def __enter__(self) -> "ShardedPricingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pricing management
    # ------------------------------------------------------------------

    @property
    def pricing(self) -> PricingFunction | None:
        return self._pricing

    @property
    def base(self) -> Database:
        """The seller's database."""
        return self.support.base

    @property
    def ledger(self) -> HistoryAwareLedger:
        return self._ledger

    @property
    def revenue(self) -> float:
        """Total revenue collected so far."""
        return sum(transaction.price for transaction in self.transactions)

    def install_pricing(self, pricing: PricingFunction) -> None:
        """Install a new pricing; every shard's cached quotes re-price.

        An install changes prices, not conflict sets, so each shard's
        cached quotes are rewritten in place under the new pricing instead
        of being dropped — the working set stays warm across an install.
        """
        with self._market_lock:
            self._pricing = pricing
            self._ledger.pricing = pricing
            for cache in self._quote_caches:
                cache.reprice(
                    lambda quote: PriceQuote(
                        quote.query_text,
                        pricing.price(quote.bundle),
                        quote.bundle,
                    )
                )

    def optimize_pricing(
        self,
        queries: list[Query | str],
        valuations,
        algorithm: PricingAlgorithm,
    ) -> PricingResult:
        """Price a workload on the sharded engine and install the result.

        The workload's hypergraph is built by the same scatter/gather path
        that serves quotes, so the partial-bundle caches come out warm.
        """
        instance = self.build_instance(queries, valuations)
        result = algorithm.run(instance)
        self.install_pricing(result.pricing)
        return result

    def build_instance(
        self,
        queries: list[Query | str],
        valuations,
        name: str = "sharded-market",
    ) -> PricingInstance:
        """Scatter/gather a workload into a pricing instance."""
        if len(queries) != len(valuations):
            raise PricingError(
                f"{len(queries)} queries but {len(valuations)} valuations"
            )
        resolved = [self._canonical(query) for query in queries]
        gathers = self._scatter(resolved)
        edges = [self._gather(requests) for requests in gathers]
        hypergraph = Hypergraph(len(self.support), edges)
        return PricingInstance(
            hypergraph, np.asarray(valuations, dtype=float), name
        )

    # ------------------------------------------------------------------
    # Buyer-facing API
    # ------------------------------------------------------------------

    def quote_many(self, queries: list[Query | str]) -> list[PriceQuote]:
        """Price many queries; misses scatter together for batching."""
        resolved = [self._canonical(query) for query in queries]
        results: list[PriceQuote | None] = []
        misses: list[tuple[int, Query, str, tuple[int, int]]] = []
        for position, (planned, key) in enumerate(resolved):
            cache = self._quote_caches[self._router.route(key)]
            cached = cache.get(key)
            if cached is not None:
                results.append(self._restamp(cached, planned))
            else:
                results.append(None)
                # Stamps captured before the scatter: if a delta lands while
                # the shards compute, the cache put can tell whether this
                # quote's footprint was invalidated in between.
                misses.append((position, planned, key, cache.stamps()))
        if misses:
            if self._pricing is None:
                raise PricingError(
                    "no pricing installed; call install_pricing first"
                )
            gathers = self._scatter(
                [(planned, key) for _, planned, key, _ in misses]
            )
            for (position, planned, key, stamps), requests in zip(misses, gathers):
                bundle = self._gather(requests)
                results[position] = self._price_and_cache(
                    planned, key, bundle, stamps
                )
        return results

    def home_shard(self, query: Query | str) -> int:
        """The shard owning this query's cache entry and accounting."""
        _, key = self._canonical(query)
        return self._router.route(key)

    # ------------------------------------------------------------------
    # Online deltas
    # ------------------------------------------------------------------

    @property
    def delta_log(self) -> DeltaLog:
        return self._delta_log

    @property
    def data_version(self) -> int:
        """High-water data version of applied deltas."""
        return self._delta_log.applied_version

    def accept_delta(self, op: DeltaOp | dict) -> int:
        """Stage a delta for later apply/cancel; returns its id."""
        if isinstance(op, dict):
            op = delta_from_dict(op)
        return self._delta_log.accept(op)

    def cancel_delta(self, delta_id: int) -> DeltaRecord:
        """Cancel a staged delta (typed error if not staged)."""
        return self._delta_log.cancel(delta_id)

    def apply_delta(self, delta: DeltaOp | dict | int) -> DeltaEffect:
        """Validate and apply a delta across every shard, atomically.

        Accepts a staged delta id, a raw op, or a JSON payload (raw ops are
        auto-accepted into the log first). The delta holds the tier's market
        lock *and* every shard's compute lock, so each in-flight scatter
        either finished computing against the pre-delta partitions (its
        cache put is policed by the delta epoch) or starts after the
        mutation is complete on every shard — never against a half-mutated
        tier.
        """
        if isinstance(delta, int):
            delta_id = delta
            op = self._delta_log.staged_op(delta_id)
        else:
            op = delta_from_dict(delta) if isinstance(delta, dict) else delta
            delta_id = self._delta_log.accept(op)
        with self._market_lock:
            for worker in self._workers:
                worker.compute_lock.acquire()
            try:
                try:
                    validate_op(op, self.support)
                except DeltaValidationError as exc:
                    self._delta_log.mark_rejected(delta_id, str(exc))
                    raise
                effect = self._apply_to_shards(op)
                self._delta_log.mark_applied(delta_id)
                if effect.added_ids and self._pricing is not None:
                    # New instances extend the installed pricing's item
                    # universe; existing weights are untouched, so every
                    # surviving cached price stays bit-identical.
                    self._pricing = extend_pricing(
                        self._pricing, len(self.support)
                    )
                    self._ledger.pricing = self._pricing
                for worker, cache in zip(self._workers, self._quote_caches):
                    worker._bundles.invalidate(
                        effect.column_pairs, effect.whole_tables
                    )
                    cache.invalidate(effect.column_pairs, effect.whole_tables)
            finally:
                for worker in self._workers:
                    worker.compute_lock.release()
        return effect

    def _apply_to_shards(self, op: DeltaOp) -> DeltaEffect:
        """Mutate the full support and scatter the change to the shards."""
        effect = apply_to_support(op, self.support)
        if effect.base_changed:
            # The base Database object is shared by every partition, so the
            # full-support apply above already mutated the rows each shard
            # sees; shards only need notification (drop materialized rows,
            # bump data versions) plus backend-side invalidation of cached
            # table batches and compiled plans.
            for worker in self._workers:
                worker.partition.support.note_base_change()
                worker.market.engine.invalidate_tables(effect.touched_tables)
        for global_id in effect.added_ids:
            self._add_to_shard(global_id)
        if effect.retired_ids:
            self._retire_from_shards(effect.retired_ids)
        return effect

    def _add_to_shard(self, global_id: int) -> None:
        """Route a freshly added instance to its round-robin home shard."""
        shard = global_id % self.num_shards
        partition = self.partitions[shard]
        instance = self.support.instances[global_id]
        local = len(partition.support.instances)
        partition.support.append_instances(
            [dataclasses.replace(instance, instance_id=local)]
        )
        # ShardPartition is frozen; swap in a copy with the grown id map.
        # The worker's market keeps pricing the same (mutated-in-place)
        # SupportSet object, and global_ids stays sorted ascending (new
        # global ids always exceed existing ones), preserving the
        # searchsorted lookup in _retire_from_shards.
        updated = dataclasses.replace(
            partition,
            global_ids=np.append(partition.global_ids, np.int64(global_id)),
        )
        self.partitions[shard] = updated
        self._workers[shard].partition = updated
        self._shard_of = np.append(self._shard_of, np.int64(shard))

    def _retire_from_shards(self, retired_ids) -> None:
        """Retire global instances on whichever shards own them."""
        by_shard: dict[int, list[int]] = {}
        for global_id in retired_ids:
            shard = int(self._shard_of[global_id])
            partition = self.partitions[shard]
            local = int(np.searchsorted(partition.global_ids, global_id))
            by_shard.setdefault(shard, []).append(local)
        for shard, local_ids in by_shard.items():
            self.partitions[shard].support.retire_instances(local_ids)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self, path: str | Path) -> None:
        """Persist pricing, transactions, histories, and every shard's quotes."""
        with self._market_lock:
            if self._pricing is None:
                raise PricingError("no pricing installed; nothing to snapshot")
            entries = [
                QuoteEntry(key, quote.query_text, quote.price, quote.bundle)
                for cache in self._quote_caches
                for key, quote in cache.entries()
            ]
            save_market_state(
                self._pricing,
                {entry.query_text: entry.bundle for entry in entries},
                path,
                transactions=self.transactions,
                ledger=self._ledger,
                quotes=entries,
                data_version=self._delta_log.applied_version,
            )

    def restore(self, path: str | Path) -> None:
        """Rehydrate the tier warm — even under a different shard count.

        Every persisted quote re-routes through the ring to its (possibly
        new) home shard's cache, and its bundle is split back into per-shard
        partials, so neither the pricing path nor the conflict engines see
        the restored working set again.
        """
        state = load_market_state(path)
        if state.data_version < self._delta_log.applied_version:
            raise SnapshotError(
                f"snapshot data version {state.data_version} is older than "
                f"the live market ({self._delta_log.applied_version}); its "
                f"bundles predate applied deltas and must not be served"
            )
        with self._market_lock:
            self._delta_log = DeltaLog(start_version=state.data_version)
            self._pricing = state.pricing
            self._ledger.pricing = state.pricing
            self.transactions[:] = list(state.transactions)
            self._ledger.owned = dict(state.owned)
            self._ledger.total_paid = dict(state.total_paid)
            for cache in self._quote_caches:
                cache.bump_generation()
            for entry in state.quotes:
                home = self._router.route(entry.key)
                self._quote_caches[home].put(
                    entry.key,
                    PriceQuote(entry.query_text, entry.price, entry.bundle),
                )
                self._seed_partials(entry.key, entry.bundle)

    def _seed_partials(self, key: str, bundle: frozenset[int]) -> None:
        members = np.fromiter(bundle, dtype=np.int64, count=len(bundle))
        owners = self._shard_of[members] if len(members) else members
        for worker in self._workers:
            shard = worker.partition.shard_id
            partial = frozenset(
                int(instance) for instance in members[owners == shard]
            )
            worker.seed(key, partial)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> ShardedServiceStats:
        with self._market_lock:
            accepted = list(self._requests_accepted)
            shed = list(self._requests_shed)
        return ShardedServiceStats(
            shards=tuple(
                ShardStats(
                    shard_id=worker.partition.shard_id,
                    support_size=len(worker.partition),
                    quotes=self._quote_caches[index].stats(),
                    bundles=worker._bundles.stats(),
                    batcher=worker.batcher.stats(),
                    requests_accepted=accepted[index],
                    requests_shed=shed[index],
                )
                for index, worker in enumerate(self._workers)
            ),
            plans=self._plans.stats(),
            transactions=len(self.transactions),
            deltas=self._delta_log.counters.as_dict(),
            data_version=self._delta_log.applied_version,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan(self, text: str) -> Query:
        return sql_query(text, self.base)

    def _quote_planned(self, planned: Query, key: str) -> PriceQuote:
        cache = self._quote_caches[self._router.route(key)]
        cached = cache.get(key)
        if cached is not None:
            return self._restamp(cached, planned)
        if self._pricing is None:
            raise PricingError("no pricing installed; call install_pricing first")
        stamps = cache.stamps()
        (requests,) = self._scatter([(planned, key)])
        bundle = self._gather(requests)
        return self._price_and_cache(planned, key, bundle, stamps)

    def _scatter(
        self, resolved: list[tuple[Query, str]]
    ) -> list[list[BatchRequest]]:
        """Submit one sub-request per (query, shard); returns per-query rows.

        Admission is per shard and all-or-nothing per submission: when any
        shard sheds, the whole scatter fails with
        :class:`ServiceOverloadError` and the shed is charged to each
        query's *home* shard. Every shard's queue is pre-checked before
        anything is enqueued, so under sustained overload a shed request
        fails cheaply instead of leaving K-1 shards' worth of partial
        conflict-set work behind; the pre-check is advisory (queues move
        concurrently) and :meth:`MicroBatcher.submit` stays the
        authoritative bound — on the rare race, sub-requests already queued
        on earlier shards still complete and warm their partial caches, so
        no state is lost.
        """
        rows = [
            [BatchRequest.make(planned, key) for _ in self._workers]
            for planned, key in resolved
        ]
        homes = [self._router.route(key) for _, key in resolved]
        try:
            for worker in self._workers:
                if worker.batcher.would_shed(len(rows)):
                    raise ServiceOverloadError(
                        f"{worker.batcher.name} queue is full; request shed "
                        f"before scatter"
                    )
            for index, worker in enumerate(self._workers):
                worker.submit([row[index] for row in rows])
        except ServiceOverloadError:
            with self._market_lock:
                for home in homes:
                    self._requests_shed[home] += 1
            raise
        with self._market_lock:
            for home in homes:
                self._requests_accepted[home] += 1
        return rows

    def _gather(self, requests: list[BatchRequest]) -> frozenset[int]:
        """Union the partial conflict sets of one scattered query."""
        partials = [request.future.result() for request in requests]
        return frozenset().union(*partials)

    def _price_and_cache(
        self,
        planned: Query,
        key: str,
        bundle: frozenset[int],
        stamps: tuple[int, int] | None = None,
    ) -> PriceQuote:
        cache = self._quote_caches[self._router.route(key)]
        with self._market_lock:
            if self._pricing is None:
                raise PricingError(
                    "no pricing installed; call install_pricing first"
                )
            price = self._pricing.price(bundle)
            # Captured inside the pricing critical section: a concurrent
            # install_pricing cannot stamp this quote as fresh. The delta
            # epoch, by contrast, comes from *before* the scatter (when
            # given): the bundle was computed against that epoch's market,
            # and the put below keeps it only if no delta since touched the
            # query's referenced columns.
            generation = cache.generation
            delta_epoch = stamps[1] if stamps is not None else None
        quote = PriceQuote(planned.text, price, bundle)
        cache.put(
            key,
            quote,
            generation=generation,
            columns=frozenset(referenced_columns(planned, self.base)),
            delta_epoch=delta_epoch,
        )
        return quote

    def _append_transaction(self, transaction: Transaction) -> None:
        """Record a completed sale (caller holds the market lock)."""
        self.transactions.append(transaction)
