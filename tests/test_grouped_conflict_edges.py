"""Targeted edge cases for grouped conflict decisions, vs the naive oracle.

The grouped kernels (incremental checker and vectorized segment kernel) have
four classic failure modes, each pinned here against full re-execution:
groups *created or destroyed* by a patch, NULL group keys, MIN/MAX ties
under removal, and the degenerate single-group GROUP BY. Every case asserts
exact hyperedge parity across all backends, plus — where the shape is
batchable — that the vectorized backend actually decided it (backend
counters in ``ConflictSetEngine.diagnostics``), not its fallback.
"""

import pytest

from repro.db.database import Database
from repro.db.query import sql_query
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.qirana.conflict import ConflictSetEngine
from repro.support.delta import CellDelta, SupportInstance
from repro.support.generator import SupportSet

BACKENDS = ("naive", "incremental", "vectorized", "auto")


def assert_parity(support, queries, expect_vectorized=()):
    """All backends agree with naive; listed queries decided by the batch path."""
    queries = [query for query in queries]
    reference = None
    for backend in BACKENDS:
        engine = ConflictSetEngine(support, backend=backend)
        edges = [engine.conflict_set(query) for query in queries]
        if reference is None:
            reference = edges
        else:
            for query, edge, expected in zip(queries, edges, reference):
                assert edge == expected, (backend, query.text)
        if backend == "vectorized":
            decided = engine.diagnostics.get("vectorized", {}).get("queries", 0)
            assert decided >= len(expect_vectorized), engine.diagnostics
    return reference


@pytest.fixture
def grouped_db() -> Database:
    items = Relation(
        TableSchema(
            "Items",
            (
                Column("id", ColumnType.INT),
                Column("grp", ColumnType.TEXT),
                Column("qty", ColumnType.INT),
                Column("price", ColumnType.FLOAT),
            ),
            primary_key=("id",),
        )
    )
    items.insert_many(
        [
            (1, "a", 10, 1.5),
            (2, "a", 20, 2.5),
            (3, "b", 10, 1.5),
            (4, None, 30, 4.5),
            (5, "c", 10, 1.5),  # the only "c" row: patches can destroy "c"
        ]
    )
    return Database("grouped-edges", [items])


class TestGroupPresence:
    def test_group_created_and_destroyed_by_patch(self, grouped_db):
        support = SupportSet(
            grouped_db,
            [
                # Destroys group "c" (its only row moves to "a").
                SupportInstance(0, (CellDelta("Items", 4, "grp", "a"),)),
                # Creates a brand-new group "z".
                SupportInstance(1, (CellDelta("Items", 0, "grp", "z"),)),
                # Creates "z" while destroying "b".
                SupportInstance(2, (CellDelta("Items", 2, "grp", "z"),)),
            ],
        )
        queries = [
            sql_query(text, grouped_db)
            for text in [
                "select grp, count(*) from Items group by grp",
                "select grp, sum(qty) from Items group by grp",
                "select grp, min(price) from Items group by grp",
            ]
        ]
        edges = assert_parity(support, queries, expect_vectorized=queries)
        # Every presence change is visible in the keyed output rows.
        assert all(edge == frozenset({0, 1, 2}) for edge in edges)

    def test_filter_driven_group_presence(self, grouped_db):
        # A patch can create/destroy a group through the WHERE clause alone.
        support = SupportSet(
            grouped_db,
            [
                SupportInstance(0, (CellDelta("Items", 4, "qty", 99),)),  # "c" leaves
                SupportInstance(1, (CellDelta("Items", 3, "qty", 31),)),  # NULL-key row leaves
            ],
        )
        queries = [
            sql_query(
                "select grp, count(*) from Items where qty <= 30 group by grp",
                grouped_db,
            )
        ]
        edges = assert_parity(support, queries, expect_vectorized=queries)
        assert edges[0] == frozenset({0, 1})


class TestNullGroupKeys:
    def test_null_key_group_is_a_real_group(self, grouped_db):
        support = SupportSet(
            grouped_db,
            [
                # Moves a row into the NULL-key group.
                SupportInstance(0, (CellDelta("Items", 0, "grp", None),)),
                # Moves the NULL-key row out of it.
                SupportInstance(1, (CellDelta("Items", 3, "grp", "a"),)),
                # Patches a value *inside* the NULL-key group.
                SupportInstance(2, (CellDelta("Items", 3, "qty", 31),)),
                # Irrelevant column: no conflict with the grouped queries.
                SupportInstance(3, (CellDelta("Items", 3, "price", 9.5),)),
            ],
        )
        queries = [
            sql_query(text, grouped_db)
            for text in [
                "select grp, count(*) from Items group by grp",
                "select grp, sum(qty) from Items group by grp",
            ]
        ]
        edges = assert_parity(support, queries, expect_vectorized=queries)
        assert edges[0] == frozenset({0, 1})
        assert edges[1] == frozenset({0, 1, 2})


class TestMinMaxTies:
    def test_removing_one_of_tied_minima_keeps_min(self, grouped_db):
        # qty 10 appears in rows 0, 2, 4. Raising one of them leaves MIN(qty)
        # at 10 globally; per-group it depends on the group's own ties.
        support = SupportSet(
            grouped_db,
            [
                SupportInstance(0, (CellDelta("Items", 0, "qty", 15),)),  # "a" min 10->15? no: row1=20 -> min 15
                SupportInstance(1, (CellDelta("Items", 2, "qty", 40),)),  # "b" min 10->40
                SupportInstance(2, (CellDelta("Items", 0, "qty", 11),)),  # scalar min stays 10
            ],
        )
        scalar = sql_query("select min(qty) from Items", grouped_db)
        grouped = sql_query("select grp, min(qty) from Items group by grp", grouped_db)
        edges = assert_parity(support, [scalar, grouped], expect_vectorized=[scalar, grouped])
        # Tied minima elsewhere keep the scalar MIN at 10 for every patch.
        assert edges[0] == frozenset()
        assert edges[1] == frozenset({0, 1, 2})

    def test_tied_extremes_with_duplicate_values_in_one_group(self):
        table = Relation(
            TableSchema("T", (Column("g", ColumnType.TEXT), Column("v", ColumnType.INT)))
        )
        table.insert_many([("a", 5), ("a", 5), ("a", 9), ("b", 5)])
        db = Database("ties", [table])
        support = SupportSet(
            db,
            [
                # Removes one of two tied minima: MIN(v) of "a" stays 5.
                SupportInstance(0, (CellDelta("T", 0, "v", 7),)),
                # Removes both tied minima: MIN(v) of "a" becomes 7.
                SupportInstance(
                    1, (CellDelta("T", 0, "v", 7), CellDelta("T", 1, "v", 8))
                ),
                # Swaps the tied values between rows: nothing changes.
                SupportInstance(
                    2, (CellDelta("T", 0, "v", 9), CellDelta("T", 2, "v", 5))
                ),
                # MAX tie: raising the non-max row to the max value.
                SupportInstance(3, (CellDelta("T", 1, "v", 9),)),
            ],
        )
        queries = [
            sql_query("select g, min(v) from T group by g", db),
            sql_query("select g, max(v) from T group by g", db),
            sql_query("select min(v), max(v) from T", db),
        ]
        edges = assert_parity(support, queries, expect_vectorized=queries)
        assert edges[0] == frozenset({1})  # only the double removal moves MIN
        assert edges[1] == frozenset()  # MAX(v) of "a" stays 9 throughout

    def test_text_minmax_and_all_null_group(self):
        table = Relation(
            TableSchema("T", (Column("g", ColumnType.TEXT), Column("s", ColumnType.TEXT)))
        )
        table.insert_many([("a", "x"), ("a", None), ("b", None)])
        db = Database("text-ties", [table])
        support = SupportSet(
            db,
            [
                # Group "b" is all-NULL: MIN(s) is NULL until a patch fills it.
                SupportInstance(0, (CellDelta("T", 2, "s", "q"),)),
                # Dropping the only non-NULL "a" value: MIN(s) becomes NULL.
                SupportInstance(1, (CellDelta("T", 0, "s", None),)),
            ],
        )
        queries = [sql_query("select g, min(s), max(s) from T group by g", db)]
        edges = assert_parity(support, queries, expect_vectorized=queries)
        assert edges[0] == frozenset({0, 1})


class TestDegenerateSingleGroup:
    def test_group_by_constant_valued_column(self):
        # Every row shares one group: GROUP BY is degenerate but the output
        # still differs from the scalar aggregate (no row when all rows
        # leave the filter, vs one row with zero count).
        table = Relation(
            TableSchema("T", (Column("g", ColumnType.TEXT), Column("v", ColumnType.INT)))
        )
        table.insert_many([("a", 1), ("a", 2)])
        db = Database("single-group", [table])
        support = SupportSet(
            db,
            [
                SupportInstance(0, (CellDelta("T", 0, "v", 9),)),
                # Both rows leave the filter: the grouped output loses its
                # only row while the scalar aggregate keeps one (count 0).
                SupportInstance(
                    1, (CellDelta("T", 0, "v", 50), CellDelta("T", 1, "v", 60))
                ),
            ],
        )
        grouped = sql_query(
            "select g, count(*) from T where v < 10 group by g", db
        )
        scalar = sql_query("select count(*) from T where v < 10", db)
        edges = assert_parity(support, [grouped, scalar], expect_vectorized=[grouped, scalar])
        assert edges[0] == frozenset({1})
        assert edges[1] == frozenset({1})

    def test_unprojected_group_key_swap_is_not_a_conflict(self):
        # Regression for the bag-comparison fix: moving a row between groups
        # swaps the two counts, and with the key unprojected the answer bag
        # {2, 1} is unchanged — naive sees no conflict, and neither may the
        # incremental or vectorized grouped checkers.
        table = Relation(
            TableSchema("T", (Column("id", ColumnType.INT), Column("g", ColumnType.TEXT)))
        )
        table.insert_many([(1, "a"), (2, "a"), (3, "b")])
        db = Database("swap", [table])
        support = SupportSet(
            db,
            [
                SupportInstance(0, (CellDelta("T", 0, "g", "b"),)),  # counts swap
                SupportInstance(1, (CellDelta("T", 2, "g", "a"),)),  # counts {3} — conflict
            ],
        )
        queries = [
            sql_query("select count(*) from T group by g", db),
            sql_query("select g, count(*) from T group by g", db),
        ]
        edges = assert_parity(support, queries, expect_vectorized=queries)
        assert edges[0] == frozenset({1})  # the swap cancels in the bag
        assert edges[1] == frozenset({0, 1})  # projected keys make it visible


class TestOrderedJoinPartnerReattachment:
    """A join-key patch can re-attach value-identical contributions to
    *different left partners*, moving their output positions — which reorders
    ORDER BY tie groups even though every value-level comparison (projected
    bags, per-group outputs, contribution key sequences) is unchanged. Both
    checkers must treat such instances as undecidable and re-execute."""

    def test_ordered_grouped_join_tie_flip(self):
        fact = Relation(
            TableSchema("T", (Column("k", ColumnType.INT), Column("g", ColumnType.TEXT)))
        )
        fact.insert_many([(1, "x"), (2, "y"), (3, "x")])
        dim = Relation(TableSchema("U", (Column("k", ColumnType.INT),)))
        dim.insert_many([(2,), (1,)])
        db = Database("tie-flip", [fact, dim])
        # Re-keying U[1] from 1 to 3 keeps group "x" at count 1 but attaches
        # it to a different fact partner, flipping which group is emitted
        # first: [('x',1),('y',1)] -> [('y',1),('x',1)] under ORDER BY c.
        support = SupportSet(db, [SupportInstance(0, (CellDelta("U", 1, "k", 3),))])
        queries = [
            sql_query(
                "select g, count(*) as c from T, U where T.k = U.k "
                "group by g order by c",
                db,
            )
        ]
        edges = assert_parity(support, queries)
        assert edges[0] == frozenset({0})

    def test_ordered_flat_join_partner_swap(self):
        fact = Relation(
            TableSchema("T", (Column("k", ColumnType.INT), Column("x", ColumnType.INT)))
        )
        fact.insert_many([(1, 5), (2, 7), (2, 5)])
        dim = Relation(
            TableSchema("U", (Column("k", ColumnType.INT), Column("w", ColumnType.INT)))
        )
        dim.insert_many([(1, 9)])
        db = Database("partner-swap", [fact, dim])
        # Re-keying U[0] from 1 to 2 preserves the projected bag {(5, 9)}
        # vs {(7,9),(5,9)}? No: old partners {T0} -> {(5,9)}, new {T1,T2}
        # -> {(7,9),(5,9)} — bag changes, plain conflict. Instance 1
        # instead re-keys to a partner with the *same* x value: bag
        # unchanged, but the contribution's position moves past T1.
        support = SupportSet(
            db,
            [
                SupportInstance(0, (CellDelta("U", 0, "k", 2),)),
                SupportInstance(1, (CellDelta("U", 0, "w", 8),)),
            ],
        )
        queries = [
            sql_query(
                "select T.x as x, U.w as w from T, U where T.k = U.k order by x",
                db,
            ),
            sql_query("select T.x as x, U.w as w from T, U where T.k = U.k", db),
        ]
        assert_parity(support, queries)


class TestGroupedJoins:
    def test_grouped_join_decided_by_vectorized(self):
        fact = Relation(
            TableSchema(
                "F",
                (Column("k", ColumnType.INT), Column("v", ColumnType.INT)),
            )
        )
        fact.insert_many([(0, 1), (0, 2), (1, 3), (2, 4), (None, 9)])
        dim = Relation(
            TableSchema(
                "D",
                (Column("k", ColumnType.INT), Column("h", ColumnType.TEXT)),
            )
        )
        dim.insert_many([(0, "a"), (1, "a"), (2, "b")])
        db = Database("join-grouped", [fact, dim])
        support = SupportSet(
            db,
            [
                SupportInstance(0, (CellDelta("F", 0, "v", 7),)),  # sum under "a"
                SupportInstance(1, (CellDelta("D", 2, "h", "a"),)),  # "b" destroyed
                SupportInstance(2, (CellDelta("F", 4, "k", 2),)),  # row joins in
                SupportInstance(3, (CellDelta("D", 0, "k", 5),)),  # dim rows drop out
                # Patches on both join sides: the batch path re-executes.
                SupportInstance(
                    4, (CellDelta("F", 1, "v", 6), CellDelta("D", 1, "h", "b"))
                ),
            ],
        )
        queries = [
            sql_query(
                "select D.h, sum(F.v) from F, D where F.k = D.k group by D.h", db
            ),
            sql_query(
                "select D.h, count(*) from F, D where F.k = D.k group by D.h", db
            ),
        ]
        engine = ConflictSetEngine(support, backend="vectorized")
        naive = ConflictSetEngine(support, backend="naive")
        for query in queries:
            assert engine.conflict_set(query) == naive.conflict_set(query), query.text
        diagnostics = engine.diagnostics["vectorized"]
        assert diagnostics["queries"] == len(queries)
        # Only the both-sides instance needed re-execution.
        assert diagnostics["reexecuted"] == len(queries)
