"""The data-market broker: quoting, selling, and the transaction ledger.

:class:`QueryMarket` is the end-to-end entry point a data seller would use:

1. wrap the dataset and a sampled support set,
2. collect the buyers' queries and valuations,
3. call :meth:`QueryMarket.optimize_pricing` with one of the paper's
   algorithms to install a revenue-maximizing arbitrage-free pricing,
4. serve :meth:`quote` / :meth:`purchase` requests.

Prices come from a monotone subadditive function applied to conflict sets,
so they are arbitrage-free for *any* incoming query — including queries that
were not in the optimization workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import PricingFunction, UniformBundlePricing, extend_pricing
from repro.db.database import Database
from repro.db.query import Query, sql_query
from repro.db.result import QueryResult
from repro.delta.apply import DeltaEffect, apply_to_support, validate_op
from repro.delta.types import DeltaOp
from repro.exceptions import PricingError
from repro.qirana.conflict import ConflictSetEngine, referenced_columns
from repro.support.generator import SupportSet


@dataclass(frozen=True)
class PriceQuote:
    """A quoted price for a query, with its conflict set for transparency."""

    query_text: str
    price: float
    bundle: frozenset[int]


@dataclass(frozen=True)
class Transaction:
    """One completed sale."""

    buyer: str
    query_text: str
    price: float


@dataclass(frozen=True)
class MarketDeltaReport:
    """What one applied delta changed, for the serving tier.

    ``updated_prices`` maps every affected cached query text to its
    post-delta price (computed through the CSR row-gather kernels over the
    live hypergraph), so quote caches can be re-seeded instead of
    cold-started. Texts absent from the report kept bit-identical bundles
    and prices.
    """

    effect: DeltaEffect
    affected_texts: tuple[str, ...]
    updated_bundles: dict[str, frozenset[int]]
    updated_prices: dict[str, float]
    compacted: bool = False


@dataclass
class QueryMarket:
    """A Qirana-style data market session.

    ``conflict_backend`` selects the conflict-set strategy by registry name
    (``naive``, ``incremental``, ``vectorized``, ``auto``); the default
    ``auto`` batches vectorizable queries and is the right choice for
    production traffic.
    """

    #: Compact the live hypergraph once this fraction of edges is tombstoned.
    COMPACT_THRESHOLD = 0.5

    support: SupportSet
    pricing: PricingFunction | None = None
    conflict_backend: str = "auto"
    transactions: list[Transaction] = field(default_factory=list)
    _engine: ConflictSetEngine = field(init=False, repr=False)
    _bundle_cache: dict[str, frozenset[int]] = field(default_factory=dict, repr=False)
    #: Referenced (table, column) pairs per cached text — the surgical
    #: invalidation footprint. Missing entries (e.g. snapshot-restored
    #: bundles) are treated as touching everything.
    _bundle_columns: dict[str, frozenset[tuple[str, str]]] = field(
        default_factory=dict, repr=False
    )
    #: The cumulative live hypergraph over every cached text, maintained by
    #: append/tombstone as deltas arrive; ``_edge_of`` maps text -> edge id.
    _live_graph: Hypergraph | None = field(default=None, repr=False)
    _edge_of: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._engine = ConflictSetEngine(self.support, backend=self.conflict_backend)

    @property
    def base(self) -> Database:
        """The seller's database."""
        return self.support.base

    @property
    def engine(self) -> ConflictSetEngine:
        return self._engine

    # ------------------------------------------------------------------
    # Pricing management
    # ------------------------------------------------------------------

    def set_pricing(self, pricing: PricingFunction) -> None:
        """Install a pricing function (must be monotone + subadditive)."""
        self.pricing = pricing

    def set_flat_fee(self, price: float) -> None:
        """Install the simplest scheme: one price for everything."""
        self.pricing = UniformBundlePricing(price)

    def build_hypergraph(self, queries: list[Query | str]) -> Hypergraph:
        """Conflict-set hypergraph of a workload, feeding the bundle cache.

        Batched on purpose: the engine's delta tensors and columnar base
        tables are built once and shared across every query, so pricing a
        whole workload costs far less than quoting its queries one by one.
        """
        planned = [self._as_query(query) for query in queries]
        hypergraph = self._engine.build_hypergraph(planned)
        for query, edge in zip(planned, hypergraph.edges):
            self._track_bundle(query, edge)
        return hypergraph

    def build_instance(
        self,
        queries: list[Query | str],
        valuations: list[float] | np.ndarray,
        name: str = "market",
    ) -> PricingInstance:
        """Transform a (query, valuation) workload into a pricing instance."""
        if len(queries) != len(valuations):
            raise PricingError(
                f"{len(queries)} queries but {len(valuations)} valuations"
            )
        hypergraph = self.build_hypergraph(queries)
        return PricingInstance(hypergraph, np.asarray(valuations, dtype=float), name)

    def optimize_pricing(
        self,
        queries: list[Query | str],
        valuations: list[float] | np.ndarray,
        algorithm: PricingAlgorithm,
    ) -> PricingResult:
        """Run a pricing algorithm on the workload and install the result."""
        instance = self.build_instance(queries, valuations)
        result = algorithm.run(instance)
        self.pricing = result.pricing
        return result

    # ------------------------------------------------------------------
    # Online deltas
    # ------------------------------------------------------------------

    @property
    def live_hypergraph(self) -> Hypergraph | None:
        """The cumulative hypergraph over every cached text (None if cold)."""
        return self._live_graph

    def apply_delta(self, op: DeltaOp) -> MarketDeltaReport:
        """Validate and apply a market delta, maintaining all derived state.

        The work is proportional to the delta's footprint, not the market:

        - the support set / shared base mutates in place (conflict backends
          observe it by reference; base-touching deltas additionally drop
          the backend's per-table columnar caches),
        - only bundles whose referenced columns intersect the delta's
          footprint are recomputed — retires shrink bundles exactly
          (``CS(Q, D)`` loses precisely its retired members), adds decide
          only the new instance's membership per affected text, base
          changes recompute the affected conflict sets in one batch,
        - changed edges are tombstoned + appended in the live CSR
          hypergraph (compacted past :attr:`COMPACT_THRESHOLD`), and every
          affected bundle is re-priced through the CSR row-gather kernels.
        """
        validate_op(op, self.support)
        effect = apply_to_support(op, self.support)
        if effect.base_changed:
            self._engine.invalidate_tables(effect.touched_tables)
        graph = self._live_graph
        if graph is not None and graph.num_items < len(self.support):
            graph.add_items(len(self.support) - graph.num_items)
        if effect.added_ids and self.pricing is not None:
            self.pricing = extend_pricing(self.pricing, len(self.support))

        affected = [
            text
            for text in self._bundle_cache
            if effect.invalidates(self._bundle_columns.get(text))
        ]
        updated_bundles = self._updated_bundles(effect, affected)
        if graph is None and updated_bundles:
            # Cold market with restored bundles: start the live graph now so
            # the updated edges (and their re-pricing) have a home.
            graph = self._live_graph = Hypergraph(len(self.support), [], labels=[])

        compacted = False
        if graph is not None:
            stale = [
                self._edge_of[text]
                for text in updated_bundles
                if text in self._edge_of
            ]
            if stale:
                graph.tombstone_edges(stale)
            for text, bundle in updated_bundles.items():
                self._edge_of[text] = graph.append_edges(
                    [bundle], [text]
                )[0]
            if graph.tombstone_fraction > self.COMPACT_THRESHOLD:
                mapping = graph.compact()
                self._edge_of = {
                    text: mapping[edge_id]
                    for text, edge_id in self._edge_of.items()
                }
                compacted = True
        self._bundle_cache.update(updated_bundles)

        updated_prices: dict[str, float] = {}
        if self.pricing is not None and affected and graph is not None:
            priced = [text for text in affected if text in self._edge_of]
            if priced:
                edge_ids = np.asarray(
                    [self._edge_of[text] for text in priced], dtype=np.int64
                )
                indptr, items = graph.edge_submatrix(edge_ids)
                prices = self.pricing.price_edges_arrays(indptr, items)
                updated_prices = {
                    text: float(price) for text, price in zip(priced, prices)
                }
        return MarketDeltaReport(
            effect=effect,
            affected_texts=tuple(affected),
            updated_bundles=updated_bundles,
            updated_prices=updated_prices,
            compacted=compacted,
        )

    def _updated_bundles(
        self, effect: DeltaEffect, affected: list[str]
    ) -> dict[str, frozenset[int]]:
        """Post-delta bundles for every affected text whose edge changed."""
        updated: dict[str, frozenset[int]] = {}
        if effect.retired_ids:
            retired = frozenset(effect.retired_ids)
            # Exact shrink: retiring instances removes precisely them from
            # every conflict set (no other membership can change). Scan all
            # cached bundles, not just column-affected ones: conservative
            # entries without metadata must shed retired members too.
            for text, bundle in self._bundle_cache.items():
                if bundle & retired:
                    updated[text] = bundle - retired
            return updated
        if effect.added_ids:
            # Existing members keep their membership (their deltas and
            # Q(D) are unchanged); only the new instances can join, so
            # decide just them per affected text.
            added = sorted(effect.added_ids)
            for text in affected:
                planned = self._as_query(text)
                self._bundle_columns[text] = frozenset(
                    referenced_columns(planned, self.base)
                )
                joining = self._engine.backend.compute(
                    planned, candidates=added
                ).conflict_set
                if joining:
                    updated[text] = self._bundle_cache[text] | joining
            return updated
        if effect.base_changed and affected:
            # Q(D) itself changed for these texts: recompute their conflict
            # sets in one batch (warming tensors/batches once).
            planned = [self._as_query(text) for text in affected]
            self._engine.backend.prepare(planned)
            for query in planned:
                self._bundle_columns[query.text] = frozenset(
                    referenced_columns(query, self.base)
                )
                bundle = self._engine.conflict_set(query)
                if bundle != self._bundle_cache[query.text]:
                    updated[query.text] = bundle
        return updated

    # ------------------------------------------------------------------
    # Buyer-facing API
    # ------------------------------------------------------------------

    def quote(self, query: Query | str) -> PriceQuote:
        """Price a query without selling it."""
        if self.pricing is None:
            raise PricingError("no pricing installed; call optimize_pricing first")
        planned = self._as_query(query)
        bundle = self._bundle_of(planned)
        return PriceQuote(planned.text, self.pricing.price(bundle), bundle)

    def quote_batch(self, queries: list[Query | str]) -> list[PriceQuote]:
        """Price many queries at once.

        Uncached conflict sets are computed together through
        :meth:`build_hypergraph`, which warms the engine's per-workload
        caches up front (one delta tensor per referenced table — hence one
        per *join side* — columnar base tables, compiled batch plans) so
        their construction is amortized across the batch: the fast path for
        bulk quoting traffic.
        """
        if self.pricing is None:
            raise PricingError("no pricing installed; call optimize_pricing first")
        planned = [self._as_query(query) for query in queries]
        missing = {
            query.text: query
            for query in planned
            if query.text not in self._bundle_cache
        }
        if missing:
            self.build_hypergraph(list(missing.values()))
        return [
            PriceQuote(
                query.text,
                self.pricing.price(self._bundle_cache[query.text]),
                self._bundle_cache[query.text],
            )
            for query in planned
        ]

    def purchase(
        self,
        query: Query | str,
        buyer: str,
        valuation: float | None = None,
    ) -> tuple[QueryResult | None, PriceQuote]:
        """Attempt to sell a query answer.

        A buyer with a stated ``valuation`` walks away when the price exceeds
        it (returns ``(None, quote)``); with no valuation the buyer always
        pays. Sales are appended to the ledger.
        """
        planned = self._as_query(query)
        quote = self.quote(planned)
        if valuation is not None and quote.price > valuation:
            return None, quote
        answer = planned.run(self.base)
        self.transactions.append(Transaction(buyer, quote.query_text, quote.price))
        return answer, quote

    @property
    def revenue(self) -> float:
        """Total revenue collected so far."""
        return sum(transaction.price for transaction in self.transactions)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _as_query(self, query: Query | str) -> Query:
        if isinstance(query, Query):
            return query
        return sql_query(query, self.base)

    def _bundle_of(self, query: Query) -> frozenset[int]:
        bundle = self._bundle_cache.get(query.text)
        if bundle is None:
            bundle = self._engine.conflict_set(query)
            self._track_bundle(query, bundle)
        return bundle

    def _track_bundle(self, query: Query, edge: frozenset[int]) -> None:
        """Record a computed bundle in the cache and the live hypergraph."""
        text = query.text
        self._bundle_cache[text] = edge
        self._bundle_columns[text] = frozenset(
            referenced_columns(query, self.base)
        )
        graph = self._live_graph
        if graph is None:
            graph = self._live_graph = Hypergraph(len(self.support), [], labels=[])
        if graph.num_items < len(self.support):
            graph.add_items(len(self.support) - graph.num_items)
        edge_id = self._edge_of.get(text)
        if edge_id is None:
            self._edge_of[text] = graph.append_edges([edge], [text])[0]
        elif graph.edges[edge_id] != edge:
            graph.tombstone_edges([edge_id])
            self._edge_of[text] = graph.append_edges([edge], [text])[0]


def market_hypergraph(
    support: SupportSet, queries: list[Query], backend: str = "auto"
) -> Hypergraph:
    """Convenience: the hypergraph of a workload over a support set."""
    return ConflictSetEngine(support, backend=backend).build_hypergraph(queries)
