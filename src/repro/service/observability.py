"""Prometheus-style observability for the serving tier.

A deployed pricing tier is operated from dashboards, not from Python
``stats()`` calls; this module turns the counters the service already
tracks — canonical quote-cache hits/misses/evictions/stale-drops, plan-memo
counters, micro-batch accepted/shed, the conflict engine's template cache,
transactions — plus the HTTP front-end's per-shard request-latency
histograms into the Prometheus text exposition format (version 0.0.4), the
lingua franca of pull-based monitoring.

Three pieces:

- :class:`LatencyHistogram` — a thread-safe fixed-bucket histogram
  (cumulative ``le`` counts, sum, count). Buckets are **explicit** and
  chosen for a sub-millisecond cache-hit path with a long miss tail; a
  scrape renders the classic ``_bucket``/``_sum``/``_count`` triple.
- :func:`render_metrics` — one text exposition for any serving tier:
  duck-types :class:`~repro.service.server.PricingService` (flat counters,
  ``shard="0"``) vs :class:`~repro.service.sharding.ShardedPricingService`
  (per-shard labels), so the metric *names* are identical whichever tier is
  behind the wire. Names are stable across scrapes — dashboards key on
  them — and asserted so in the test suite.
- :func:`parse_exposition` — a small parser for the same format, used by
  tests, the CI smoke, and the HTTP benchmark to prove a scrape
  round-trips.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

__all__ = [
    "DEFAULT_BUCKETS",
    "LatencyHistogram",
    "MetricSample",
    "parse_exposition",
    "render_metrics",
]

#: Explicit histogram buckets, in seconds. The hit path of a warm tier is
#: tens of microseconds; a cold conflict-set miss is tens of milliseconds.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class LatencyHistogram:
    """Thread-safe fixed-bucket latency histogram (seconds).

    ``buckets`` are upper bounds in ascending order; an implicit ``+Inf``
    bucket always exists. :meth:`snapshot` returns *cumulative* bucket
    counts (each ``le`` bound counts every observation at or below it),
    which is exactly what the Prometheus exposition wants.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be ascending and non-empty")
        self.buckets = tuple(float(bound) for bound in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, seconds: float) -> None:
        with self._lock:
            position = len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if seconds <= bound:
                    position = index
                    break
            self._counts[position] += 1
            self._sum += seconds
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count)."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        cumulative = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return cumulative, total_sum, total_count

    def __len__(self) -> int:
        with self._lock:
            return self._count


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Exposition:
    """Accumulates HELP/TYPE headers and samples in a stable order."""

    def __init__(self):
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def declare(self, name: str, kind: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared.add(name)
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: dict[str, str], value: float) -> None:
        self._lines.append(f"{name}{_format_labels(labels)} {_format_value(value)}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def _cache_samples(
    out: _Exposition, prefix: str, help_noun: str, stats_dict: dict, labels: dict
) -> None:
    """Counters + gauges of one ``CacheStats.as_dict()`` payload."""
    for metric, kind, help_verb in (
        ("hits", "counter", "lookups served from"),
        ("misses", "counter", "lookups that missed"),
        ("evictions", "counter", "capacity evictions from"),
        ("stale_drops", "counter", "stale entries dropped from"),
        ("delta_drops", "counter", "delta-invalidated entries dropped from"),
    ):
        name = f"{prefix}_{metric}_total"
        out.declare(name, kind, f"{help_verb} the {help_noun}.")
        out.sample(name, labels, float(stats_dict.get(metric, 0)))
    name = f"{prefix}_size"
    out.declare(name, "gauge", f"Current entries in the {help_noun}.")
    out.sample(name, labels, float(stats_dict.get("size", 0)))


def _template_cache_stats(service) -> dict | None:
    """The conflict engine's template-cache counters, if the tier has any.

    ``PricingService`` exposes them through ``stats().templates``; the
    sharded tier runs one engine per shard, so its counters are aggregated
    across shards here (cache *capacity* is per shard, counts add).
    """
    workers = getattr(service, "_workers", None)
    if workers is not None:
        totals: dict[str, float] = {}
        seen = False
        for worker in workers:
            stats = worker.market.engine.template_cache_stats()
            if stats is None:
                continue
            seen = True
            for key, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    totals[key] = totals.get(key, 0.0) + value
        return totals if seen else None
    market = getattr(service, "market", None)
    if market is None:
        return None
    return market.engine.template_cache_stats()


def render_metrics(
    service,
    *,
    latency: dict[object, LatencyHistogram] | None = None,
    http_requests: dict[tuple[str, int], int] | None = None,
    ready: bool | None = None,
) -> str:
    """One Prometheus text exposition for a serving tier.

    ``service`` is a :class:`~repro.service.server.PricingService` or a
    :class:`~repro.service.sharding.ShardedPricingService`; ``latency``
    maps shard labels to the HTTP front-end's request
    :class:`LatencyHistogram` instances, ``http_requests`` carries the
    front-end's ``(endpoint, status) -> count`` counters, and ``ready`` is
    the readiness gauge (flips to 0 during drain). All three are optional
    so the exposition is also usable for an in-process tier.
    """
    stats = service.stats()
    out = _Exposition()

    shards = getattr(stats, "shards", None)
    if shards is None:
        payload = stats.as_dict()
        shard_rows = [("0", payload["quote_cache"], payload)]
        plan_memo = payload["plan_memo"]
        transactions = payload["transactions"]
    else:
        payload = stats.as_dict()
        shard_rows = [
            (
                str(shard["shard_id"]),
                shard["quote_cache"],
                {
                    "accepted": shard["requests_accepted"],
                    "shed": shard["requests_shed"],
                    "batches": shard["batcher"]["batches"],
                    "batched_requests": shard["batcher"]["batched_requests"],
                },
            )
            for shard in payload["shards"]
        ]
        plan_memo = payload["plan_memo"]
        transactions = payload["transactions"]

    for shard_label, quote_cache, counters in shard_rows:
        labels = {"shard": shard_label}
        _cache_samples(
            out, "repro_quote_cache", "canonical quote cache", quote_cache, labels
        )
        for metric, help_text in (
            ("accepted", "Requests admitted by the micro-batch queue."),
            ("shed", "Requests shed by admission control."),
            ("batches", "Micro-batches flushed."),
            ("batched_requests", "Requests served through micro-batches."),
        ):
            name = f"repro_requests_{metric}_total"
            if metric in ("batches", "batched_requests"):
                name = f"repro_batch_{metric.replace('batched_', '')}_total"
            out.declare(name, "counter", help_text)
            out.sample(name, labels, float(counters.get(metric, 0)))

    _cache_samples(out, "repro_plan_memo", "raw-text plan memo", plan_memo, {})

    templates = _template_cache_stats(service)
    if templates is not None:
        _cache_samples(
            out,
            "repro_template_cache",
            "compiled-template cache",
            templates,
            {},
        )

    out.declare(
        "repro_transactions_total", "counter", "Completed sales on the ledger."
    )
    out.sample("repro_transactions_total", {}, float(transactions))

    deltas = payload.get("deltas")
    if deltas is not None:
        for metric in ("accepted", "applied", "cancelled", "rejected"):
            name = f"repro_deltas_{metric}_total"
            out.declare(
                name, "counter", f"Market deltas {metric} by the staged log."
            )
            out.sample(name, {}, float(deltas.get(metric, 0)))
        out.declare(
            "repro_data_version",
            "gauge",
            "High-water data version of applied market deltas.",
        )
        out.sample(
            "repro_data_version", {}, float(payload.get("data_version", 0))
        )

    if ready is not None:
        out.declare(
            "repro_service_ready",
            "gauge",
            "1 while the tier accepts new requests, 0 while draining.",
        )
        out.sample("repro_service_ready", {}, 1.0 if ready else 0.0)

    if http_requests is not None:
        name = "repro_http_requests_total"
        out.declare(name, "counter", "HTTP requests served, by endpoint and status.")
        for (endpoint, status), count in sorted(http_requests.items()):
            out.sample(
                name, {"endpoint": endpoint, "status": str(status)}, float(count)
            )

    if latency is not None:
        name = "repro_request_duration_seconds"
        out.declare(
            name,
            "histogram",
            "End-to-end HTTP pricing-request latency, by home shard.",
        )
        for shard_label in sorted(latency, key=str):
            histogram = latency[shard_label]
            labels = {"shard": str(shard_label)}
            cumulative, total_sum, total_count = histogram.snapshot()
            bounds = list(histogram.buckets) + [math.inf]
            for bound, count in zip(bounds, cumulative):
                out.sample(
                    f"{name}_bucket",
                    {**labels, "le": _format_value(bound)},
                    float(count),
                )
            out.sample(f"{name}_sum", labels, total_sum)
            out.sample(f"{name}_count", labels, float(total_count))

    return out.render()


# ---------------------------------------------------------------------------
# Parsing (tests / smoke / bench)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricSample:
    """One parsed exposition sample."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


def _parse_labels(body: str) -> tuple[tuple[str, str], ...]:
    labels = []
    position = 0
    while position < len(body):
        equals = body.index("=", position)
        name = body[position:equals].strip().lstrip(",").strip()
        if body[equals + 1] != '"':
            raise ValueError(f"unquoted label value in {body!r}")
        cursor = equals + 2
        value_chars = []
        while body[cursor] != '"':
            if body[cursor] == "\\":
                cursor += 1
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(body[cursor], body[cursor])
                )
            else:
                value_chars.append(body[cursor])
            cursor += 1
        labels.append((name, "".join(value_chars)))
        position = cursor + 1
    return tuple(labels)


def parse_exposition(text: str) -> dict[str, list[MetricSample]]:
    """Parse a Prometheus text exposition into samples grouped by name.

    Raises ``ValueError`` on malformed lines, so a test that calls this is
    simultaneously a format check. ``# HELP`` / ``# TYPE`` comments are
    validated for shape and skipped.
    """
    samples: dict[str, list[MetricSample]] = {}
    types: dict[str, str] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"malformed comment line: {line!r}")
            if parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        if "{" in line:
            name = line[: line.index("{")]
            body = line[line.index("{") + 1 : line.rindex("}")]
            labels = _parse_labels(body)
            value_text = line[line.rindex("}") + 1 :].strip()
        else:
            name, value_text = line.rsplit(None, 1)
            labels = ()
        value = math.inf if value_text == "+Inf" else float(value_text)
        samples.setdefault(name, []).append(MetricSample(name, labels, value))
    for name in samples:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
        if base not in types:
            raise ValueError(f"sample {name!r} has no # TYPE declaration")
    return samples
