"""Shared-memory layout for NumPy arrays crossing a process boundary.

The process-per-shard tier (:mod:`repro.service.multicore`) must not pickle
its big tensors across the coordinator/worker pipe: the delta tensors of a
large support set are tens of megabytes, and every worker needs the same
bytes. This module gives them one copy in POSIX shared memory:

- :func:`share_array` copies a NumPy array into a named
  ``multiprocessing.shared_memory`` segment and returns an
  :class:`ArraySegment` header (segment name + dtype + shape) plus a view
  backed by the segment. Headers are tiny and picklable — *they* cross the
  pipe, the bytes never do.
- :func:`attach_array` maps a header back to an array in another process
  (attach-on-fork). Attaching a segment the owner already unlinked raises a
  typed :class:`~repro.exceptions.SharedMemoryError` instead of the
  stdlib's bare ``FileNotFoundError``.
- :class:`SegmentRegistry` refcounts every handle a process holds. The
  *owning* registry (the one that created the segment) unlinks it when its
  last reference is released; attaching registries merely unmap. Releasing
  is idempotent and finalizer-backed, so a crashed worker or an abandoned
  registry cannot leak ``/dev/shm`` entries past garbage collection.

Only fixed-width dtypes can live in shared memory. Object-dtype arrays (the
delta tensors' patch *values*) are refused with a typed error — the tier
leaves them in process memory, where fork's copy-on-write already shares
them.
"""

from __future__ import annotations

import secrets
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import SharedMemoryError

__all__ = [
    "ArraySegment",
    "SegmentRegistry",
    "TensorLayout",
    "attach_tensor",
    "share_tensor",
]


@dataclass(frozen=True)
class ArraySegment:
    """The picklable header of one shared NumPy array.

    ``name`` is the POSIX shared-memory segment name; ``dtype``/``shape``
    reconstruct the array view on attach. The header is what scatter ships
    across the pipe — never the bytes.
    """

    name: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class TensorLayout:
    """Shared-memory headers for one table's :class:`TableDeltaTensor`.

    The int64 pair arrays and per-column patch *positions* are shareable;
    the object-dtype patch *values* are not (see module docstring) and stay
    in process memory, inherited copy-on-write by forked workers.
    """

    table: str
    num_instances: int
    pair_instance: ArraySegment
    pair_row: ArraySegment
    pair_counts: ArraySegment
    touched_instances: ArraySegment
    patch_positions: dict[str, ArraySegment]

    def segments(self) -> list[ArraySegment]:
        return [
            self.pair_instance,
            self.pair_row,
            self.pair_counts,
            self.touched_instances,
            *self.patch_positions.values(),
        ]


class _Handle:
    """One process's mapping of one segment: the shm object plus a refcount."""

    __slots__ = ("shm", "refs", "owner")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool):
        self.shm = shm
        self.refs = 1
        self.owner = owner


class SegmentRegistry:
    """Refcounted bookkeeping of every segment this process maps.

    One registry per tier per process: the coordinator's registry owns the
    segments it created (and unlinks them on the last release); each
    worker's registry only attaches and unmaps. ``close()`` releases
    everything and is also registered as a ``weakref`` finalizer, so an
    abandoned registry cleans up on collection instead of leaking
    ``/dev/shm`` entries.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._handles: dict[str, _Handle] = {}
        self._finalizer = weakref.finalize(
            self, SegmentRegistry._close_handles, self._handles, self._lock
        )

    # ------------------------------------------------------------------
    # Creation (owner side)
    # ------------------------------------------------------------------

    def share_array(
        self, array: np.ndarray, *, label: str = "array"
    ) -> tuple[ArraySegment, np.ndarray]:
        """Copy ``array`` into a fresh owned segment; return (header, view).

        The returned view is backed by the segment, so the owning process
        and every forked child read the same bytes. Object-dtype arrays
        cannot be laid out in shared memory and raise a typed error.
        """
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise SharedMemoryError(
                f"cannot share object-dtype array {label!r}: only fixed-width "
                f"dtypes have a defined shared-memory layout"
            )
        name = f"repro-{label}-{secrets.token_hex(8)}"
        try:
            # Zero-length arrays still need a 1-byte segment: shm_open
            # refuses size 0, and the view below slices back to 0 items.
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, array.nbytes)
            )
        except OSError as exc:
            raise SharedMemoryError(
                f"could not create shared segment {name!r}: {exc}"
            ) from exc
        segment = ArraySegment(shm.name, str(array.dtype), tuple(array.shape))
        view: np.ndarray = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        with self._lock:
            self._handles[shm.name] = _Handle(shm, owner=True)
        return segment, view

    # ------------------------------------------------------------------
    # Attachment (worker side)
    # ------------------------------------------------------------------

    def attach_array(self, segment: ArraySegment) -> np.ndarray:
        """Map a header back to its array (refcounted per process)."""
        with self._lock:
            handle = self._handles.get(segment.name)
            if handle is not None:
                handle.refs += 1
                shm = handle.shm
            else:
                try:
                    shm = shared_memory.SharedMemory(name=segment.name)
                except FileNotFoundError as exc:
                    raise SharedMemoryError(
                        f"shared segment {segment.name!r} does not exist — "
                        f"it was never created here or its owner already "
                        f"unlinked it"
                    ) from exc
                # SharedMemory registers attaches with the resource tracker
                # too (3.11+), but the tier's attachers are forked children
                # sharing the owner's tracker process: the re-registration
                # is an idempotent set-add there, and the single unregister
                # happens when the owning registry unlinks. Unregistering
                # here would strip the owner's registration instead.
                self._handles[segment.name] = _Handle(shm, owner=False)
        if shm.size < segment.nbytes:
            self.release(segment.name)
            raise SharedMemoryError(
                f"shared segment {segment.name!r} holds {shm.size} bytes but "
                f"the header describes {segment.nbytes}"
            )
        return np.ndarray(segment.shape, dtype=np.dtype(segment.dtype), buffer=shm.buf)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def release(self, name: str) -> None:
        """Drop one reference; the last one unmaps (and unlinks if owned)."""
        with self._lock:
            handle = self._handles.get(name)
            if handle is None:
                return
            handle.refs -= 1
            if handle.refs > 0:
                return
            del self._handles[name]
        _close_handle(handle)

    def close(self) -> None:
        """Release every handle unconditionally (idempotent)."""
        self._finalizer()

    def active_segments(self) -> list[str]:
        """Names this process still has mapped — the leak-test probe."""
        with self._lock:
            return sorted(self._handles)

    @staticmethod
    def _close_handles(handles: dict[str, _Handle], lock: threading.Lock) -> None:
        with lock:
            doomed = list(handles.values())
            handles.clear()
        for handle in doomed:
            _close_handle(handle)

    def __enter__(self) -> "SegmentRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _close_handle(handle: _Handle) -> None:
    try:
        handle.shm.close()
    except OSError:
        pass
    if handle.owner:
        try:
            handle.shm.unlink()
        except FileNotFoundError:
            pass


# ---------------------------------------------------------------------------
# Delta-tensor layout
# ---------------------------------------------------------------------------


def share_tensor(tensor, registry: SegmentRegistry):
    """Lay a :class:`TableDeltaTensor` out in shared memory.

    Returns ``(layout, shared_tensor)``: the picklable :class:`TensorLayout`
    plus a tensor whose int64 arrays are views into the registry's owned
    segments (patch values stay as the original in-process object arrays).
    Installing ``shared_tensor`` into the partition's ``_delta_tensors``
    *before* forking means parent and children address one copy of the pair
    arrays.
    """
    from repro.support.tensor import ColumnPatches, TableDeltaTensor

    label = f"tensor-{tensor.table}"
    pair_instance, pair_instance_view = registry.share_array(
        tensor.pair_instance, label=f"{label}-pi"
    )
    pair_row, pair_row_view = registry.share_array(
        tensor.pair_row, label=f"{label}-pr"
    )
    pair_counts, pair_counts_view = registry.share_array(
        tensor.pair_counts, label=f"{label}-pc"
    )
    touched, touched_view = registry.share_array(
        tensor.touched_instances, label=f"{label}-ti"
    )
    patch_positions: dict[str, ArraySegment] = {}
    column_patches: dict[str, ColumnPatches] = {}
    for column, patches in tensor.column_patches.items():
        segment, view = registry.share_array(
            patches.positions, label=f"{label}-{column}"
        )
        patch_positions[column] = segment
        column_patches[column] = ColumnPatches(view, patches.values)
    layout = TensorLayout(
        table=tensor.table,
        num_instances=tensor.num_instances,
        pair_instance=pair_instance,
        pair_row=pair_row,
        pair_counts=pair_counts,
        touched_instances=touched,
        patch_positions=patch_positions,
    )
    shared = TableDeltaTensor(
        table=tensor.table,
        num_instances=tensor.num_instances,
        pair_instance=pair_instance_view,
        pair_row=pair_row_view,
        pair_counts=pair_counts_view,
        column_patches=column_patches,
        touched_instances=touched_view,
    )
    return layout, shared


def attach_tensor(
    layout: TensorLayout,
    values_by_column: dict[str, np.ndarray],
    registry: SegmentRegistry,
):
    """Rebuild a :class:`TableDeltaTensor` from shared segments.

    ``values_by_column`` supplies the object-dtype patch values the layout
    cannot carry — a forked worker passes the arrays it inherited
    copy-on-write. Raises :class:`SharedMemoryError` if any segment was
    already unlinked.
    """
    from repro.support.tensor import ColumnPatches, TableDeltaTensor

    missing = set(layout.patch_positions) - set(values_by_column)
    if missing:
        raise SharedMemoryError(
            f"tensor layout for table {layout.table!r} patches columns "
            f"{sorted(missing)} but no in-process values were supplied"
        )
    return TableDeltaTensor(
        table=layout.table,
        num_instances=layout.num_instances,
        pair_instance=registry.attach_array(layout.pair_instance),
        pair_row=registry.attach_array(layout.pair_row),
        pair_counts=registry.attach_array(layout.pair_counts),
        column_patches={
            column: ColumnPatches(
                registry.attach_array(segment), values_by_column[column]
            )
            for column, segment in layout.patch_positions.items()
        },
        touched_instances=registry.attach_array(layout.touched_instances),
    )
