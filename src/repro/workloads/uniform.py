"""The uniform query workload (Section 6.2).

"The uniform query workload consists of only selection and projection SQL
queries with the same selectivity (which means that the output of each query
is about the same)." Its hypergraph is the opposite of the skewed one:
hyperedges are large (≈40% of the support), heavily overlapping, and their
sizes concentrate around the mean (Figure 4b).

We realize it as sliding-window selections over the ``City`` table of the
world database: each query selects every column of the rows whose ``ID``
falls in a window covering a fixed fraction of the table. Since support
deltas are uniform over cells, every window of equal width conflicts with an
(approximately) equal number of instances, giving the concentrated size
distribution of Figure 4b.
"""

from __future__ import annotations

import numpy as np

from repro.db.query import Query, sql_query
from repro.workloads.base import Workload
from repro.workloads.world import world_database

#: Fraction of the City table selected by every query.
WINDOW_FRACTION = 0.55


def uniform_queries(
    database,
    num_queries: int = 1000,
    window_fraction: float = WINDOW_FRACTION,
    seed: int = 7,
) -> list[str]:
    """Equal-selectivity window selections over ``City``."""
    rng = np.random.default_rng(seed)
    city = database.table("City")
    ids = sorted(city.column_values("ID"))
    num_rows = len(ids)
    window_rows = max(1, int(window_fraction * num_rows))

    texts: list[str] = []
    for _ in range(num_queries):
        start = int(rng.integers(0, num_rows - window_rows + 1))
        low = ids[start]
        high = ids[start + window_rows - 1]
        texts.append(f"select * from City where ID between {low} and {high}")
    return texts


def uniform_workload(
    scale: float = 1.0,
    seed: int = 42,
    num_queries: int = 1000,
) -> Workload:
    """The 1000-query uniform workload over the world database."""
    database = world_database(scale=scale, seed=seed)
    texts = uniform_queries(database, num_queries=num_queries, seed=seed + 1)
    queries: list[Query] = [sql_query(text, database) for text in texts]
    return Workload(
        name="uniform",
        database=database,
        queries=queries,
        description=(
            "world dataset, 1000 equal-selectivity window selections "
            "(uniform workload)"
        ),
        default_support_size=1500,
    )
