"""Targeted support-set design — the paper's Section 7.2 open problem.

    "Given a set of queries Q1..Qm and database D, does there exist a set of
    databases D1..Dm such that Qi(Di) != Qi(D) but Qi(Dj) = Qi(D), i != j?
    ... if we can create the support set in such a way that every hyperedge
    contains a unique item, then we can extract the full revenue."

:class:`SupportDesigner` constructs exactly such supports greedily: for each
query it searches for a single-cell perturbation that flips *that* query's
answer while leaving every other (already-satisfied) query unchanged. The
search is guided by the query's referenced columns, and verification uses the
same incremental checkers as the conflict engine, so it is fast and exact.

A perfect design does not always exist in our perturbation class (e.g. two
queries referencing exactly the same cells can never be separated, and empty
conflict sets — queries insensitive to every allowed perturbation — cannot be
flipped at all). The designer reports which queries got a dedicated item; the
ablation benchmark shows the revenue effect (Layering and LPIP extract full
revenue from the dedicated part).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.database import Database
from repro.db.query import Query
from repro.support.delta import CellDelta, SupportInstance
from repro.support.generator import NeighborSampler, SupportSet

# NOTE: repro.qirana imports this package (via repro.support.delta), so the
# conflict/incremental helpers are imported lazily inside methods to avoid a
# circular import at package-initialization time.


@dataclass
class DesignReport:
    """Outcome of a support design run."""

    support: SupportSet
    dedicated_items: dict[int, int] = field(default_factory=dict)
    unseparated_queries: list[int] = field(default_factory=list)

    @property
    def num_dedicated(self) -> int:
        return len(self.dedicated_items)


class SupportDesigner:
    """Greedy unique-item support construction.

    Parameters
    ----------
    base:
        The seller's database.
    queries:
        The workload to separate.
    rng:
        Randomness for candidate cell enumeration order.
    attempts_per_query:
        How many candidate cells to try per query before giving up.
    padding:
        Extra random neighbors appended after the dedicated items, so the
        support also covers future ad-hoc queries (0 = dedicated items only).
    """

    def __init__(
        self,
        base: Database,
        queries: list[Query],
        rng: np.random.Generator | int | None = None,
        attempts_per_query: int = 200,
        padding: int = 0,
    ):
        self.base = base
        self.queries = queries
        self.rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        self.attempts_per_query = attempts_per_query
        self.padding = padding
        self._sampler = NeighborSampler(base, rng=self.rng)
        from repro.qirana.incremental import build_incremental_checker

        # Incremental checkers double as exact conflict oracles.
        self._checkers = [
            build_incremental_checker(query, base) for query in queries
        ]
        self._baselines: list = [None] * len(queries)

    # ------------------------------------------------------------------
    # Conflict oracle
    # ------------------------------------------------------------------

    def _conflicts(self, query_index: int, instance: SupportInstance) -> bool:
        checker = self._checkers[query_index]
        if checker is not None:
            decision = checker(instance)
            if decision is not None:
                return decision
        query = self.queries[query_index]
        if self._baselines[query_index] is None:
            self._baselines[query_index] = query.run(self.base)
        patched = instance.materialize(self.base)
        return query.run(patched) != self._baselines[query_index]

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------

    def _candidate_deltas(self, query_index: int):
        """Yield candidate single-cell deltas touching the query's columns.

        Candidate (table, column, row) cells are enumerated in shuffled order
        *without replacement*, so a query sensitive to a single cell (e.g. a
        per-key lookup) is found as long as the attempt budget covers the
        candidate space.
        """
        from repro.qirana.conflict import referenced_columns

        pairs = sorted(referenced_columns(self.queries[query_index], self.base))
        cells: list[tuple[str, str, int]] = []
        for table, column in pairs:
            if not self.base.has_table(table):
                continue
            relation = self.base.table(table)
            schema = relation.schema
            if len(relation) == 0 or not schema.has_column(column):
                continue
            if column.lower() in {c.lower() for c in schema.primary_key}:
                continue
            canonical = schema.column(column).name
            cells.extend(
                (schema.name, canonical, row) for row in range(len(relation))
            )
        if not cells:
            return
        # Multiple passes: each pass visits every cell once (shuffled) with a
        # fresh random replacement value, until the attempt budget runs out.
        attempts = 0
        while attempts < self.attempts_per_query:
            order = self.rng.permutation(len(cells))
            for position in order:
                if attempts >= self.attempts_per_query:
                    return
                attempts += 1
                table, column, row_index = cells[int(position)]
                current = self.base.table(table).cell(row_index, column)
                replacement = self._sampler._perturb_value(table, column, current)
                if replacement == current:
                    continue
                yield CellDelta(table, row_index, column, replacement)

    # ------------------------------------------------------------------
    # Design
    # ------------------------------------------------------------------

    def design(self) -> DesignReport:
        """Construct the support: one dedicated item per separable query.

        Queries are processed in order; a candidate item is accepted exactly
        when it flips its own query and *no other query in the workload* —
        the strict ``Qi(Di) != Qi(D), Qi(Dj) = Qi(D) for i != j`` property of
        Section 7.2, so every separated edge owns its item uniquely.
        """
        instances: list[SupportInstance] = []
        dedicated: dict[int, int] = {}
        unseparated: list[int] = []

        for query_index in range(len(self.queries)):
            found = False
            for delta in self._candidate_deltas(query_index):
                instance = SupportInstance(len(instances), (delta,))
                if not self._conflicts(query_index, instance):
                    continue
                if any(
                    self._conflicts(other, instance)
                    for other in range(len(self.queries))
                    if other != query_index
                ):
                    continue
                instances.append(instance)
                dedicated[query_index] = instance.instance_id
                found = True
                break
            if not found:
                unseparated.append(query_index)

        for _ in range(self.padding):
            instances.append(self._sampler.sample_instance(len(instances)))

        support = SupportSet(self.base, instances)
        return DesignReport(support, dedicated, unseparated)


def designed_support(
    base: Database,
    queries: list[Query],
    rng: np.random.Generator | int | None = None,
    padding: int = 0,
) -> DesignReport:
    """Convenience wrapper around :class:`SupportDesigner`."""
    return SupportDesigner(base, queries, rng=rng, padding=padding).design()
