"""Randomized delta-churn parity fuzzing against a rebuild-from-scratch oracle.

The incremental delta path (:meth:`QueryMarket.apply_delta`) claims that
after any sequence of valid market deltas every quote is **bit-equal** to a
market rebuilt from scratch over an identically-mutated database. This
suite fuzzes that claim: random fuzz databases and support sets (the same
generators as the cross-backend parity fuzzer, so primary keys, join keys,
NULLs, and TEXT columns are all in play), random query workloads from the
full fuzz grammar, and random churn streams of all four delta kinds drawn
dtype-aware against the evolving state.

The oracle shares the live run's frozen instance objects and replays the
base mutations onto a fresh copy of the same database — regenerating
instances over the mutated base would describe a different market. Every
few cases the same stream is replayed through a 2-shard
:class:`ShardedPricingService` to cover the scatter/partition delta path.

Tier-1 runs a reduced case count; ``--runslow`` runs the full suite. The
base seed is overridable via ``REPRO_FUZZ_SEED``; failures name the seed,
case, step, and op so every divergence is reproducible from the log alone.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.pricing import extend_pricing
from repro.db.schema import ColumnType
from repro.db.testing import (
    random_fuzz_database,
    random_fuzz_query_text,
    random_support_set,
)
from repro.delta import (
    AddInstance,
    InsertBaseRows,
    PatchBase,
    RetireInstances,
    validate_op,
)
from repro.exceptions import DeltaValidationError, QueryError
from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service.sharding import ShardedPricingService
from repro.support.delta import CellDelta
from repro.support.generator import SupportSet

QUERIES_PER_CASE = 5
STEPS_PER_CASE = 6
FULL_CASES = 60
TIER1_CASES = 20

#: Override to replay a failing run: REPRO_FUZZ_SEED=<seed> pytest ...
BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260727"))


def _case_count(request) -> int:
    return FULL_CASES if request.config.getoption("--runslow") else TIER1_CASES


class _ChurnDrawer:
    """Dtype-aware random delta ops, always valid against the live support.

    A strictly increasing tick makes every drawn value fresh: patches never
    equal the current cell, added instances never duplicate a base cell,
    inserted rows never collide with existing primary keys. Float values
    stay multiples of 0.25, so sums remain exact regardless of accumulation
    order (matching the fuzz database's convention).
    """

    def __init__(self, support, rng: np.random.Generator):
        self.support = support
        self.rng = rng
        self._tick = 0

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def _bumped(self, dtype: ColumnType, current):
        tick = self._next_tick()
        if dtype is ColumnType.INT:
            return (int(current) if isinstance(current, int) else 0) + tick
        if dtype is ColumnType.FLOAT:
            base = float(current) if isinstance(current, (int, float)) else 0.0
            return base + tick + 0.25
        return f"{current}~{tick}" if isinstance(current, str) else f"c{tick}"

    def _tables(self) -> list[str]:
        return [
            name
            for name in self.support.base.table_names
            if len(self.support.base.table(name)) > 0
        ]

    def patch(self) -> PatchBase:
        for _ in range(64):
            tables = self._tables()
            table = tables[int(self.rng.integers(len(tables)))]
            relation = self.support.base.table(table)
            column = relation.schema.columns[
                int(self.rng.integers(len(relation.schema.columns)))
            ]
            row = int(self.rng.integers(len(relation)))
            op = PatchBase(
                table, row, column.name,
                self._bumped(column.dtype, relation.cell(row, column.name)),
            )
            try:
                validate_op(op, self.support)
            except DeltaValidationError:
                continue
            return op
        pytest.fail("churn drawer could not produce a valid patch in 64 tries")

    def add(self) -> AddInstance:
        for _ in range(64):
            tables = self._tables()
            table = tables[int(self.rng.integers(len(tables)))]
            relation = self.support.base.table(table)
            column = relation.schema.columns[
                int(self.rng.integers(len(relation.schema.columns)))
            ]
            row = int(self.rng.integers(len(relation)))
            delta = CellDelta(
                table, row, column.name,
                self._bumped(column.dtype, relation.cell(row, column.name)),
            )
            op = AddInstance((delta,))
            try:
                validate_op(op, self.support)
            except DeltaValidationError:
                continue
            return op
        pytest.fail("churn drawer could not produce a valid add in 64 tries")

    def retire(self) -> RetireInstances | PatchBase:
        live = [
            instance_id
            for instance_id in range(len(self.support))
            if instance_id not in self.support.retired_ids
        ]
        if len(live) <= 4:  # keep the market populated
            return self.patch()
        return RetireInstances((live[int(self.rng.integers(len(live)))],))

    def insert(self) -> InsertBaseRows:
        tables = self._tables()
        table = tables[int(self.rng.integers(len(tables)))]
        schema = self.support.base.table(table).schema
        row = []
        for column in schema.columns:
            tick = self._next_tick()
            if column.dtype is ColumnType.INT:
                row.append(1_000_000 + tick)
            elif column.dtype is ColumnType.FLOAT:
                row.append(1_000_000.25 + tick)
            else:
                row.append(f"new{tick}")
        return InsertBaseRows(table, (tuple(row),))

    def draw(self) -> PatchBase | AddInstance | RetireInstances | InsertBaseRows:
        kind = int(self.rng.integers(5))
        if kind <= 1:
            return self.patch()
        if kind == 2:
            return self.add()
        if kind == 3:
            return self.retire()
        return self.insert()


def _rebuild_oracle(db_seed, instances, retired, applied, base_pricing, texts):
    db = random_fuzz_database(np.random.default_rng(db_seed))
    support = SupportSet(db, list(instances))
    pricing = base_pricing
    size = len(support) - sum(1 for op in applied if isinstance(op, AddInstance))
    for op in applied:
        if isinstance(op, PatchBase):
            db.table(op.table).set_cell(op.row_index, op.column, op.value)
        elif isinstance(op, InsertBaseRows):
            for row in op.rows:
                db.table(op.table).insert(tuple(row))
        elif isinstance(op, AddInstance):
            size += 1
            pricing = extend_pricing(pricing, size)
    support.retire_instances(sorted(retired))
    market = QueryMarket(support)
    market.set_pricing(pricing)
    market.build_hypergraph(texts)
    return market


def _run_case(case: int) -> None:
    rng = np.random.default_rng(BASE_SEED + case)
    db_seed = int(rng.integers(2**31))
    live_db = random_fuzz_database(np.random.default_rng(db_seed))
    support = random_support_set(
        live_db, rng, size=int(rng.integers(12, 28)), max_deltas=3
    )
    orig_instances = list(support.instances)

    texts = []
    for _ in range(QUERIES_PER_CASE):
        text = random_fuzz_query_text(rng)
        try:
            market_probe = QueryMarket(support)
            market_probe._as_query(text)
        except QueryError:  # pragma: no cover - grammar stays in-dialect
            pytest.fail(f"fuzz grammar produced an unplannable query: {text}")
        texts.append(text)

    base_pricing = uniform_calibrated_pricing(support, 100.0)
    market = QueryMarket(support)
    market.set_pricing(base_pricing)
    market.build_hypergraph(texts)

    # Every few cases, replay the same stream through the sharded tier over
    # a third identical database copy (its support shares the same frozen
    # instance objects), covering the scatter/partition delta path.
    sharded = None
    if case % 4 == 0:
        sharded_db = random_fuzz_database(np.random.default_rng(db_seed))
        sharded_support = SupportSet(sharded_db, list(orig_instances))
        sharded = ShardedPricingService(
            sharded_support, num_shards=2, start=False
        )
        sharded.install_pricing(base_pricing)
        for text in texts:
            sharded.quote(text)

    drawer = _ChurnDrawer(support, rng)
    applied: list = []
    retired: set[int] = set()
    for step in range(STEPS_PER_CASE):
        op = drawer.draw()
        report = market.apply_delta(op)
        applied.append(op)
        retired.update(report.effect.retired_ids)
        if sharded is not None:
            sharded.apply_delta(op)

        all_instances = orig_instances + [
            support.instance(i)
            for i in range(len(orig_instances), len(support))
        ]
        oracle = _rebuild_oracle(
            db_seed, all_instances, retired, applied, base_pricing, texts
        )
        for text in texts:
            served = market.quote(text)
            expected = oracle.quote(text)
            if served.bundle != expected.bundle or served.price != expected.price:
                pytest.fail(
                    f"churn parity mismatch (seed={BASE_SEED}, case={case}, "
                    f"step={step}, op={op!r})\n"
                    f"query: {text}\n"
                    f"incremental: {served.price!r} {sorted(served.bundle)}\n"
                    f"rebuild: {expected.price!r} {sorted(expected.bundle)}"
                )
            if sharded is not None:
                shard_quote = sharded.quote(text)
                if (
                    shard_quote.bundle != expected.bundle
                    or shard_quote.price != expected.price
                ):
                    pytest.fail(
                        f"sharded churn mismatch (seed={BASE_SEED}, "
                        f"case={case}, step={step}, op={op!r})\n"
                        f"query: {text}\n"
                        f"sharded: {shard_quote.price!r} "
                        f"{sorted(shard_quote.bundle)}\n"
                        f"rebuild: {expected.price!r} {sorted(expected.bundle)}"
                    )


@pytest.mark.parametrize("chunk", range(4))
def test_delta_churn_fuzz(request, chunk):
    """Each chunk runs a quarter of the configured case budget."""
    cases = _case_count(request)
    per_chunk = cases // 4
    for case in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        _run_case(case)


def test_tier1_budget_meets_issue_floor():
    # The tier-1 configuration must cover at least 20 generated cases.
    assert TIER1_CASES >= 20
    assert FULL_CASES % 4 == 0 and TIER1_CASES % 4 == 0
