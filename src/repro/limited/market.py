"""Limited-supply market semantics: capacities, allocation, envy-freeness.

An item pricing together with capacities induces an allocation:

1. every buyer with ``p(e) < v_e`` (strictly affordable) is a *forced
   winner* — serving fewer would leave an envious buyer;
2. buyers with ``p(e) = v_e`` are indifferent and may be rationed;
3. buyers with ``p(e) > v_e`` walk away.

A pricing is envy-free *feasible* when the forced winners alone respect
every item capacity; the allocator then admits indifferent buyers greedily
(highest price first) while capacity remains. Revenue is the sum of prices
over served buyers. With all capacities at least the max degree ``B`` the
semantics collapse to the paper's unlimited-supply model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing
from repro.core.revenue import PRICE_TOLERANCE
from repro.exceptions import PricingError


@dataclass
class LimitedSupplyInstance:
    """A pricing instance plus per-item capacities (copies available)."""

    instance: PricingInstance
    capacities: np.ndarray

    def __post_init__(self):
        self.capacities = np.asarray(self.capacities, dtype=np.int64)
        if self.capacities.shape != (self.instance.num_items,):
            raise PricingError(
                f"expected {self.instance.num_items} capacities, "
                f"got shape {self.capacities.shape}"
            )
        if np.any(self.capacities < 0):
            raise PricingError("capacities must be non-negative")

    @classmethod
    def uniform(cls, instance: PricingInstance, capacity: int) -> "LimitedSupplyInstance":
        """Every item has the same number of copies."""
        return cls(instance, np.full(instance.num_items, capacity, dtype=np.int64))

    @property
    def num_items(self) -> int:
        return self.instance.num_items

    @property
    def num_edges(self) -> int:
        return self.instance.num_edges

    def is_effectively_unlimited(self) -> bool:
        """True when no capacity can ever bind (capacity >= item degree)."""
        return bool(np.all(self.capacities >= self.instance.hypergraph.degrees))


@dataclass(frozen=True)
class AllocationReport:
    """Outcome of offering an item pricing to a limited-supply market."""

    feasible: bool
    revenue: float
    served: np.ndarray  # boolean mask over edges
    forced_winners: np.ndarray  # strictly-affordable mask
    rationed: np.ndarray  # indifferent buyers that were *not* served
    overdemanded_items: tuple[int, ...]  # non-empty iff infeasible

    @property
    def num_served(self) -> int:
        return int(self.served.sum())


def allocate(
    pricing: ItemPricing,
    market: LimitedSupplyInstance,
    tolerance: float = PRICE_TOLERANCE,
) -> AllocationReport:
    """Allocate bundles under ``pricing``, enforcing envy-freeness.

    Returns an infeasible report (revenue 0, nothing served) when the forced
    winners alone exceed some capacity — such a pricing cannot be posted.
    """
    instance = market.instance
    edges = instance.edges
    valuations = instance.valuations
    prices = pricing.price_edges(edges)

    # Classify buyers. The tolerance band around equality mirrors
    # compute_revenue: LP-produced prices sit exactly on valuations.
    slack = valuations * tolerance + tolerance
    strict = prices < valuations - slack
    indifferent = (~strict) & (prices <= valuations + slack)

    usage = np.zeros(market.num_items, dtype=np.int64)
    for index in np.flatnonzero(strict):
        for item in edges[index]:
            usage[item] += 1
    over = np.flatnonzero(usage > market.capacities)
    if len(over):
        nothing = np.zeros(instance.num_edges, dtype=bool)
        return AllocationReport(
            feasible=False,
            revenue=0.0,
            served=nothing,
            forced_winners=strict,
            rationed=nothing.copy(),
            overdemanded_items=tuple(int(item) for item in over),
        )

    served = strict.copy()
    rationed = np.zeros(instance.num_edges, dtype=bool)
    # Admit indifferent buyers greedily, most expensive bundle first: each
    # admission adds p(e) to revenue, so higher prices are preferred when
    # capacity is scarce.
    order = sorted(
        np.flatnonzero(indifferent), key=lambda index: -float(prices[index])
    )
    for index in order:
        bundle = edges[index]
        if all(usage[item] < market.capacities[item] for item in bundle):
            for item in bundle:
                usage[item] += 1
            served[index] = True
        else:
            rationed[index] = True

    revenue = float(prices[served].sum())
    return AllocationReport(
        feasible=True,
        revenue=revenue,
        served=served,
        forced_winners=strict,
        rationed=rationed,
        overdemanded_items=(),
    )


def is_envy_free_feasible(
    pricing: ItemPricing,
    market: LimitedSupplyInstance,
    tolerance: float = PRICE_TOLERANCE,
) -> bool:
    """Whether the pricing's forced winners fit within the capacities."""
    return allocate(pricing, market, tolerance).feasible


def priced_out_pricing(market: LimitedSupplyInstance) -> ItemPricing:
    """A pricing that is always feasible: every non-empty bundle costs more
    than any valuation, so no buyer is a forced winner.

    This is the safe fallback when even the zero pricing violates a
    capacity (e.g. a zero-capacity item wanted by a positive-value buyer:
    at price 0 that buyer strictly affords a copy that does not exist).
    Revenue is 0 — the envy-free analogue of "shop closed".
    """
    top = float(market.instance.valuations.max(initial=0.0))
    return ItemPricing(np.full(market.num_items, top + 1.0))
