"""Incremental delta maintenance vs rebuild on a churn stream of deltas.

A live market absorbs base patches, support adds/retires, and base-row
inserts through ``apply_delta``: the support set mutates in place, only
bundles whose referenced columns intersect each delta's footprint are
recomputed, and changed edges are tombstoned + appended in the live CSR
hypergraph. The control rebuilds the whole market after every delta —
fresh support indexes, fresh conflict engine, full hypergraph — which is
what a system without incremental maintenance must do. The acceptance bar
is a 5x churn-stream speedup with every post-delta quote *bit-equal* to the
rebuilt oracle's, plus hit-counter proof that footprint-disjoint quote
cache entries survive the deltas.
"""

from repro.experiments.figures import update_churn_speedup

from benchmarks.conftest import save_artifact, save_bench_json


def test_update_churn_speedup(benchmark):
    artifact = benchmark.pedantic(
        update_churn_speedup,
        kwargs={
            "workload_name": "uniform",
            "scale": 0.2,
            "support_size": 500,
            "num_queries": 80,
            "num_steps": 24,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    save_bench_json(artifact, "BENCH_updates.json")
    speedups = artifact.data["speedups"]
    assert speedups["incremental"] >= 5.0, speedups
    diagnostics = artifact.data["diagnostics"]
    # The figure raises on any price/bundle divergence, so reaching here
    # means every comparison was exact; the flag pins that into the JSON.
    assert diagnostics["bit_equal"] is True
    assert diagnostics["bitequal_checks"] > 0
    # Surgical invalidation, not a flush: entries disjoint from the churn
    # footprints survived and served warm hits, while intersecting entries
    # were delta-dropped (both counters must move).
    cache = diagnostics["quote_cache"]
    assert cache["hits"] > 0, cache
    assert cache["delta_drops"] > 0, cache
    assert cache["hits"] > cache["delta_drops"], cache
