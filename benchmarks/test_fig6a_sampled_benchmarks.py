"""Figure 6a: sampled valuations on the SSB and TPC-H workloads."""

import numpy as np
import pytest

from repro.experiments.figures import figure5a_uniform, figure5a_zipf

from benchmarks.conftest import save_artifact

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



@pytest.mark.parametrize("workload_name", ["ssb", "tpch"])
def test_fig6a_uniform_valuations(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure5a_uniform, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]
    means = {name: float(np.mean(vals)) for name, vals in series.items()}
    # LP-based pricing beats the single uniform item price (see the
    # fig5a module docstring for why CIP rather than LPIP leads on
    # sampled valuations in our instances).
    assert max(means["lpip"], means["cip"]) >= means["uip"] - 1e-6
    # Layering extracts revenue proportional to edges with unique items
    # (paper: about half for SSB, a quarter for TPC-H) — nonzero here.
    assert means["layering"] > 0.0


@pytest.mark.parametrize("workload_name", ["ssb", "tpch"])
def test_fig6a_zipf_valuations(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure5a_zipf, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]
    for name, values in series.items():
        if name == "subadditive bound":
            continue
        assert all(0.0 <= value <= 1.0 + 1e-6 for value in values), name
