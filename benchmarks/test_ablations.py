"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify *our* engineering decisions:

1. incremental (IVM) conflict checking vs full query re-execution,
2. column pruning vs table pruning vs no pruning,
3. LPIP's LP budget (``max_programs``) vs revenue,
4. CIP's epsilon vs revenue and runtime,
5. designed (Section 7.2) vs random support sets.
"""

import time

import numpy as np
import pytest

from repro.core.algorithms import CIP, Layering, LPIP
from repro.core.hypergraph import PricingInstance
from repro.experiments.report import format_table
from repro.qirana.conflict import ConflictSetEngine
from repro.support.designer import designed_support
from repro.valuations import UniformValuations
from repro.workloads.world import world_workload

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



@pytest.fixture(scope="module")
def workload():
    return world_workload(scale=0.15, expanded=False)  # 34 base queries


@pytest.fixture(scope="module")
def support(workload):
    return workload.support(size=300, seed=0, cells_per_instance=2)


def test_ablation_incremental_vs_full(benchmark, workload, support):
    """IVM-style delta checks vs re-running every candidate query."""

    def build(use_incremental):
        # Name the backend explicitly: this ablation isolates the IVM delta
        # checkers, not the auto backend's vectorized dispatch.
        backend = "incremental" if use_incremental else "naive"
        engine = ConflictSetEngine(support, backend=backend)
        start = time.perf_counter()
        hypergraph = engine.build_hypergraph(workload.queries)
        return time.perf_counter() - start, hypergraph

    fast_time, fast_hg = benchmark.pedantic(
        build, args=(True,), rounds=1, iterations=1
    )
    slow_time, slow_hg = build(False)
    speedup = slow_time / max(fast_time, 1e-9)
    print(
        f"\nconflict-set construction: incremental {fast_time:.2f}s, "
        f"full {slow_time:.2f}s, speedup {speedup:.1f}x"
    )
    assert fast_hg.edges == slow_hg.edges  # exactness
    assert speedup > 1.0


def test_ablation_column_pruning(benchmark, workload, support):
    """How many candidate instances does column pruning eliminate?"""

    def measure():
        engine = ConflictSetEngine(support)
        total_candidates = 0
        total_instances = 0
        for query in workload.queries:
            computation = engine.compute(query)
            total_candidates += computation.num_candidates
            total_instances += len(support)
        return total_candidates, total_instances

    candidates, universe = benchmark.pedantic(measure, rounds=1, iterations=1)
    fraction = candidates / universe
    print(
        f"\ncolumn pruning: {candidates}/{universe} candidate evaluations "
        f"({fraction:.1%} of the naive all-pairs work)"
    )
    assert fraction < 0.8  # pruning must eliminate a substantial share


def test_ablation_lpip_budget(benchmark, workload, support):
    """Revenue vs number of LPs solved (LPIP's knob)."""
    hypergraph = workload.hypergraph(support)
    instance = UniformValuations(100).instance(hypergraph, rng=1)

    def sweep():
        rows = []
        for budget in (1, 4, 16, None):
            algorithm = LPIP(max_programs=budget)
            start = time.perf_counter()
            result = algorithm.run(instance)
            elapsed = time.perf_counter() - start
            rows.append(
                [str(budget), f"{result.revenue:.1f}", f"{elapsed:.2f}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["max_programs", "revenue", "seconds"], rows,
        title="LPIP LP-budget ablation",
    ))
    revenues = [float(row[1]) for row in rows]
    assert revenues[-1] >= revenues[0] - 1e-6  # more LPs never hurt


def test_ablation_cip_epsilon(benchmark, workload, support):
    """CIP's epsilon: coarser capacity sweeps are faster, possibly worse."""
    hypergraph = workload.hypergraph(support)
    instance = UniformValuations(100).instance(hypergraph, rng=1)

    def sweep():
        rows = []
        for epsilon in (0.2, 1.0, 4.0):
            algorithm = CIP(epsilon=epsilon)
            start = time.perf_counter()
            result = algorithm.run(instance)
            elapsed = time.perf_counter() - start
            rows.append(
                [f"{epsilon:g}", f"{result.revenue:.1f}", f"{elapsed:.2f}",
                 str(result.metadata["num_programs"])]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["epsilon", "revenue", "seconds", "LPs"], rows,
        title="CIP epsilon ablation",
    ))
    lp_counts = [int(row[3]) for row in rows]
    assert lp_counts[0] >= lp_counts[-1]  # smaller eps = more capacity points


def test_ablation_designed_vs_random_support(benchmark, workload):
    """Section 7.2: a designed unique-item support lets item pricing extract
    (nearly) everything; a random support of the same size does not."""
    queries = workload.queries[:20]

    def run_design():
        return designed_support(workload.database, queries, rng=3)

    report = benchmark.pedantic(run_design, rounds=1, iterations=1)
    size = max(len(report.support), 1)

    random_support = workload.support(size=size, seed=4)
    rng = np.random.default_rng(5)
    valuations = rng.uniform(1, 100, size=len(queries))

    rows = []
    revenues = {}
    for label, sup in (("designed", report.support), ("random", random_support)):
        hypergraph = ConflictSetEngine(sup).build_hypergraph(queries)
        instance = PricingInstance(hypergraph, valuations)
        revenue = Layering().run(instance).revenue
        revenues[label] = revenue
        rows.append([label, len(sup), f"{revenue:.1f}",
                     f"{revenue / valuations.sum():.3f}"])
    print("\n" + format_table(
        ["support", "|S|", "layering revenue", "normalized"], rows,
        title=f"designed vs random support ({report.num_dedicated} of "
              f"{len(queries)} queries separated)",
    ))
    assert revenues["designed"] >= revenues["random"] - 1e-9
