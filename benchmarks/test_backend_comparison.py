"""Conflict-backend comparison on the uniform and SSB-join workloads.

The uniform workload's flat selection queries are fully vectorizable, so the
batch backend's advantage over per-candidate re-execution is largest here —
the acceptance bar is a 5x construction speedup over ``naive`` with exact
hyperedge parity (asserted inside ``time_hypergraph_builds``). The SSB
two-table join templates exercise the join kernels (per-side delta tensors +
hash-index probes); there the bar is a 3x speedup over the *incremental*
checkers, which already avoid re-execution.
"""

from repro.experiments.figures import backend_comparison, join_backend_comparison

from benchmarks.conftest import save_artifact, save_bench_json


def test_backend_comparison_uniform(benchmark):
    artifact = benchmark.pedantic(
        backend_comparison,
        kwargs={
            "workload_name": "uniform",
            "scale": 0.15,
            "support_size": 250,
            "num_queries": 120,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    save_bench_json(artifact, "BENCH_backends.json")
    # Only relative speedups are asserted (measured margin is ~20x over the
    # bar); absolute wall-clock comparisons flake on shared CI runners.
    speedups = artifact.data["speedups"]
    assert speedups["vectorized"] >= 5.0, speedups
    assert speedups["auto"] >= 5.0, speedups


def test_backend_comparison_ssb_join(benchmark):
    artifact = benchmark.pedantic(
        join_backend_comparison,
        kwargs={
            "workload_name": "ssb",
            "scale": 0.15,
            "support_size": 300,
            "num_queries": 80,
            # The CI-scale SSB join template: 2-table count(*) city queries,
            # decided entirely in array ops by the join kernel.
            "template": "count(*)",
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    save_bench_json(artifact, "BENCH_backends_join.json")
    # The join path must beat the incremental checkers by 3x on the
    # CI-scale SSB template (parity asserted inside time_hypergraph_builds);
    # the vectorized backend must have decided the joins itself, not via
    # its incremental fallback.
    speedups = artifact.data["speedups"]
    assert speedups["vectorized"] >= 3.0, speedups
    diagnostics = artifact.data["diagnostics"]["vectorized"]
    assert diagnostics["vectorized"]["queries"] > 0, diagnostics


def test_backend_comparison_ssb_join3(benchmark):
    artifact = benchmark.pedantic(
        join_backend_comparison,
        kwargs={
            "workload_name": "ssb",
            "scale": 0.15,
            "support_size": 600,
            "num_queries": 100,
            "num_tables": 3,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    save_bench_json(artifact, "BENCH_backends_join3.json")
    # The cascaded three-way probe kernels (shared unfiltered enumeration +
    # per-query filter masks) must beat the incremental checkers by 3x;
    # the kernel counters prove every query was decided by a *_join3 kernel
    # rather than the incremental fallback.
    speedups = artifact.data["speedups"]
    assert speedups["vectorized"] >= 3.0, speedups
    diagnostics = artifact.data["diagnostics"]["vectorized"]["vectorized"]
    kernels = diagnostics["kernels"]
    join3_decided = sum(
        count for label, count in kernels.items() if label.endswith("_join3")
    )
    assert join3_decided == diagnostics["queries"] == 100, kernels
    assert diagnostics["fallback_reasons"] == {}, diagnostics


def test_backend_comparison_ssb_having(benchmark):
    artifact = benchmark.pedantic(
        join_backend_comparison,
        kwargs={
            "workload_name": "ssb",
            "scale": 0.15,
            # Larger support than the join3 bench: the ratio is stable at
            # any size, but a sub-half-second vectorized denominator flakes
            # under full-suite memory pressure — 1000 instances keep both
            # sides comfortably above the noise floor.
            "support_size": 1000,
            "num_queries": 100,
            "num_tables": 3,
            # Append "having count(*) >= 2" to every grouped 3-table
            # template: the HAVING visibility-mask kernel on top of the
            # 3-way grouped join path.
            "having_min": 2,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    save_bench_json(artifact, "BENCH_backends_having.json")
    speedups = artifact.data["speedups"]
    assert speedups["vectorized"] >= 3.0, speedups
    diagnostics = artifact.data["diagnostics"]["vectorized"]["vectorized"]
    assert diagnostics["kernels"].get("grouped_join3", 0) == diagnostics[
        "queries"
    ], diagnostics
    assert diagnostics["fallback_reasons"] == {}, diagnostics
