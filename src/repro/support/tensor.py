"""NumPy delta tensors over a support set.

The batch conflict engine decides all candidates of a query in a few array
operations. Its input is the *delta tensor* of one table: every
``(instance, row)`` pair some support instance patches, in instance order,
plus the per-column patch assignments. Building it costs one pass over the
support set's deltas and is cached on the :class:`SupportSet`, so the cost is
amortized over an entire workload (hundreds to thousands of queries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ColumnPatches:
    """All patches of one column: positions into the pair arrays + values."""

    positions: np.ndarray  #: int64 indices into pair_instance/pair_row
    values: np.ndarray  #: object array of replacement values (None = NULL)


@dataclass(frozen=True)
class TableDeltaTensor:
    """Columnar view of every patch a support set applies to one table.

    ``pair_instance``/``pair_row`` enumerate the distinct ``(instance, row)``
    pairs that are patched, sorted by instance id (instances are consecutive
    by construction, so the arrays are grouped). ``pair_counts[i]`` is the
    number of patched rows instance ``i`` has on this table — the batch
    engine uses it to route multi-row instances through the exact multiset
    comparison instead of the pairwise fast path.
    """

    table: str
    num_instances: int
    pair_instance: np.ndarray  #: int64[P]
    pair_row: np.ndarray  #: int64[P]
    pair_counts: np.ndarray  #: int64[num_instances]
    column_patches: dict[str, ColumnPatches]  #: lowercased column -> patches
    touched_instances: np.ndarray  #: int64, sorted unique instance ids with pairs

    @property
    def num_pairs(self) -> int:
        return int(len(self.pair_instance))

    def select_pairs(self, candidates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pairs belonging to the given (sorted) candidate instance ids.

        Returns ``(mask, positions)``: a boolean mask over the pair arrays
        plus the selected positions — the entry point of every batch kernel,
        and, for join plans, evaluated once per join side.
        """
        mask = np.isin(self.pair_instance, candidates)
        return mask, np.nonzero(mask)[0]


def _pairs_of(instances, table_key: str):
    """Accumulate the (instance, row) pairs + per-column patches of a table."""
    pair_instances: list[int] = []
    pair_rows: list[int] = []
    per_column: dict[str, tuple[list[int], list[object]]] = {}
    for instance in instances:
        first_pair: dict[int, int] = {}
        for delta in instance.deltas:
            if delta.table.lower() != table_key:
                continue
            position = first_pair.get(delta.row_index)
            if position is None:
                position = len(pair_instances)
                first_pair[delta.row_index] = position
                pair_instances.append(instance.instance_id)
                pair_rows.append(delta.row_index)
            column = delta.column.lower()
            positions, values = per_column.setdefault(column, ([], []))
            positions.append(position)
            values.append(delta.value)
    return pair_instances, pair_rows, per_column


def _column_patches_from(per_column) -> dict[str, ColumnPatches]:
    column_patches = {}
    for column, (positions, values) in per_column.items():
        value_array = np.empty(len(values), dtype=object)
        value_array[:] = values
        column_patches[column] = ColumnPatches(
            np.asarray(positions, dtype=np.int64), value_array
        )
    return column_patches


def build_delta_tensor(support, table: str) -> TableDeltaTensor:
    """The delta tensor of ``table`` for every *live* instance of ``support``.

    Retired instances (see :meth:`SupportSet.retire_instances`) keep their
    ids allocated but contribute no pairs, so they can never be decided as
    conflicting by the batch kernels.
    """
    key = table.lower()
    retired = getattr(support, "retired_ids", frozenset())
    live = (
        instance
        for instance in support
        if instance.instance_id not in retired
    )
    pair_instances, pair_rows, per_column = _pairs_of(live, key)
    pair_instance = np.asarray(pair_instances, dtype=np.int64)
    pair_counts = np.bincount(pair_instance, minlength=len(support)).astype(np.int64)
    return TableDeltaTensor(
        table=key,
        num_instances=len(support),
        pair_instance=pair_instance,
        pair_row=np.asarray(pair_rows, dtype=np.int64),
        pair_counts=pair_counts,
        column_patches=_column_patches_from(per_column),
        touched_instances=np.unique(pair_instance),
    )


# ----------------------------------------------------------------------
# Incremental maintenance (online delta subsystem)
# ----------------------------------------------------------------------


def grow_delta_tensor(tensor: TableDeltaTensor, num_instances: int) -> TableDeltaTensor:
    """The same tensor re-sized for a larger support set (no new pairs).

    Used when instances are appended that do not touch ``tensor.table`` —
    only ``pair_counts`` grows (with zeros).
    """
    if num_instances < tensor.num_instances:
        raise ValueError("a delta tensor can only grow")
    if num_instances == tensor.num_instances:
        return tensor
    pair_counts = np.zeros(num_instances, dtype=np.int64)
    pair_counts[: tensor.num_instances] = tensor.pair_counts
    return TableDeltaTensor(
        table=tensor.table,
        num_instances=num_instances,
        pair_instance=tensor.pair_instance,
        pair_row=tensor.pair_row,
        pair_counts=pair_counts,
        column_patches=tensor.column_patches,
        touched_instances=tensor.touched_instances,
    )


def extend_delta_tensor(
    tensor: TableDeltaTensor, instances, num_instances: int
) -> TableDeltaTensor:
    """Append the pairs of freshly added ``instances`` to an existing tensor.

    The new instances' ids must all exceed every id already present (they are
    appended at the end of the support set), which keeps the pair arrays
    grouped by ascending instance id without a re-sort.
    """
    pair_instances, pair_rows, per_column = _pairs_of(instances, tensor.table)
    if not pair_instances:
        return grow_delta_tensor(tensor, num_instances)
    base_pairs = tensor.num_pairs
    if len(tensor.pair_instance) and min(pair_instances) <= int(
        tensor.pair_instance[-1]
    ):
        raise ValueError("extended instances must have ids beyond the tensor's")
    pair_instance = np.concatenate(
        [tensor.pair_instance, np.asarray(pair_instances, dtype=np.int64)]
    )
    pair_row = np.concatenate(
        [tensor.pair_row, np.asarray(pair_rows, dtype=np.int64)]
    )
    pair_counts = np.bincount(pair_instance, minlength=num_instances).astype(np.int64)
    column_patches = dict(tensor.column_patches)
    for column, patches in _column_patches_from(per_column).items():
        shifted = ColumnPatches(patches.positions + base_pairs, patches.values)
        existing = column_patches.get(column)
        if existing is None:
            column_patches[column] = shifted
        else:
            column_patches[column] = ColumnPatches(
                np.concatenate([existing.positions, shifted.positions]),
                np.concatenate([existing.values, shifted.values]),
            )
    return TableDeltaTensor(
        table=tensor.table,
        num_instances=num_instances,
        pair_instance=pair_instance,
        pair_row=pair_row,
        pair_counts=pair_counts,
        column_patches=column_patches,
        touched_instances=np.unique(pair_instance),
    )


def retire_from_delta_tensor(
    tensor: TableDeltaTensor, instance_ids
) -> TableDeltaTensor:
    """Drop the pairs of retired instances (ids stay allocated).

    Column-patch positions index into the pair arrays, so they are remapped
    through the kept-pair prefix sum.
    """
    ids = np.asarray(sorted({int(i) for i in instance_ids}), dtype=np.int64)
    keep = ~np.isin(tensor.pair_instance, ids)
    if keep.all():
        return tensor
    new_position = np.cumsum(keep) - 1  # old pair position -> new position
    column_patches = {}
    for column, patches in tensor.column_patches.items():
        kept = keep[patches.positions]
        if not kept.any():
            continue
        column_patches[column] = ColumnPatches(
            new_position[patches.positions[kept]], patches.values[kept]
        )
    pair_instance = tensor.pair_instance[keep]
    pair_counts = np.bincount(
        pair_instance, minlength=tensor.num_instances
    ).astype(np.int64)
    return TableDeltaTensor(
        table=tensor.table,
        num_instances=tensor.num_instances,
        pair_instance=pair_instance,
        pair_row=tensor.pair_row[keep],
        pair_counts=pair_counts,
        column_patches=column_patches,
        touched_instances=np.unique(pair_instance),
    )
