"""Concurrency tests: N threads hammering PricingService vs a sequential oracle.

The service's claims under concurrency are (1) every served price equals
what a single-threaded :class:`QueryMarket` would have quoted, (2) the cache
counters stay consistent (every lookup is exactly one hit or one miss — no
lost or double-counted updates), and (3) concurrent purchases never lose
transactions. Threads interleave through the canonical cache, the
micro-batch queue, and the market lock; any unsynchronized path shows up as
a price mismatch or a counter drift here.
"""

import threading

import numpy as np
import pytest

from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service import PricingService, zipf_schedule

QUERIES = [
    "select Name from Country",
    "select Code from Country where Population > 20000000",
    "select avg(Population) from Country",
    "select Name from City where Population > 1000000",
    "select Continent, count(*) from Country group by Continent",
    "select CountryCode from CountryLanguage where Percentage > 90",
    "select max(LifeExpectancy) from Country",
    "select Name from Country where Continent = 'Europe'",
]

NUM_THREADS = 8
REQUESTS_PER_THREAD = 60


@pytest.fixture
def oracle(mini_support):
    market = QueryMarket(mini_support)
    market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
    return market


@pytest.fixture
def service(mini_support):
    market = QueryMarket(mini_support)
    market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
    with PricingService(market, max_batch_size=16, max_batch_delay=0.0005) as service:
        yield service


def _hammer(service, schedules, worker):
    threads = [
        threading.Thread(target=worker, args=(thread_id, schedule))
        for thread_id, schedule in enumerate(schedules)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentQuoting:
    def test_prices_match_sequential_oracle(self, service, oracle):
        rng = np.random.default_rng(5)
        schedules = [
            zipf_schedule(len(QUERIES), REQUESTS_PER_THREAD, 1.0, rng)
            for _ in range(NUM_THREADS)
        ]
        expected = {sql: oracle.quote(sql).price for sql in QUERIES}
        failures: list[str] = []

        def worker(thread_id: int, schedule) -> None:
            for index in schedule:
                sql = QUERIES[int(index)]
                quote = service.quote(sql)
                if quote.price != expected[sql] or quote.query_text != sql:
                    failures.append(
                        f"thread {thread_id}: {sql!r} -> {quote.price} "
                        f"(expected {expected[sql]})"
                    )

        _hammer(service, schedules, worker)
        assert not failures, failures[:5]

        stats = service.stats()
        total = NUM_THREADS * REQUESTS_PER_THREAD
        # Counter consistency: every request consulted the quote cache
        # exactly once, and every miss went through exactly one micro-batch.
        assert stats.quotes.hits + stats.quotes.misses == total
        assert stats.batched_requests == stats.quotes.misses
        assert stats.quotes.misses >= len(QUERIES)  # each query was cold once
        assert stats.quotes.hits > 0

    def test_no_lost_transactions(self, service):
        purchases_per_thread = 25

        def worker(thread_id: int, _schedule) -> None:
            for i in range(purchases_per_thread):
                sql = QUERIES[(thread_id + i) % len(QUERIES)]
                answer, _quote = service.purchase(sql, buyer=f"buyer-{thread_id}")
                assert answer is not None

        _hammer(service, [None] * NUM_THREADS, worker)
        assert len(service.transactions) == NUM_THREADS * purchases_per_thread
        per_buyer = {
            buyer: sum(1 for t in service.transactions if t.buyer == buyer)
            for buyer in {t.buyer for t in service.transactions}
        }
        assert all(count == purchases_per_thread for count in per_buyer.values())

    def test_concurrent_sessions_keep_ledgers_consistent(self, service):
        def worker(thread_id: int, _schedule) -> None:
            session = service.session(f"buyer-{thread_id}")
            for i in range(10):
                session.purchase(QUERIES[(thread_id + i) % len(QUERIES)])

        _hammer(service, [None] * NUM_THREADS, worker)
        # Telescoping invariant per buyer survives the interleaving: what a
        # buyer paid in total equals the one-shot price of their holdings.
        for thread_id in range(NUM_THREADS):
            assert service.ledger.cumulative_price_consistent(f"buyer-{thread_id}")

    def _churn(self):
        from repro.delta import (
            AddInstance,
            InsertBaseRows,
            PatchBase,
            RetireInstances,
        )
        from repro.support.delta import CellDelta

        return [
            PatchBase("Country", 1, "Population", 99_000_000),
            AddInstance((CellDelta("City", 2, "Population", 4_000_000),)),
            RetireInstances((2, 7)),
            InsertBaseRows("CountryLanguage", (("IND", "Hindi", 39.9),)),
            PatchBase("Country", 0, "LifeExpectancy", 80.5),
        ]

    def test_quotes_under_churn_match_some_version_boundary(
        self, service, mini_support, delta_rebuild_oracle
    ):
        """Every quote served during churn is a *consistent* market version.

        A delta mid-stream may race quote traffic, but a served (price,
        bundle) pair must equal what some prefix of the delta stream would
        quote — never a torn mix of two versions. In-flight quotes
        completing against the pre-delta market are exactly version k-1.
        """
        import time

        churn = self._churn()
        orig_instances = list(mini_support.instances)
        base_pricing = uniform_calibrated_pricing(mini_support, 100.0)
        served: list[tuple[str, float, frozenset]] = []
        barrier = threading.Barrier(NUM_THREADS + 1)

        def worker(thread_id: int, _schedule) -> None:
            barrier.wait()
            for i in range(60):
                sql = QUERIES[(thread_id + i) % len(QUERIES)]
                quote = service.quote(sql)
                served.append((sql, quote.price, quote.bundle))

        def mutate() -> None:
            barrier.wait()
            for op in churn:
                service.apply_delta(op)
                time.sleep(0.002)

        mutator = threading.Thread(target=mutate)
        mutator.start()
        _hammer(service, [None] * NUM_THREADS, worker)
        mutator.join()

        # Rebuild the oracle at every version boundary 0..len(churn); the
        # added instances live in the (shared, append-only) support list.
        all_instances = orig_instances + [
            mini_support.instance(i)
            for i in range(len(orig_instances), len(mini_support))
        ]
        acceptable: dict[str, set] = {sql: set() for sql in QUERIES}
        for prefix in range(len(churn) + 1):
            applied = churn[:prefix]
            retired = {
                instance_id
                for op in applied
                if op.kind == "retire_instances"
                for instance_id in op.instance_ids
            }
            adds = sum(1 for op in applied if op.kind == "add_instance")
            instances = all_instances[: len(orig_instances) + adds]
            oracle = delta_rebuild_oracle(
                instances, retired, applied, base_pricing, QUERIES
            )
            for sql in QUERIES:
                quote = oracle.quote(sql)
                acceptable[sql].add((quote.price, quote.bundle))

        torn = [
            entry for entry in served
            if (entry[1], entry[2]) not in acceptable[entry[0]]
        ]
        assert not torn, torn[:5]
        # And after the stream drains, the tier has converged on the final
        # version: every fresh quote equals the fully-mutated oracle's.
        final = delta_rebuild_oracle(
            all_instances,
            {2, 7},
            churn,
            base_pricing,
            QUERIES,
        )
        for sql in QUERIES:
            assert service.quote(sql).price == final.quote(sql).price
            assert service.quote(sql).bundle == final.quote(sql).bundle
        assert service.data_version == len(churn)

    def test_purchases_under_churn_keep_ledgers_consistent(self, service):
        """Deltas racing purchases never tear the per-buyer ledgers."""
        import time

        churn = self._churn()
        barrier = threading.Barrier(NUM_THREADS + 1)
        purchases_per_thread = 20

        def worker(thread_id: int, _schedule) -> None:
            barrier.wait()
            session = service.session(f"buyer-{thread_id}")
            for i in range(purchases_per_thread):
                session.purchase(QUERIES[(thread_id + i) % len(QUERIES)])

        def mutate() -> None:
            barrier.wait()
            for op in churn:
                service.apply_delta(op)
                time.sleep(0.002)

        mutator = threading.Thread(target=mutate)
        mutator.start()
        _hammer(service, [None] * NUM_THREADS, worker)
        mutator.join()

        assert len(service.transactions) == NUM_THREADS * purchases_per_thread
        # Support adds only *extend* the item-pricing universe (existing
        # weights untouched), so the telescoping invariant must survive the
        # interleaved deltas for every buyer.
        for thread_id in range(NUM_THREADS):
            assert service.ledger.cumulative_price_consistent(
                f"buyer-{thread_id}"
            )

    def test_pricing_install_mid_stream_never_serves_mixed_prices(
        self, service, mini_support
    ):
        """After an install quiesces, every quote reflects the new pricing."""
        base = uniform_calibrated_pricing(mini_support, 100.0)
        doubled = type(base)(base.weights * 2.0)
        barrier = threading.Barrier(NUM_THREADS + 1)

        def worker(thread_id: int, _schedule) -> None:
            barrier.wait()
            for i in range(40):
                service.quote(QUERIES[(thread_id + i) % len(QUERIES)])

        installer = threading.Thread(
            target=lambda: (barrier.wait(), service.install_pricing(doubled))
        )
        installer.start()
        _hammer(service, [None] * NUM_THREADS, worker)
        installer.join()
        oracle = QueryMarket(mini_support)
        oracle.set_pricing(doubled)
        for sql in QUERIES:
            assert service.quote(sql).price == oracle.quote(sql).price
