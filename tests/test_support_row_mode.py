"""Tests for row-mode neighbor sampling (the Qirana-faithful default)."""

import numpy as np
import pytest

from repro.exceptions import SupportError
from repro.support.generator import NeighborSampler


@pytest.fixture
def sampler(mini_db):
    return NeighborSampler(mini_db, rng=np.random.default_rng(0), mode="row")


class TestRowMode:
    def test_invalid_mode_rejected(self, mini_db):
        with pytest.raises(SupportError, match="mode"):
            NeighborSampler(mini_db, mode="bogus")

    def test_single_table_single_row(self, sampler):
        support = sampler.generate(60)
        for instance in support:
            tables = {delta.table for delta in instance.deltas}
            rows = {(delta.table.lower(), delta.row_index) for delta in instance.deltas}
            assert len(tables) == 1
            assert len(rows) == 1

    def test_all_non_pk_columns_perturbed(self, sampler, mini_db):
        support = sampler.generate(60)
        for instance in support:
            delta = instance.deltas[0]
            schema = mini_db.table(delta.table).schema
            pk = {c.lower() for c in schema.primary_key}
            non_pk = {c.name.lower() for c in schema.columns} - pk
            touched = {d.column.lower() for d in instance.deltas}
            assert touched == non_pk

    def test_primary_keys_never_touched(self, sampler, mini_db):
        support = sampler.generate(80)
        for instance in support:
            for delta in instance.deltas:
                pk = {
                    c.lower()
                    for c in mini_db.table(delta.table).schema.primary_key
                }
                assert delta.column.lower() not in pk

    def test_materializes_to_valid_neighbor(self, sampler, mini_db):
        support = sampler.generate(40)
        for instance in support:
            patched = instance.materialize(mini_db)  # raises on no-op deltas
            assert patched.total_rows == mini_db.total_rows

    def test_deterministic(self, mini_db):
        a = NeighborSampler(mini_db, rng=5, mode="row").generate(20)
        b = NeighborSampler(mini_db, rng=5, mode="row").generate(20)
        assert [i.deltas for i in a] == [i.deltas for i in b]

    def test_row_mode_flips_row_local_queries(self, mini_db):
        """A query reading one row conflicts iff that row's instance exists."""
        from repro.db.query import sql_query
        from repro.qirana.conflict import ConflictSetEngine

        sampler = NeighborSampler(mini_db, rng=1, mode="row")
        support = sampler.generate(100)
        engine = ConflictSetEngine(support)
        query = sql_query(
            "select Population from Country where Code = 'GRC'", mini_db
        )
        conflict = engine.conflict_set(query)
        greece_instances = {
            instance.instance_id
            for instance in support
            if instance.deltas[0].table.lower() == "country"
            and instance.deltas[0].row_index == 1  # GRC row
        }
        # Every Greece-row perturbation changes Population (all non-PK cells
        # change), and nothing else can affect the query.
        assert conflict == greece_instances

    def test_workload_support_uses_row_mode_by_default(self, mini_db):
        from repro.workloads.base import Workload

        workload = Workload("w", mini_db, [])
        support = workload.support(size=10, seed=0)
        tables_per_instance = [
            len({d.table for d in inst.deltas}) for inst in support
        ]
        assert set(tables_per_instance) == {1}
