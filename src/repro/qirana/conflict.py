"""Conflict-set computation: from queries to hyperedges.

``CS(Q, D) = {D' in S : Q(D') != Q(D)}`` (Section 3.2). The naive approach
re-runs the query on every support instance; we prune with two sound
observations about delta-encoded neighbors:

1. **Table pruning** — an instance whose patches only touch tables the query
   never reads cannot change the answer.
2. **Column pruning** — stronger: the answer of our plans is a function of
   the *referenced (table, column)* cells only (support deltas never insert
   or delete rows), so an instance must patch at least one referenced column
   to conflict.

For the paper's workloads, where most queries read a handful of columns,
column pruning removes the vast majority of candidate instances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.hypergraph import Hypergraph
from repro.db.database import Database
from repro.db.expr import Expr
from repro.db.plan import (
    Aggregate,
    Filter,
    HashJoin,
    PlanNode,
    Project,
    Sort,
    TableScan,
)
from repro.db.query import Query
from repro.qirana.incremental import build_incremental_checker
from repro.support.generator import SupportSet


def referenced_columns(query: Query, catalog: Database) -> set[tuple[str, str]]:
    """Lowercased (table, column) pairs the query's answer may depend on.

    Unqualified references are resolved against every table in the query;
    when ambiguous, all matches are kept (conservative, still sound).
    """
    alias_to_table: dict[str, str] = {}
    expressions: list[Expr] = []

    stack: list[PlanNode] = [query.plan]
    while stack:
        node = stack.pop()
        if isinstance(node, TableScan):
            alias_to_table[node.effective_alias] = node.table.lower()
        elif isinstance(node, Filter):
            expressions.append(node.predicate)
        elif isinstance(node, Project):
            expressions.extend(item.expr for item in node.items)
        elif isinstance(node, Aggregate):
            expressions.extend(item.expr for item in node.group_items)
            expressions.extend(
                spec.arg for spec in node.aggregates if spec.arg is not None
            )
        elif isinstance(node, HashJoin):
            expressions.extend(node.left_keys)
            expressions.extend(node.right_keys)
        elif isinstance(node, Sort):
            expressions.extend(key.expr for key in node.keys)
        stack.extend(node.children())

    tables = set(alias_to_table.values())
    pairs: set[tuple[str, str]] = set()
    for expression in expressions:
        for qualifier, column in expression.referenced_columns():
            if qualifier is not None and qualifier in alias_to_table:
                pairs.add((alias_to_table[qualifier], column))
                continue
            # Unqualified (or derived-scope qualifier): match every base
            # table of the query that has such a column.
            matched = False
            for table in tables:
                if catalog.has_table(table) and catalog.table(table).schema.has_column(column):
                    pairs.add((table, column))
                    matched = True
            if not matched:
                # Reference to a derived column (aggregate output); its
                # inputs were collected from the node that computed it.
                continue
    return pairs


@dataclass(frozen=True)
class ConflictComputation:
    """A conflict set plus pruning/timing diagnostics."""

    conflict_set: frozenset[int]
    num_candidates: int
    num_pruned: int
    wall_time_seconds: float
    incremental: bool = False


class ConflictSetEngine:
    """Computes conflict sets (hyperedges) for queries over a support set.

    Per-candidate evaluation uses the incremental checker of
    :mod:`repro.qirana.incremental` when the plan shape supports it
    (single-table filter/projection/aggregation — the bulk of the paper's
    workloads), falling back to full query re-execution otherwise.
    """

    def __init__(self, support: SupportSet, use_incremental: bool = True):
        self.support = support
        self.base = support.base
        self.use_incremental = use_incremental

    def candidate_instances(self, query: Query) -> list[int]:
        """Instance ids that could possibly conflict with ``query``."""
        pairs = referenced_columns(query, self.base)
        candidates: set[int] = set()
        for table, column in pairs:
            candidates.update(self.support.instances_touching_column(table, column))
        return sorted(candidates)

    def compute(self, query: Query) -> ConflictComputation:
        """Conflict set with diagnostics."""
        start = time.perf_counter()
        candidates = self.candidate_instances(query)

        checker = (
            build_incremental_checker(query, self.base)
            if self.use_incremental
            else None
        )
        baseline = None
        conflicting = []
        for instance_id in candidates:
            decision: bool | None = None
            if checker is not None:
                decision = checker(self.support.instance(instance_id))
            if decision is None:
                # Full evaluation: either no checker exists for this plan
                # shape, or this particular patch is outside the checker's
                # decidable cases (e.g. it touches both sides of a join).
                if baseline is None:
                    baseline = query.run(self.base)
                decision = (
                    query.run(self.support.materialize(instance_id)) != baseline
                )
            if decision:
                conflicting.append(instance_id)
        elapsed = time.perf_counter() - start
        return ConflictComputation(
            conflict_set=frozenset(conflicting),
            num_candidates=len(candidates),
            num_pruned=len(self.support) - len(candidates),
            wall_time_seconds=elapsed,
            incremental=checker is not None,
        )

    def conflict_set(self, query: Query) -> frozenset[int]:
        """Just the hyperedge ``CS(Q, D)``."""
        return self.compute(query).conflict_set

    def build_hypergraph(self, queries: list[Query]) -> Hypergraph:
        """The pricing hypergraph of a workload: one hyperedge per query."""
        edges = [self.conflict_set(query) for query in queries]
        labels = [query.text for query in queries]
        return Hypergraph(len(self.support), edges, labels=labels)
