"""Unit tests for the service's bounded LRU and generation-aware caches."""

import threading

import pytest

from repro.exceptions import ServiceError
from repro.service.cache import LRUCache, QuoteCache


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.requests == 2
        assert stats.hit_rate == 0.5

    def test_capacity_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a: b is now the LRU entry
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats().evictions == 1

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes a
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_size_is_bounded(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert cache.stats().evictions == 7

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServiceError, match="capacity"):
            LRUCache(0)

    def test_empty_hit_rate_is_zero(self):
        assert LRUCache(1).stats().hit_rate == 0.0

    def test_concurrent_puts_and_gets_stay_bounded(self):
        cache = LRUCache(16)

        def worker(base: int) -> None:
            for i in range(300):
                cache.put((base, i % 32), i)
                cache.get((base, (i + 1) % 32))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats()
        assert len(cache) <= 16
        assert stats.requests == 1200


class TestQuoteCacheGenerations:
    def test_fresh_entry_hits(self):
        cache = QuoteCache(4)
        cache.put("k", "quote")
        assert cache.get("k") == "quote"

    def test_bump_invalidates_lazily(self):
        cache = QuoteCache(4)
        cache.put("k", "old")
        cache.bump_generation()
        assert cache.get("k") is None  # stale entry dropped on access
        stats = cache.stats()
        assert stats.stale_drops == 1
        assert stats.misses == 1
        assert len(cache) == 0

    def test_new_generation_entries_hit_after_bump(self):
        cache = QuoteCache(4)
        cache.put("k", "old")
        cache.bump_generation()
        cache.put("k", "new")
        assert cache.get("k") == "new"

    def test_put_with_stale_generation_is_dropped(self):
        # The service stamps entries with the generation captured while the
        # quote was computed; if a pricing install raced in between, the
        # stale-priced quote must never be stored.
        cache = QuoteCache(4)
        generation = cache.generation
        cache.bump_generation()
        cache.put("k", "priced-under-old-generation", generation=generation)
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_generation_is_reported_in_stats(self):
        cache = QuoteCache(4)
        assert cache.stats().generation == 0
        cache.bump_generation()
        cache.bump_generation()
        assert cache.stats().generation == 2

    def test_stats_as_dict_round_trips_counters(self):
        cache = QuoteCache(4)
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        payload = cache.stats().as_dict()
        assert payload["hits"] == 1
        assert payload["misses"] == 1
        assert payload["hit_rate"] == 0.5
        assert payload["capacity"] == 4
