"""LP item pricing (LPIP) — Section 5.2 of the paper.

For every hyperedge ``e`` define the *frontier* ``F_e = {e' : v_{e'} >= v_e}``
and solve the linear program

    LP(e):  maximize   sum_{e' in F_e} sum_{j in e'} w_j
            subject to sum_{j in e'} w_j <= v_{e'}   for all e' in F_e
                       w >= 0

i.e. the revenue-maximizing item pricing that is forced to sell every edge at
least as valuable as ``e``. The uniform item pricing UIP would pick at this
threshold is a feasible point of LP(e), so LPIP dominates UIP threshold by
threshold (Section 5.2); LPIP returns the realized-revenue
maximizing solution across all thresholds (realized revenue also counts
cheaper edges that happen to sell).

Distinct thresholds produce distinct LPs; edges sharing a valuation share a
frontier, so we solve one LP per *distinct* valuation. ``max_programs``
optionally subsamples thresholds (evenly across the sorted valuations) to
bound running time on large workloads, matching the paper's observation that
LPIP "starts suffering from scalability issues" as ``m`` grows.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.algorithms.ubp import solve_frontier_item_lp
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction
from repro.core.revenue import revenue_of_item_weights


class LPIP(PricingAlgorithm):
    """LP-refined item pricing over valuation thresholds."""

    name = "lpip"

    def __init__(self, max_programs: int | None = None):
        """``max_programs``: cap on the number of LPs solved (None = all)."""
        self.max_programs = max_programs

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        thresholds = self._select_thresholds(instance)
        best_weights = np.zeros(instance.num_items)
        best_revenue = 0.0
        best_threshold: float | None = None
        solved = 0

        for threshold in thresholds:
            weights = self._solve_threshold(instance, threshold)
            if weights is None:
                continue
            solved += 1
            revenue = revenue_of_item_weights(weights, instance)
            if revenue > best_revenue:
                best_revenue = revenue
                best_weights = weights
                best_threshold = threshold

        return ItemPricing(best_weights), {
            "num_programs": solved,
            "best_threshold": best_threshold,
        }

    def _select_thresholds(self, instance: PricingInstance) -> list[float]:
        distinct = np.unique(instance.valuations)[::-1]  # descending
        distinct = distinct[distinct > 0]
        if self.max_programs is not None and len(distinct) > self.max_programs:
            positions = np.linspace(0, len(distinct) - 1, self.max_programs)
            distinct = distinct[np.round(positions).astype(int)]
        return [float(value) for value in distinct]

    def _solve_threshold(
        self, instance: PricingInstance, threshold: float
    ) -> np.ndarray | None:
        frontier = np.flatnonzero(
            (instance.valuations >= threshold)
            & (instance.hypergraph.edge_sizes() > 0)
        )
        if len(frontier) == 0:
            return None
        solved = solve_frontier_item_lp(
            instance, frontier, name=f"lpip-{threshold:g}"
        )
        return None if solved is None else solved[0]
