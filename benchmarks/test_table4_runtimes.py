"""Table 4: per-algorithm wall-clock per workload.

Absolute seconds are ours, not the paper's; the asserted reproduction is the
*ordering*: UBP and UIP are near-instant, Layering is fast, and the LP-based
algorithms (LPIP, CIP) dominate the cost.
"""

from repro.experiments.figures import table4_runtimes

from benchmarks.conftest import save_artifact
import pytest

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



def test_table4_algorithm_runtimes(benchmark):
    artifact = benchmark.pedantic(
        table4_runtimes, kwargs={"fast": True}, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    runtimes = artifact.data["runtimes"]

    for name, per_algorithm in runtimes.items():
        # UBP is the cheapest algorithm on every workload (paper: "< 1s").
        slowest_lp = max(per_algorithm["lpip"], per_algorithm["cip"])
        assert per_algorithm["ubp"] <= slowest_lp, name
        # The sort-based algorithms beat the LP-based ones.
        assert per_algorithm["uip"] <= slowest_lp, name
