"""User-facing query objects.

A :class:`Query` is a *deterministic function from databases to answers* — the
exact notion of "query" in the pricing framework (Section 3.1 of the paper).
Queries are planned once against a schema catalog and can then be executed on
any database with the same schemas, which is what conflict-set computation
does across thousands of support instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.database import Database
from repro.db.plan import PlanNode, run_plan
from repro.db.result import QueryResult
from repro.db.sql.parser import parse_select
from repro.db.sql.planner import plan_select


@dataclass
class Query:
    """A planned, executable query.

    Attributes
    ----------
    text:
        Original SQL text (or a synthetic description for programmatic plans).
    plan:
        Root of the logical plan.
    ordered:
        Whether answer row order is semantically meaningful (ORDER BY).
    """

    text: str
    plan: PlanNode
    ordered: bool = False
    _tables: frozenset[str] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self._tables is None:
            object.__setattr__(self, "_tables", frozenset(self.plan.referenced_tables()))

    @property
    def referenced_tables(self) -> frozenset[str]:
        """Lowercased base-table names this query reads.

        Used by the conflict engine to skip support instances whose deltas
        touch only unreferenced tables (the answer cannot change).
        """
        return self._tables

    def run(self, db: Database) -> QueryResult:
        """Execute against ``db`` and return a canonicalizable answer."""
        return run_plan(self.plan, db, ordered=self.ordered)

    def __str__(self) -> str:
        return self.text


def sql_query(sql: str, catalog: Database) -> Query:
    """Parse + plan ``sql`` against the schemas of ``catalog``."""
    statement = parse_select(sql)
    plan = plan_select(statement, catalog)
    return Query(sql, plan, ordered=bool(statement.order_by))
