"""Typed market deltas — the staged mutation vocabulary.

Four operations cover the online dynamics of a Qirana-style market:

- :class:`AddInstance` — grow the support set with a fresh neighbor,
- :class:`RetireInstances` — withdraw support instances (ids stay allocated),
- :class:`PatchBase` — change one cell of the seller's live database,
- :class:`InsertBaseRows` — append rows to a base table.

Each op is an immutable value object with a JSON round-trip
(:func:`delta_to_dict` / :func:`delta_from_dict`) used by the HTTP tier and
the CLI. Validation and application live in :mod:`repro.delta.apply`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Union

from repro.db.schema import Value
from repro.exceptions import DeltaError
from repro.support.delta import CellDelta


@dataclass(frozen=True)
class AddInstance:
    """Add one support instance, described by its cell deltas.

    The instance id is assigned at apply time (the next consecutive id of
    the live support set), so staged deltas are position-independent.
    """

    kind: ClassVar[str] = "add_instance"
    deltas: tuple[CellDelta, ...]

    @property
    def touched_columns(self) -> frozenset[tuple[str, str]]:
        return frozenset(
            (delta.table.lower(), delta.column.lower()) for delta in self.deltas
        )


@dataclass(frozen=True)
class RetireInstances:
    """Withdraw support instances; their ids stay allocated, never reused."""

    kind: ClassVar[str] = "retire_instances"
    instance_ids: tuple[int, ...]


@dataclass(frozen=True)
class PatchBase:
    """Replace one cell of the live base database."""

    kind: ClassVar[str] = "patch_base"
    table: str
    row_index: int
    column: str
    value: Value

    @property
    def touched_columns(self) -> frozenset[tuple[str, str]]:
        return frozenset({(self.table.lower(), self.column.lower())})


@dataclass(frozen=True)
class InsertBaseRows:
    """Append rows to one base table."""

    kind: ClassVar[str] = "insert_base_rows"
    table: str
    rows: tuple[tuple[Value, ...], ...]


DeltaOp = Union[AddInstance, RetireInstances, PatchBase, InsertBaseRows]

_KINDS = {
    AddInstance.kind: AddInstance,
    RetireInstances.kind: RetireInstances,
    PatchBase.kind: PatchBase,
    InsertBaseRows.kind: InsertBaseRows,
}


def delta_to_dict(op: DeltaOp) -> dict:
    """JSON-safe payload of a delta op (inverse of :func:`delta_from_dict`)."""
    if isinstance(op, AddInstance):
        return {
            "kind": op.kind,
            "deltas": [
                {
                    "table": delta.table,
                    "row_index": delta.row_index,
                    "column": delta.column,
                    "value": delta.value,
                }
                for delta in op.deltas
            ],
        }
    if isinstance(op, RetireInstances):
        return {"kind": op.kind, "instance_ids": list(op.instance_ids)}
    if isinstance(op, PatchBase):
        return {
            "kind": op.kind,
            "table": op.table,
            "row_index": op.row_index,
            "column": op.column,
            "value": op.value,
        }
    if isinstance(op, InsertBaseRows):
        return {
            "kind": op.kind,
            "table": op.table,
            "rows": [list(row) for row in op.rows],
        }
    raise DeltaError(f"unknown delta op {op!r}")


def _require(payload: dict, key: str, kinds, kind: str):
    if key not in payload:
        raise DeltaError(f"delta payload of kind {kind!r} is missing {key!r}")
    value = payload[key]
    if not isinstance(value, kinds):
        raise DeltaError(
            f"delta payload field {key!r} has invalid type "
            f"{type(value).__name__}"
        )
    return value


def delta_from_dict(payload: dict) -> DeltaOp:
    """Parse a delta op from its JSON payload, raising typed errors."""
    if not isinstance(payload, dict):
        raise DeltaError("delta payload must be a JSON object")
    kind = payload.get("kind")
    if kind not in _KINDS:
        raise DeltaError(
            f"unknown delta kind {kind!r}; expected one of {sorted(_KINDS)}"
        )
    if kind == AddInstance.kind:
        raw_deltas = _require(payload, "deltas", list, kind)
        if not raw_deltas:
            raise DeltaError("add_instance requires at least one cell delta")
        deltas = []
        for entry in raw_deltas:
            if not isinstance(entry, dict):
                raise DeltaError("each cell delta must be a JSON object")
            deltas.append(
                CellDelta(
                    table=_require(entry, "table", str, kind),
                    row_index=_require(entry, "row_index", int, kind),
                    column=_require(entry, "column", str, kind),
                    value=entry.get("value"),
                )
            )
        return AddInstance(deltas=tuple(deltas))
    if kind == RetireInstances.kind:
        ids = _require(payload, "instance_ids", list, kind)
        if not ids or not all(isinstance(i, int) for i in ids):
            raise DeltaError("retire_instances requires a list of instance ids")
        return RetireInstances(instance_ids=tuple(ids))
    if kind == PatchBase.kind:
        return PatchBase(
            table=_require(payload, "table", str, kind),
            row_index=_require(payload, "row_index", int, kind),
            column=_require(payload, "column", str, kind),
            value=payload.get("value"),
        )
    rows = _require(payload, "rows", list, kind)
    if not rows or not all(isinstance(row, list) for row in rows):
        raise DeltaError("insert_base_rows requires a list of row lists")
    return InsertBaseRows(
        table=_require(payload, "table", str, kind),
        rows=tuple(tuple(row) for row in rows),
    )
