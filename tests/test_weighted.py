"""Tests for Qirana's calibrated weighted pricing baselines."""

import pytest

from repro.core.hypergraph import Hypergraph
from repro.exceptions import PricingError
from repro.qirana.weighted import degree_weighted_pricing, uniform_calibrated_pricing


class TestUniformCalibrated:
    def test_full_bundle_costs_full_price(self):
        pricing = uniform_calibrated_pricing(100, 500.0)
        assert pricing.price(frozenset(range(100))) == pytest.approx(500.0)

    def test_proportionality(self):
        pricing = uniform_calibrated_pricing(100, 500.0)
        assert pricing.price(frozenset(range(40))) == pytest.approx(200.0)

    def test_accepts_support_set(self, mini_support):
        pricing = uniform_calibrated_pricing(mini_support, 80.0)
        assert pricing.num_items == len(mini_support)
        assert pricing.price(frozenset(range(len(mini_support)))) == pytest.approx(80.0)

    def test_invalid_inputs(self):
        with pytest.raises(PricingError):
            uniform_calibrated_pricing(0, 10.0)
        with pytest.raises(PricingError):
            uniform_calibrated_pricing(10, -1.0)


class TestDegreeWeighted:
    @pytest.fixture
    def hypergraph(self):
        return Hypergraph(4, [{0, 1}, {1}, {1, 2}])

    def test_calibration(self, hypergraph):
        pricing = degree_weighted_pricing(hypergraph, 100.0)
        assert pricing.price(frozenset(range(4))) == pytest.approx(100.0)

    def test_popular_items_cost_more(self, hypergraph):
        pricing = degree_weighted_pricing(hypergraph, 100.0)
        # item 1 has degree 3; item 3 degree 0.
        assert pricing.weights[1] > pricing.weights[3]

    def test_smoothing_keeps_unused_items_positive(self, hypergraph):
        pricing = degree_weighted_pricing(hypergraph, 100.0, smoothing=1.0)
        assert pricing.weights[3] > 0

    def test_zero_smoothing(self, hypergraph):
        pricing = degree_weighted_pricing(hypergraph, 100.0, smoothing=0.0)
        assert pricing.weights[3] == 0.0
        assert pricing.price(frozenset(range(4))) == pytest.approx(100.0)

    def test_invalid_inputs(self, hypergraph):
        with pytest.raises(PricingError):
            degree_weighted_pricing(hypergraph, -5.0)
        with pytest.raises(PricingError):
            degree_weighted_pricing(hypergraph, 10.0, smoothing=-1.0)
        empty = Hypergraph(3, [])
        with pytest.raises(PricingError):
            degree_weighted_pricing(empty, 10.0, smoothing=0.0)

    def test_comparison_against_optimized(self, mini_support, mini_db):
        """Calibrated weights leave revenue on the table vs LPIP."""
        from repro.core.algorithms import LPIP
        from repro.core.revenue import compute_revenue
        from repro.qirana.broker import QueryMarket

        market = QueryMarket(mini_support)
        queries = [
            "select Name from Country",
            "select avg(Population) from Country",
            "select * from City where Population >= 1000000",
        ]
        valuations = [40.0, 15.0, 25.0]
        instance = market.build_instance(queries, valuations)
        calibrated = degree_weighted_pricing(instance.hypergraph, 100.0)
        optimized = LPIP().run(instance)
        calibrated_revenue = compute_revenue(calibrated, instance).revenue
        assert optimized.revenue >= calibrated_revenue - 1e-9
