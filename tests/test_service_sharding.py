"""Sharded serving-tier tests: partitioning, routing, parity, overload, warmth.

The sharded tier's claims:

1. **Exact scatter/gather** — the union of per-shard partial conflict sets
   equals the unsharded conflict set, so prices are bit-equal to a plain
   ``QueryMarket`` over the full support, under any shard count and under
   N-thread load.
2. **Deterministic routing** — the home shard of a canonical key is a pure
   function of (key, shard count): identical across service instances and
   across restarts, and mostly stable under resharding.
3. **Bounded overload** — per-shard queues shed with
   ``ServiceOverloadError`` instead of growing unboundedly; accepted/shed
   counters account for every offered request and no accepted request is
   lost.
4. **Warm restarts** — a restored tier serves its persisted working set as
   cache hits without touching any shard's conflict engine, even when the
   shard count changed across the restart.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import PricingError, ServiceError, ServiceOverloadError
from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service import (
    ConsistentHashRouter,
    LoadProfile,
    ShardedPricingService,
    partition_support,
    run_load,
    zipf_schedule,
)

QUERIES = [
    "select Name from Country",
    "select Code from Country where Population > 20000000",
    "select avg(Population) from Country",
    "select Name from City where Population > 1000000",
    "select Continent, count(*) from Country group by Continent",
    "select CountryCode from CountryLanguage where Percentage > 90",
    "select max(LifeExpectancy) from Country",
    "select Name from Country where Continent = 'Europe'",
]


@pytest.fixture
def oracle(mini_support):
    market = QueryMarket(mini_support)
    market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
    return market


@pytest.fixture
def pricing(mini_support):
    return uniform_calibrated_pricing(mini_support, 100.0)


def make_service(mini_support, pricing, **kwargs):
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault("start", False)
    service = ShardedPricingService(mini_support, **kwargs)
    service.install_pricing(pricing)
    return service


class TestPartitioning:
    def test_round_robin_covers_every_instance_once(self, mini_support):
        partitions = partition_support(mini_support, 3)
        seen = sorted(
            int(global_id)
            for partition in partitions
            for global_id in partition.global_ids
        )
        assert seen == list(range(len(mini_support)))
        # Shard-local ids are consecutive and the deltas are preserved.
        for partition in partitions:
            for local, instance in enumerate(partition.support.instances):
                assert instance.instance_id == local
                original = mini_support.instance(int(partition.global_ids[local]))
                assert instance.deltas == original.deltas

    def test_to_global_maps_local_bundles(self, mini_support):
        partition = partition_support(mini_support, 4)[1]
        local = frozenset(range(len(partition)))
        assert partition.to_global(local) == frozenset(
            int(g) for g in partition.global_ids
        )

    def test_more_shards_than_instances_rejected(self, mini_support):
        with pytest.raises(ServiceError, match="shards"):
            partition_support(mini_support, len(mini_support) + 1)
        with pytest.raises(ServiceError, match="num_shards"):
            partition_support(mini_support, 0)


class TestRouting:
    def test_routing_is_deterministic_across_instances(self):
        keys = [f"key-{i:04d}" for i in range(500)]
        first = ConsistentHashRouter(4)
        second = ConsistentHashRouter(4)
        assert [first.route(k) for k in keys] == [second.route(k) for k in keys]

    def test_every_shard_owns_part_of_the_keyspace(self):
        router = ConsistentHashRouter(4)
        homes = {router.route(f"key-{i:04d}") for i in range(500)}
        assert homes == {0, 1, 2, 3}

    def test_resharding_moves_a_minority_of_keys(self):
        keys = [f"key-{i:05d}" for i in range(2000)]
        four = ConsistentHashRouter(4)
        five = ConsistentHashRouter(5)
        moved = sum(four.route(k) != five.route(k) for k in keys)
        # Consistent hashing: adding a fifth shard re-homes ~1/5 of the
        # keyspace, not ~4/5 like modulo hashing would.
        assert moved / len(keys) < 0.5

    def test_home_shard_same_across_service_restarts(self, mini_support, pricing):
        first = make_service(mini_support, pricing)
        second = make_service(mini_support, pricing)
        for sql in QUERIES:
            assert first.home_shard(sql) == second.home_shard(sql)

    def test_textual_variants_share_a_home_shard(self, mini_support, pricing):
        service = make_service(mini_support, pricing)
        assert service.home_shard(
            "select Name from Country"
        ) == service.home_shard("SELECT  Name   FROM  country")


class TestScatterGatherParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
    def test_prices_and_bundles_match_unsharded_oracle(
        self, mini_support, pricing, oracle, num_shards
    ):
        service = make_service(mini_support, pricing, num_shards=num_shards)
        for sql in QUERIES:
            served = service.quote(sql)
            expected = oracle.quote(sql)
            assert served.price == expected.price
            assert served.bundle == expected.bundle
            assert served.query_text == sql

    def test_quote_many_and_repeat_hits(self, mini_support, pricing, oracle):
        service = make_service(mini_support, pricing)
        quotes = service.quote_many(QUERIES)
        for sql, quote in zip(QUERIES, quotes):
            assert quote.price == oracle.quote(sql).price
        again = [service.quote(sql) for sql in QUERIES]
        stats = service.stats()
        totals = stats.quote_cache_totals()
        assert totals["hits"] == len(QUERIES)
        assert totals["misses"] == len(QUERIES)
        assert [q.price for q in again] == [q.price for q in quotes]

    def test_parity_under_thread_load(self, mini_support, pricing, oracle):
        requests_per_thread, num_threads = 40, 8
        schedule = zipf_schedule(
            len(QUERIES),
            requests_per_thread * num_threads,
            1.0,
            np.random.default_rng(7),
        )
        with ShardedPricingService(
            mini_support, num_shards=3, max_batch_size=8, max_batch_delay=0.0005
        ) as service:
            service.install_pricing(pricing)
            failures = []

            def client(thread_id: int) -> None:
                for index in schedule[thread_id::num_threads]:
                    try:
                        quote = service.quote(QUERIES[int(index)])
                        expected = oracle.quote(QUERIES[int(index)])
                        if quote.price != expected.price:
                            failures.append((QUERIES[int(index)], quote.price))
                    except Exception as exc:  # noqa: BLE001 - collected below
                        failures.append((QUERIES[int(index)], repr(exc)))

            threads = [
                threading.Thread(target=client, args=(t,), daemon=True)
                for t in range(num_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        assert not failures
        totals = stats.quote_cache_totals()
        # Counter consistency: every request consulted its home cache
        # exactly once, and every miss was explicitly admitted.
        assert totals["hits"] + totals["misses"] == len(schedule)
        assert stats.accepted == totals["misses"]
        assert stats.shed == 0

    def test_loadgen_reports_per_shard_latency(self, mini_support, pricing):
        service = make_service(mini_support, pricing)
        report = run_load(
            service,
            QUERIES,
            LoadProfile(num_requests=80, num_clients=1, zipf_s=0.0, seed=3),
        )
        assert report.errors == 0 and report.shed == 0
        assert report.per_shard  # home-shard breakdown present
        assert sum(s.count for s in report.per_shard.values()) == 80
        homes = {service.home_shard(sql) for sql in QUERIES}
        assert set(report.per_shard) <= homes

    def test_quote_without_pricing_raises(self, mini_support):
        service = ShardedPricingService(mini_support, num_shards=2, start=False)
        with pytest.raises(PricingError, match="no pricing installed"):
            service.quote(QUERIES[0])

    def test_install_reprices_every_shard_in_place(self, mini_support, pricing):
        service = make_service(mini_support, pricing)
        before = {sql: service.quote(sql).price for sql in QUERIES}
        service.install_pricing(uniform_calibrated_pricing(mini_support, 50.0))
        after = {sql: service.quote(sql).price for sql in QUERIES}
        for sql in QUERIES:
            assert after[sql] == pytest.approx(before[sql] / 2.0)
        stats = service.stats()
        # An install re-prices cached quotes in place (conflict sets are
        # unchanged), so every post-install quote is a warm hit at the new
        # price — no entry is dropped and the misses all predate the install.
        assert sum(s.quotes.stale_drops for s in stats.shards) == 0
        assert sum(s.quotes.hits for s in stats.shards) == len(QUERIES)
        assert sum(s.quotes.misses for s in stats.shards) == len(QUERIES)


class TestTransactionsAndSessions:
    def test_purchase_records_transactions(self, mini_support, pricing):
        service = make_service(mini_support, pricing)
        answer, quote = service.purchase(QUERIES[0], buyer="alice")
        assert answer is not None
        assert service.revenue == pytest.approx(quote.price)
        assert service.transactions[0].buyer == "alice"

    def test_concurrent_purchases_never_lose_transactions(
        self, mini_support, pricing
    ):
        with ShardedPricingService(mini_support, num_shards=2) as service:
            service.install_pricing(pricing)
            threads = [
                threading.Thread(
                    target=lambda b=buyer: [
                        service.purchase(sql, buyer=f"buyer-{b}")
                        for sql in QUERIES
                    ],
                    daemon=True,
                )
                for buyer in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(service.transactions) == 6 * len(QUERIES)

    def test_session_marginal_pricing_telescopes(self, mini_support, pricing):
        service = make_service(mini_support, pricing)
        session = service.session("alice")
        total = 0.0
        for sql in QUERIES[:4]:
            _, marginal = session.purchase(sql)
            total += marginal.marginal_price
        assert total == pytest.approx(pricing.price(session.holdings))
        assert session.total_paid == pytest.approx(total)


class TestOverloadShedding:
    def _gated_service(self, mini_support, pricing, gate, **kwargs):
        kwargs.setdefault("num_shards", 2)
        kwargs.setdefault("max_batch_size", 1)
        kwargs.setdefault("max_batch_delay", 0.0)
        kwargs.setdefault("max_queue_depth", 2)
        service = ShardedPricingService(mini_support, **kwargs)
        service.install_pricing(pricing)
        for worker in service._workers:
            original = worker.batcher._execute

            def gated(batch, _original=original):
                gate.wait()
                return _original(batch)

            worker.batcher._execute = gated
        return service

    def test_full_queues_shed_with_typed_error(self, mini_support, pricing, oracle):
        distinct = [
            f"select Name from Country where Population > {bound}"
            for bound in range(1000, 1000 + 16)
        ]
        gate = threading.Event()
        service = self._gated_service(mini_support, pricing, gate)
        served: dict[str, float] = {}
        shed: list[str] = []
        lock = threading.Lock()

        def client(sql: str) -> None:
            try:
                quote = service.quote(sql)
                with lock:
                    served[sql] = quote.price
            except ServiceOverloadError:
                with lock:
                    shed.append(sql)

        threads = [
            threading.Thread(target=client, args=(sql,), daemon=True)
            for sql in distinct
        ]
        try:
            for thread in threads:
                thread.start()
            # Give every client time to reach admission while the shard
            # workers are gated shut; bounded queues must reject the rest.
            for thread in threads:
                thread.join(timeout=0.05)
        finally:
            gate.set()
            for thread in threads:
                thread.join()
            stats = service.stats()
            service.close()
        assert shed, "bounded queues never shed under a gated worker"
        assert served, "admission control shed every request"
        assert len(served) + len(shed) == len(distinct)
        # No accepted request was lost or mispriced.
        for sql, price in served.items():
            assert price == oracle.quote(sql).price
        # Counter proof: service-level accepted/shed account for every
        # offered request (sheds are charged to the home shard, whether the
        # pre-scatter check or a worker queue refused), and worker queues
        # never exceeded their bound.
        assert stats.accepted == len(served)
        assert stats.shed == len(shed)
        assert sum(s.requests_shed for s in stats.shards) == len(shed)
        for shard in stats.shards:
            assert shard.batcher.queue_depth <= 2

    def test_sync_mode_never_sheds(self, mini_support, pricing):
        service = make_service(mini_support, pricing, max_queue_depth=1)
        for sql in QUERIES:
            service.quote(sql)
        assert service.stats().shed == 0

    def test_open_loop_overload_sheds_and_recovers(self, mini_support, pricing):
        """End-to-end: a gated tier sheds open-loop arrivals, then recovers."""
        gate = threading.Event()
        service = self._gated_service(
            mini_support, pricing, gate, max_queue_depth=1
        )
        distinct = [
            f"select Name from City where Population > {bound}"
            for bound in range(100, 100 + 30)
        ]
        try:
            report = None

            def unblock():
                # Let the first arrivals pile up, then open the gate so the
                # run drains and the report reflects both regimes.
                gate.set()

            timer = threading.Timer(0.05, unblock)
            timer.start()
            report = run_load(
                service,
                distinct,
                LoadProfile(
                    num_requests=30,
                    num_clients=8,
                    zipf_s=0.0,
                    mode="open",
                    arrival_rate=5000.0,
                    seed=1,
                ),
            )
            timer.cancel()
        finally:
            gate.set()
            service.close()
        assert report.errors == 0
        assert report.shed > 0, report
        assert report.completed == 30 - report.shed
        assert report.service["requests_shed"] == report.shed
        # After recovery the tier still serves: shed requests retried now
        # succeed (admission control shed, it did not poison anything).
        reopened = ShardedPricingService(mini_support, num_shards=2, start=False)
        reopened.install_pricing(pricing)
        for sql in distinct:
            assert reopened.quote(sql).price > 0.0


class TestWarmSnapshots:
    def test_restore_serves_working_set_without_recomputing(
        self, mini_support, pricing, oracle, tmp_path
    ):
        service = make_service(mini_support, pricing)
        session = service.session("alice")
        session.purchase(QUERIES[0])
        for sql in QUERIES:
            service.quote(sql)
        path = tmp_path / "tier.json"
        service.snapshot(path)

        restored = ShardedPricingService(mini_support, num_shards=3, start=False)
        restored.restore(path)
        for sql in QUERIES:
            quote = restored.quote(sql)
            assert quote.price == oracle.quote(sql).price
        stats = restored.stats()
        totals = stats.quote_cache_totals()
        # 100% warm: every post-restart request is a cache hit and no shard
        # scheduler nor conflict engine ever ran.
        assert totals["hits"] == len(QUERIES)
        assert totals["misses"] == 0
        assert all(s.batcher.batches == 0 for s in stats.shards)
        assert all(s.batcher.accepted == 0 for s in stats.shards)
        # Ledger and transactions survived too.
        assert restored.transactions == service.transactions
        assert restored.session("alice").holdings == session.holdings

    def test_restore_across_reshard_stays_warm(
        self, mini_support, pricing, oracle, tmp_path
    ):
        service = make_service(mini_support, pricing, num_shards=2)
        for sql in QUERIES:
            service.quote(sql)
        path = tmp_path / "tier.json"
        service.snapshot(path)

        resharded = ShardedPricingService(mini_support, num_shards=5, start=False)
        resharded.restore(path)
        for sql in QUERIES:
            assert resharded.quote(sql).price == oracle.quote(sql).price
        totals = resharded.stats().quote_cache_totals()
        assert totals["misses"] == 0, totals

    def test_partial_bundle_caches_are_reseeded(
        self, mini_support, pricing, tmp_path
    ):
        service = make_service(mini_support, pricing, num_shards=2)
        quote = service.quote(QUERIES[1])
        path = tmp_path / "tier.json"
        service.snapshot(path)
        restored = ShardedPricingService(mini_support, num_shards=4, start=False)
        restored.restore(path)
        # The global bundle was split back into per-shard partials whose
        # union reproduces it (so even a quote-cache eviction would not
        # trigger a conflict recomputation).
        _, key = restored._canonical(QUERIES[1])
        partials = [
            worker._bundles.get(key) for worker in restored._workers
        ]
        assert all(partial is not None for partial in partials)
        assert frozenset().union(*partials) == quote.bundle

    def test_failed_restore_leaves_tier_untouched(
        self, mini_support, pricing, tmp_path
    ):
        """A corrupt snapshot raises SnapshotError; no shard state moves."""
        from repro.exceptions import SnapshotError

        service = make_service(mini_support, pricing, num_shards=2)
        before = {sql: service.quote(sql).price for sql in QUERIES}
        before_hits = service.stats().quote_cache_totals()["hits"]

        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text('{"pricing": {"family": "item"')  # truncated
        with pytest.raises(SnapshotError, match="not valid JSON"):
            service.restore(corrupt)
        for sql in QUERIES:
            assert service.quote(sql).price == before[sql]
        # The post-failure quotes were cache hits against the *old* state —
        # the failed restore did not bump the cache generation.
        totals = service.stats().quote_cache_totals()
        assert totals["hits"] == before_hits + len(QUERIES)
        assert totals["stale_drops"] == 0

    def test_snapshot_without_pricing_raises(self, mini_support, tmp_path):
        service = ShardedPricingService(mini_support, num_shards=2, start=False)
        with pytest.raises(PricingError, match="nothing to snapshot"):
            service.snapshot(tmp_path / "tier.json")


class TestOptimizePricing:
    def test_bulk_optimize_larger_than_queue_bound(self, mini_support):
        """Regression: the offline bulk path must not be shed by admission
        control — a workload bigger than max_queue_depth is admissible."""
        from repro.core.algorithms import UBP

        distinct = [
            f"select Name from Country where Population > {bound}"
            for bound in range(500, 500 + 12)
        ]
        with ShardedPricingService(
            mini_support, num_shards=2, max_queue_depth=4
        ) as service:
            result = service.optimize_pricing(distinct, [3.0] * 12, UBP())
            assert result.revenue >= 0.0
            assert service.stats().shed == 0

    def test_optimize_matches_unsharded_market(self, mini_support):
        from repro.core.algorithms import UBP

        texts = QUERIES[:5]
        valuations = [12.0, 7.0, 9.0, 4.0, 11.0]
        market = QueryMarket(mini_support)
        expected = market.optimize_pricing(texts, valuations, UBP())

        service = ShardedPricingService(mini_support, num_shards=3, start=False)
        result = service.optimize_pricing(texts, valuations, UBP())
        assert result.revenue == pytest.approx(expected.revenue)
        for sql in texts:
            assert service.quote(sql).price == market.quote(sql).price


class TestConcurrentDeltas:
    """apply_delta racing scatter/gather traffic across every shard."""

    def _churn(self):
        from repro.delta import (
            AddInstance,
            InsertBaseRows,
            PatchBase,
            RetireInstances,
        )
        from repro.support.delta import CellDelta

        return [
            PatchBase("Country", 1, "Population", 99_000_000),
            AddInstance((CellDelta("City", 2, "Population", 4_000_000),)),
            RetireInstances((2, 7)),
            InsertBaseRows("CountryLanguage", (("IND", "Hindi", 39.9),)),
            PatchBase("Country", 0, "LifeExpectancy", 80.5),
        ]

    def test_quotes_under_churn_match_some_version_boundary(
        self, mini_support, pricing, delta_rebuild_oracle
    ):
        """Served (price, bundle) pairs are always a consistent version.

        The delta path takes the market lock plus every shard's compute
        lock, so a scatter mid-flight completes against the pre-delta
        market (version k-1) and post-delta quotes see version k — but
        never a torn mix of the two.
        """
        import threading
        import time

        churn = self._churn()
        orig_instances = list(mini_support.instances)
        served: list[tuple[str, float, frozenset]] = []
        num_threads = 6
        barrier = threading.Barrier(num_threads + 1)

        with ShardedPricingService(
            mini_support, num_shards=3, max_batch_delay=0.0005
        ) as service:
            service.install_pricing(pricing)

            def worker(thread_id: int) -> None:
                barrier.wait()
                for i in range(50):
                    if i % 5 == 0:  # exercise the batched scatter path too
                        for quote in service.quote_many(QUERIES[:4]):
                            served.append(
                                (quote.query_text, quote.price, quote.bundle)
                            )
                    sql = QUERIES[(thread_id + i) % len(QUERIES)]
                    quote = service.quote(sql)
                    served.append((sql, quote.price, quote.bundle))

            def mutate() -> None:
                barrier.wait()
                for op in churn:
                    service.apply_delta(op)
                    time.sleep(0.002)

            threads = [
                threading.Thread(target=worker, args=(thread_id,))
                for thread_id in range(num_threads)
            ]
            mutator = threading.Thread(target=mutate)
            for thread in threads:
                thread.start()
            mutator.start()
            for thread in threads:
                thread.join()
            mutator.join()

            all_instances = orig_instances + [
                mini_support.instance(i)
                for i in range(len(orig_instances), len(mini_support))
            ]
            acceptable: dict[str, set] = {sql: set() for sql in QUERIES}
            for prefix in range(len(churn) + 1):
                applied = churn[:prefix]
                retired = {
                    instance_id
                    for op in applied
                    if op.kind == "retire_instances"
                    for instance_id in op.instance_ids
                }
                adds = sum(1 for op in applied if op.kind == "add_instance")
                instances = all_instances[: len(orig_instances) + adds]
                oracle = delta_rebuild_oracle(
                    instances, retired, applied, pricing, QUERIES
                )
                for sql in QUERIES:
                    quote = oracle.quote(sql)
                    acceptable[sql].add((quote.price, quote.bundle))

            torn = [
                entry for entry in served
                if (entry[1], entry[2]) not in acceptable[entry[0]]
            ]
            assert not torn, torn[:5]

            final = delta_rebuild_oracle(
                all_instances, {2, 7}, churn, pricing, QUERIES
            )
            for sql in QUERIES:
                assert service.quote(sql).price == final.quote(sql).price
                assert service.quote(sql).bundle == final.quote(sql).bundle
            assert service.data_version == len(churn)
            assert service.stats().deltas["applied"] == len(churn)

    def test_concurrent_appliers_serialize_cleanly(
        self, mini_support, pricing, delta_rebuild_oracle
    ):
        """Two deltas applied from racing threads both land, atomically.

        The ops commute (different tables), so whichever order the lock
        grants, the final market must equal the rebuilt two-delta oracle.
        """
        import threading

        from repro.delta import PatchBase

        ops = [
            PatchBase("Country", 1, "Population", 99_000_000),
            PatchBase("City", 0, "Population", 123_456),
        ]
        orig_instances = list(mini_support.instances)
        service = ShardedPricingService(mini_support, num_shards=3, start=False)
        service.install_pricing(pricing)
        for sql in QUERIES:
            service.quote(sql)

        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def apply(op) -> None:
            barrier.wait()
            try:
                service.apply_delta(op)
            except Exception as exc:  # pragma: no cover - failure evidence
                errors.append(exc)

        threads = [threading.Thread(target=apply, args=(op,)) for op in ops]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors
        assert service.data_version == 2
        assert service.stats().deltas["applied"] == 2
        oracle = delta_rebuild_oracle(
            orig_instances, set(), ops, pricing, QUERIES
        )
        for sql in QUERIES:
            assert service.quote(sql).price == oracle.quote(sql).price
            assert service.quote(sql).bundle == oracle.quote(sql).bundle
