"""Limited-supply, envy-free pricing — the setting CIP was born in.

The paper adapts Cheung & Swamy's capacity item pricing to unlimited supply
(a query answer can be sold any number of times). The *original* setting —
each item exists in finitely many copies — matters for data markets too:
exclusivity tiers ("at most k buyers may learn this"), privacy budgets, and
revenue-managed early access all cap how many times a conflict-set item may
be revealed.

Semantics (envy-free pricing with single-minded buyers, per Guruswami et al.
and Cheung & Swamy): under an item pricing ``w``, every buyer whose bundle
is *strictly* affordable (``p(e) < v_e``) must receive it — otherwise the
buyer envies the allocation. Buyers that are exactly indifferent
(``p(e) = v_e``) may be rationed. A pricing is *feasible* when the forced
winners fit the capacities.

- :mod:`repro.limited.market` — capacities, allocation, envy-freeness;
- :mod:`repro.limited.welfare` — capacitated welfare LP and greedy integral
  allocation (the revenue upper bound and the social-optimum reference);
- :mod:`repro.limited.algorithms` — limited-supply pricing algorithms
  (capacity-LP duals with a price-scaling sweep, and feasible uniform
  pricing).
"""

from repro.limited.market import (
    AllocationReport,
    LimitedSupplyInstance,
    allocate,
    is_envy_free_feasible,
    priced_out_pricing,
)
from repro.limited.welfare import (
    WelfareResult,
    fractional_max_welfare,
    greedy_integral_welfare,
)
from repro.limited.algorithms import (
    LimitedCIP,
    LimitedUniformPricing,
)

__all__ = [
    "AllocationReport",
    "LimitedCIP",
    "LimitedSupplyInstance",
    "LimitedUniformPricing",
    "WelfareResult",
    "allocate",
    "fractional_max_welfare",
    "greedy_integral_welfare",
    "is_envy_free_feasible",
    "priced_out_pricing",
]
