"""Common interface for pricing algorithms."""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field

from repro.core.hypergraph import PricingInstance
from repro.core.pricing import PricingFunction
from repro.core.revenue import RevenueReport, compute_revenue


@dataclass
class PricingResult:
    """Everything an algorithm run produces."""

    algorithm: str
    pricing: PricingFunction
    report: RevenueReport
    runtime_seconds: float
    metadata: dict = field(default_factory=dict)

    @property
    def revenue(self) -> float:
        return self.report.revenue

    def normalized_revenue(self, reference: float) -> float:
        """Revenue divided by a reference upper bound."""
        return self.report.normalized(reference)


class PricingAlgorithm:
    """Base class for pricing algorithms.

    Subclasses implement :meth:`compute_pricing`; :meth:`run` wraps it with
    timing and revenue evaluation so all algorithms report uniformly.
    """

    #: Registry key and display name (e.g. ``"lpip"``).
    name = "abstract"

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        """Return the pricing function and free-form metadata."""
        raise NotImplementedError

    #: One-slot memo: (weakref to instance, result). Lets a suite that
    #: contains both an algorithm and an XOS combiner sharing that same
    #: algorithm object avoid solving the identical LPs twice per instance.
    #: A weak reference (checked by identity) rather than ``id()`` so a
    #: garbage-collected instance can never alias a fresh one.
    _memo: tuple["weakref.ref[PricingInstance]", PricingResult] | None = None

    def run(self, instance: PricingInstance) -> PricingResult:
        """Compute a pricing for ``instance`` and evaluate its revenue.

        The result for the most recent instance is cached per algorithm
        object (keyed by object identity), so re-running the same algorithm
        object on the same instance is free.
        """
        if self._memo is not None and self._memo[0]() is instance:
            return self._memo[1]
        start = time.perf_counter()
        pricing, metadata = self.compute_pricing(instance)
        elapsed = time.perf_counter() - start
        report = compute_revenue(pricing, instance)
        result = PricingResult(
            algorithm=self.name,
            pricing=pricing,
            report=report,
            runtime_seconds=elapsed,
            metadata=metadata,
        )
        self._memo = (weakref.ref(instance), result)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
