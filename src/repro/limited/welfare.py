"""Capacitated welfare maximization — reference bounds for limited supply.

Social welfare (sum of winners' valuations) upper-bounds revenue: every
served buyer pays at most their valuation. Two allocators:

- :func:`fractional_max_welfare` — the LP relaxation (the same LP family CIP
  solves, with true per-item capacities). Its value certifies an upper bound
  on any envy-free revenue.
- :func:`greedy_integral_welfare` — a fast integral baseline: admit bundles
  in decreasing valuation order while capacity remains. For single-minded
  buyers with bundle size at most ``k`` this is a ``k+1``-approximation to
  the integral optimum (standard greedy argument); here it serves as the
  social-optimum *lower* bound and a sanity check on the LP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import LPError
from repro.limited.market import LimitedSupplyInstance
from repro.lp import LinExpr, LPModel, Sense


@dataclass(frozen=True)
class WelfareResult:
    """Welfare value plus the allocation achieving it."""

    welfare: float
    allocation: np.ndarray  # per-edge quantity in [0, 1] (0/1 for integral)

    @property
    def num_allocated(self) -> int:
        return int(np.count_nonzero(self.allocation > 1e-9))


def fractional_max_welfare(market: LimitedSupplyInstance) -> WelfareResult:
    """Solve ``max sum v_e x_e  s.t.  sum_{e ∋ j} x_e <= c_j, 0 <= x <= 1``."""
    instance = market.instance
    nonempty = [index for index in range(instance.num_edges) if instance.edges[index]]
    allocation = np.zeros(instance.num_edges)
    if not nonempty:
        return WelfareResult(0.0, allocation)

    model = LPModel(name="limited-welfare", sense=Sense.MAXIMIZE)
    x = {
        index: model.add_variable(f"x{index}", lower=0.0, upper=1.0)
        for index in nonempty
    }
    model.set_objective(
        LinExpr.weighted_sum(
            (x[index], float(instance.valuations[index])) for index in nonempty
        )
    )
    incidence = instance.hypergraph.incidence
    for item in instance.hypergraph.used_items():
        members = [x[index] for index in incidence[item] if index in x]
        if members:
            model.add_constraint(
                LinExpr.sum_of(members) <= float(market.capacities[item]),
                name=f"cap-{item}",
            )
    try:
        solution = model.solve()
    except LPError:
        return WelfareResult(0.0, allocation)
    for index, variable in x.items():
        allocation[index] = min(1.0, max(0.0, solution.value(variable)))
    return WelfareResult(float(solution.objective), allocation)


def greedy_integral_welfare(market: LimitedSupplyInstance) -> WelfareResult:
    """Admit bundles by decreasing valuation while capacities allow."""
    instance = market.instance
    usage = np.zeros(market.num_items, dtype=np.int64)
    allocation = np.zeros(instance.num_edges)
    welfare = 0.0
    for index in instance.edges_by_valuation(descending=True):
        bundle = instance.edges[index]
        if not bundle or instance.valuations[index] <= 0:
            continue
        if all(usage[item] < market.capacities[item] for item in bundle):
            for item in bundle:
                usage[item] += 1
            allocation[index] = 1.0
            welfare += float(instance.valuations[index])
    return WelfareResult(welfare, allocation)
