"""Compile a parsed :class:`SelectStatement` into an executable plan.

The planner performs the three classical rewrites the workloads need:

1. **Predicate pushdown** — single-table conjuncts of the WHERE clause become
   filters directly above the corresponding scan.
2. **Hash-join selection** — equality conjuncts between columns of two
   different tables become :class:`~repro.db.plan.HashJoin` keys; the join
   order is chosen greedily so each new table is connected to the already
   joined set whenever possible (falling back to a cross join only when the
   query genuinely has no join predicate).
3. **Aggregate normalization** — the SELECT list is evaluated on top of an
   :class:`~repro.db.plan.Aggregate` node via a final projection, so group
   keys and aggregates can appear in any order.

Planning needs the database *schema catalog* (to resolve unqualified columns),
but the produced plan is reusable across any database with the same schemas —
exactly what conflict-set computation over thousands of support instances
requires.
"""

from __future__ import annotations

import dataclasses

from repro.db.database import Database
from repro.db.expr import ColumnRef, Comparison, Expr, conjoin, conjuncts
from repro.db.plan import (
    Aggregate,
    AggregateSpec,
    CrossJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    ProjectItem,
    Sort,
    SortKey,
    TableScan,
)
from repro.db.sql.ast import (
    AggregateCall,
    SelectAggregate,
    SelectColumn,
    SelectStar,
    SelectStatement,
)
from repro.exceptions import QueryError, UnsupportedSQLError


def plan_select(statement: SelectStatement, catalog: Database) -> PlanNode:
    """Build an executable plan for ``statement`` against ``catalog`` schemas."""
    return _Planner(statement, catalog).plan()


class _Planner:
    def __init__(self, statement: SelectStatement, catalog: Database):
        self.statement = statement
        self.catalog = catalog
        self.tables = statement.tables
        if not self.tables:
            raise QueryError("FROM clause must reference at least one table")
        seen_aliases: set[str] = set()
        for ref in self.tables:
            if ref.effective_alias in seen_aliases:
                raise QueryError(f"duplicate table alias {ref.effective_alias!r}")
            seen_aliases.add(ref.effective_alias)

    # ------------------------------------------------------------------
    # Column -> table resolution
    # ------------------------------------------------------------------

    def _tables_of(self, expr: Expr) -> set[str]:
        """Effective aliases of every table referenced by ``expr``."""
        aliases: set[str] = set()
        for qualifier, column in expr.referenced_columns():
            aliases.add(self._resolve_alias(qualifier, column))
        return aliases

    def _resolve_alias(self, qualifier: str | None, column: str) -> str:
        if qualifier is not None:
            for ref in self.tables:
                if ref.effective_alias == qualifier:
                    return qualifier
            raise QueryError(f"unknown table alias {qualifier!r}")
        owners = [
            ref.effective_alias
            for ref in self.tables
            if self.catalog.table(ref.table).schema.has_column(column)
        ]
        if not owners:
            raise QueryError(f"unknown column {column!r}")
        if len(owners) > 1:
            raise QueryError(f"ambiguous column {column!r} (in {sorted(owners)})")
        return owners[0]

    # ------------------------------------------------------------------
    # Plan assembly
    # ------------------------------------------------------------------

    def plan(self) -> PlanNode:
        self._validate_references()
        statement = self.statement
        if statement.having is not None and not (
            statement.has_aggregates or statement.group_by
        ):
            raise UnsupportedSQLError(
                "HAVING requires GROUP BY or aggregates in the SELECT list"
            )
        source = self._plan_joins()
        node = self._plan_select_list(source)
        if self.statement.distinct:
            node = Distinct(node)
        if self.statement.order_by:
            node = self._plan_order_by(source, node)
        if self.statement.limit is not None:
            node = Limit(node, self.statement.limit)
        return node

    def _plan_order_by(self, source: PlanNode, node: PlanNode) -> PlanNode:
        """Attach the Sort above the projection when its keys are output
        columns, or below it when they only exist in the input (SQL allows
        both, e.g. ``SELECT Name ... ORDER BY Population``)."""
        keys = [SortKey(item.expr, item.ascending) for item in self.statement.order_by]
        top_scope = node.output_scope(self.catalog)
        try:
            for key in keys:
                key.expr.bind(top_scope)
        except QueryError:
            if isinstance(node, Project) and node.child is source:
                inner = Sort(source, keys)
                return Project(inner, node.items)
            raise
        return Sort(node, keys)

    def _validate_references(self) -> None:
        """Resolve every column reference at plan time so bad queries fail
        fast instead of at execution (select list, group by, order by)."""
        for item in self.statement.items:
            if isinstance(item, SelectColumn):
                self._tables_of(item.expr)
            elif isinstance(item, SelectAggregate) and item.arg is not None:
                self._tables_of(item.arg)
            elif isinstance(item, SelectStar) and item.qualifier is not None:
                self._resolve_alias(item.qualifier.lower(), "")
        for expr in self.statement.group_by:
            self._tables_of(expr)
        # ORDER BY may legitimately reference projected output names; it is
        # validated later in _plan_order_by against both scopes.

    def _plan_joins(self) -> PlanNode:
        single_table: dict[str, list[Expr]] = {ref.effective_alias: [] for ref in self.tables}
        join_predicates: list[tuple[str, str, Expr, Expr]] = []  # (alias_a, alias_b, key_a, key_b)
        residual: list[Expr] = []

        for conjunct in conjuncts(self.statement.where):
            aliases = self._tables_of(conjunct)
            if len(aliases) <= 1:
                if aliases:
                    single_table[next(iter(aliases))].append(conjunct)
                else:
                    residual.append(conjunct)  # constant predicate
                continue
            equi = self._as_equi_join(conjunct)
            if equi is not None:
                join_predicates.append(equi)
            else:
                residual.append(conjunct)

        inputs: dict[str, PlanNode] = {}
        for ref in self.tables:
            node: PlanNode = TableScan(ref.table, ref.alias)
            pushed = single_table[ref.effective_alias]
            if pushed:
                node = Filter(node, conjoin(pushed))
            inputs[ref.effective_alias] = node

        # Greedy left-deep join order: start with the first FROM table and
        # repeatedly attach a table connected by at least one join predicate.
        remaining = [ref.effective_alias for ref in self.tables]
        joined = {remaining.pop(0)}
        node = inputs[self.tables[0].effective_alias]
        pending = list(join_predicates)

        while remaining:
            chosen: str | None = None
            for alias in remaining:
                if any(
                    (a in joined and b == alias) or (b in joined and a == alias)
                    for a, b, _, _ in pending
                ):
                    chosen = alias
                    break
            if chosen is None:
                chosen = remaining[0]  # no connecting predicate: cross join
            remaining.remove(chosen)

            left_keys: list[Expr] = []
            right_keys: list[Expr] = []
            still_pending: list[tuple[str, str, Expr, Expr]] = []
            for a, b, key_a, key_b in pending:
                if a in joined and b == chosen:
                    left_keys.append(key_a)
                    right_keys.append(key_b)
                elif b in joined and a == chosen:
                    left_keys.append(key_b)
                    right_keys.append(key_a)
                else:
                    still_pending.append((a, b, key_a, key_b))
            pending = still_pending

            right = inputs[chosen]
            if left_keys:
                node = HashJoin(node, right, left_keys, right_keys)
            else:
                node = CrossJoin(node, right)
            joined.add(chosen)

        # Join predicates between tables that ended up merged before both were
        # available (e.g. cycles) plus non-equi multi-table predicates.
        leftover = [Comparison("=", ka, kb) for _, _, ka, kb in pending]
        residual.extend(leftover)
        if residual:
            node = Filter(node, conjoin(residual))
        return node

    def _as_equi_join(self, conjunct: Expr) -> tuple[str, str, Expr, Expr] | None:
        """Recognize ``colA = colB`` across two distinct tables."""
        if not (isinstance(conjunct, Comparison) and conjunct.op == "="):
            return None
        left, right = conjunct.left, conjunct.right
        if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
            return None
        alias_left = self._resolve_alias(
            left.qualifier.lower() if left.qualifier else None, left.name
        )
        alias_right = self._resolve_alias(
            right.qualifier.lower() if right.qualifier else None, right.name
        )
        if alias_left == alias_right:
            return None
        # Rewrite refs with explicit qualifiers so binding is unambiguous.
        left_ref = ColumnRef(left.name, alias_left)
        right_ref = ColumnRef(right.name, alias_right)
        return alias_left, alias_right, left_ref, right_ref

    # ------------------------------------------------------------------
    # SELECT list
    # ------------------------------------------------------------------

    def _plan_select_list(self, node: PlanNode) -> PlanNode:
        statement = self.statement
        if statement.has_aggregates or statement.group_by:
            return self._plan_aggregate(node)

        items: list[ProjectItem] = []
        for item in statement.items:
            if isinstance(item, SelectStar):
                items.extend(self._expand_star(item))
            elif isinstance(item, SelectColumn):
                items.append(ProjectItem(item.expr, self._column_name(item)))
            else:  # pragma: no cover - has_aggregates above catches this
                raise UnsupportedSQLError("aggregate outside aggregate query")
        return Project(node, items)

    def _expand_star(self, star: SelectStar) -> list[ProjectItem]:
        items: list[ProjectItem] = []
        for ref in self.tables:
            alias = ref.effective_alias
            if star.qualifier is not None and star.qualifier.lower() != alias:
                continue
            schema = self.catalog.table(ref.table).schema
            for column in schema.column_names:
                items.append(ProjectItem(ColumnRef(column, alias), column))
        if not items:
            raise QueryError(f"alias {star.qualifier!r} in star expansion not found")
        return items

    def _plan_aggregate(self, node: PlanNode) -> PlanNode:
        statement = self.statement
        group_items = [
            ProjectItem(expr, f"_g{i}") for i, expr in enumerate(statement.group_by)
        ]
        aggregates: list[AggregateSpec] = []
        final_items: list[ProjectItem] = []
        alias_refs: dict[str, str] = {}  # select alias -> internal column

        for item in statement.items:
            if isinstance(item, SelectAggregate):
                name = f"_a{len(aggregates)}"
                aggregates.append(AggregateSpec(item.func, item.arg, name, item.distinct))
                final_items.append(
                    ProjectItem(ColumnRef(name), self._aggregate_name(item))
                )
                if item.alias:
                    alias_refs[item.alias.lower()] = name
            elif isinstance(item, SelectColumn):
                position = self._matching_group(item.expr, statement.group_by)
                final_items.append(
                    ProjectItem(ColumnRef(f"_g{position}"), self._column_name(item))
                )
                if item.alias:
                    alias_refs[item.alias.lower()] = f"_g{position}"
            else:
                raise UnsupportedSQLError("SELECT * is not valid in aggregate queries")

        # Rewrite HAVING before building the Aggregate: the rewriter may
        # append aggregates that HAVING computes but the SELECT list does not
        # show (they exist only below the final Project).
        predicate: Expr | None = None
        if statement.having is not None:
            predicate = _HavingRewriter(self, aggregates, alias_refs).rewrite(
                statement.having
            )
        result: PlanNode = Aggregate(node, group_items, aggregates)
        if predicate is not None:
            result = Filter(result, predicate)
        return Project(result, final_items)

    def _matching_group(
        self, expr: Expr, group_by: list[Expr], context: str = "SELECT item"
    ) -> int:
        for position, group_expr in enumerate(group_by):
            if _same_column(expr, group_expr):
                return position
        raise QueryError(
            f"non-aggregate {context} must appear in GROUP BY "
            f"(offending expression: {expr!r})"
        )

    def _column_name(self, item: SelectColumn) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ColumnRef):
            return item.expr.name
        return "expr"

    def _aggregate_name(self, item: SelectAggregate) -> str:
        if item.alias:
            return item.alias
        if item.arg is None:
            return f"{item.func}(*)"
        inner = (
            item.arg.display_name()
            if isinstance(item.arg, ColumnRef)
            else "expr"
        )
        prefix = "distinct " if item.distinct else ""
        return f"{item.func}({prefix}{inner})"


class _HavingRewriter:
    """Rewrite a HAVING predicate into the Aggregate node's output scope.

    - :class:`AggregateCall` placeholders become references to the matching
      :class:`AggregateSpec` column, appending a new spec when HAVING uses an
      aggregate the SELECT list does not (its column exists only below the
      final projection);
    - unqualified names matching a SELECT alias resolve to that item's
      internal column;
    - remaining column references must match a GROUP BY expression.
    """

    def __init__(
        self,
        planner: "_Planner",
        aggregates: list[AggregateSpec],
        alias_refs: dict[str, str],
    ):
        self.planner = planner
        self.aggregates = aggregates
        self.alias_refs = alias_refs

    def rewrite(self, expr: Expr) -> Expr:
        if isinstance(expr, AggregateCall):
            return ColumnRef(self._aggregate_column(expr))
        if isinstance(expr, ColumnRef):
            if expr.qualifier is None and expr.name.lower() in self.alias_refs:
                return ColumnRef(self.alias_refs[expr.name.lower()])
            position = self.planner._matching_group(
                expr, self.planner.statement.group_by, context="HAVING reference"
            )
            return ColumnRef(f"_g{position}")
        if not dataclasses.is_dataclass(expr):
            return expr
        # Structural recursion: rewrite every Expr-typed field, keep the rest.
        changes = {}
        for field in dataclasses.fields(expr):
            value = getattr(expr, field.name)
            if isinstance(value, Expr):
                rewritten = self.rewrite(value)
                if rewritten is not value:
                    changes[field.name] = rewritten
        return dataclasses.replace(expr, **changes) if changes else expr

    def _aggregate_column(self, call: AggregateCall) -> str:
        for spec in self.aggregates:
            if (
                spec.func == call.func
                and spec.distinct == call.distinct
                and _same_aggregate_arg(spec.arg, call.arg)
            ):
                return spec.name
        name = f"_a{len(self.aggregates)}"
        self.aggregates.append(
            AggregateSpec(call.func, call.arg, name, call.distinct)
        )
        return name


def _same_aggregate_arg(a: Expr | None, b: Expr | None) -> bool:
    """Whether two aggregate arguments denote the same input ('*' or expr)."""
    if a is None or b is None:
        return a is None and b is None
    return _same_column(a, b)


def _same_column(a: Expr, b: Expr) -> bool:
    """Whether two expressions denote the same column (ignoring case)."""
    if isinstance(a, ColumnRef) and isinstance(b, ColumnRef):
        if a.name.lower() != b.name.lower():
            return False
        if a.qualifier is None or b.qualifier is None:
            return True
        return a.qualifier.lower() == b.qualifier.lower()
    return a == b


def referenced_table_names(statement: SelectStatement) -> set[str]:
    """Lowercased base-table names referenced by a statement."""
    return {ref.table.lower() for ref in statement.tables}


__all__ = ["plan_select", "referenced_table_names"]
