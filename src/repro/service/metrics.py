"""Latency/throughput instrumentation for the pricing service.

The load generator (and anything else driving :class:`PricingService`) needs
per-request latency percentiles that survive concurrent recording. A
:class:`LatencyRecorder` is a thread-safe append-only series of seconds;
:meth:`LatencyRecorder.summary` reduces it to the usual serving numbers
(mean/p50/p95/p99/max) in milliseconds via one vectorized percentile call.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Request-latency percentiles, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }

    def __str__(self) -> str:
        return (
            f"n={self.count}  mean={self.mean_ms:.3f}ms  p50={self.p50_ms:.3f}ms  "
            f"p95={self.p95_ms:.3f}ms  p99={self.p99_ms:.3f}ms  "
            f"max={self.max_ms:.3f}ms"
        )


_EMPTY = LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)


class LatencyRecorder:
    """Thread-safe collection of request latencies (seconds in, ms out)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._seconds: list[float] = []

    def record(self, seconds: float) -> None:
        with self._lock:
            self._seconds.append(seconds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._seconds)

    def summary(self) -> LatencySummary:
        with self._lock:
            if not self._seconds:
                return _EMPTY
            millis = np.asarray(self._seconds, dtype=float) * 1e3
        p50, p95, p99 = np.percentile(millis, [50.0, 95.0, 99.0])
        return LatencySummary(
            count=len(millis),
            mean_ms=float(millis.mean()),
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            max_ms=float(millis.max()),
        )
