"""Repository-level pytest configuration.

Defines the ``slow`` marker used by the heavy benchmark parametrizations
(full LP sweeps). Slow tests are skipped by default so the tier-1 run
(``PYTHONPATH=src python -m pytest -x -q``) stays fast; run them with
``--runslow``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run benchmarks marked @pytest.mark.slow",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: heavy benchmark (full LP sweep); skipped unless --runslow is given",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow benchmark; pass --runslow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
