"""Unit tests for hypergraphs and pricing instances."""

import numpy as np
import pytest

from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.exceptions import PricingError


@pytest.fixture
def hypergraph():
    return Hypergraph(4, [{0, 1}, {1, 2}, {1}, set()], labels=["a", "b", "c", "d"])


class TestHypergraph:
    def test_num_edges(self, hypergraph):
        assert hypergraph.num_edges == 4

    def test_degrees(self, hypergraph):
        assert list(hypergraph.degrees) == [1, 3, 1, 0]

    def test_max_degree(self, hypergraph):
        assert hypergraph.max_degree == 3

    def test_max_degree_empty(self):
        assert Hypergraph(0, []).max_degree == 0

    def test_max_edge_size(self, hypergraph):
        assert hypergraph.max_edge_size == 2

    def test_avg_edge_size(self, hypergraph):
        assert hypergraph.avg_edge_size == pytest.approx(5 / 4)

    def test_avg_edge_size_no_edges(self):
        assert Hypergraph(3, []).avg_edge_size == 0.0

    def test_incidence(self, hypergraph):
        assert hypergraph.incidence[1] == [0, 1, 2]

    def test_edge_sizes(self, hypergraph):
        assert list(hypergraph.edge_sizes()) == [2, 2, 1, 0]

    def test_used_items(self, hypergraph):
        assert hypergraph.used_items() == [0, 1, 2]

    def test_edges_with_unique_item(self, hypergraph):
        # items 0 and 2 have degree 1; edges 0 and 1 contain them.
        assert hypergraph.edges_with_unique_item() == [0, 1]

    def test_out_of_range_item_rejected(self):
        with pytest.raises(PricingError, match="out of range"):
            Hypergraph(2, [{5}])

    def test_out_of_range_error_names_edge_position(self):
        with pytest.raises(PricingError, match="in edge 1"):
            Hypergraph(2, [{0}, {5}, {1}])

    def test_negative_num_items_rejected(self):
        with pytest.raises(PricingError):
            Hypergraph(-1, [])

    def test_label_count_checked(self):
        with pytest.raises(PricingError):
            Hypergraph(2, [{0}], labels=["a", "b"])

    def test_label_count_checked_before_item_validation(self):
        # Regression: labels used to be validated only after the edge loop,
        # so a generator input with a bad item raised "out of range" before
        # the label mismatch was ever reported, and the label error could
        # name a half-built count. Labels are now validated up front against
        # the fully materialized edge list.
        with pytest.raises(PricingError, match="1 labels for 2 edges"):
            Hypergraph(2, ({0}, {9}), labels=["a"])

    def test_label_count_checked_for_generator_edges(self):
        with pytest.raises(PricingError, match="3 labels for 2 edges"):
            Hypergraph(2, ({i} for i in range(2)), labels=["a", "b", "c"])

    def test_duplicate_edges_preserved_as_multi_edges(self):
        # Two buyers with identical conflict sets are two hyperedges.
        hypergraph = Hypergraph(3, [{0, 1}, {0, 1}, {2}])
        assert hypergraph.num_edges == 3
        assert list(hypergraph.degrees) == [2, 2, 1]
        assert hypergraph.incidence[0] == [0, 1]

    def test_stats(self, hypergraph):
        stats = hypergraph.stats()
        assert stats.num_edges == 4
        assert stats.max_degree == 3
        assert stats.num_empty_edges == 1
        assert stats.num_edges_with_unique_item == 2


class TestHypergraphCSR:
    def test_edge_member_matrix_roundtrip(self, hypergraph):
        indptr, items = hypergraph.edge_member_matrix()
        assert list(indptr) == [0, 2, 4, 5, 5]
        rebuilt = [
            frozenset(items[indptr[e]:indptr[e + 1]].tolist())
            for e in range(hypergraph.num_edges)
        ]
        assert rebuilt == hypergraph.edges

    def test_edge_members_sorted_within_edge(self):
        indptr, items = Hypergraph(5, [{4, 0, 2}, {3, 1}]).edge_member_matrix()
        assert items.tolist() == [0, 2, 4, 1, 3]

    def test_incidence_csr_matches_incidence_lists(self, hypergraph):
        indptr, edge_ids = hypergraph.incidence_csr()
        rows = [
            edge_ids[indptr[item]:indptr[item + 1]].tolist()
            for item in range(hypergraph.num_items)
        ]
        assert rows == hypergraph.incidence
        assert rows[1] == [0, 1, 2]  # ascending edge ids

    def test_incident_edges_view(self, hypergraph):
        assert hypergraph.incident_edges(1).tolist() == [0, 1, 2]
        assert hypergraph.incident_edges(3).tolist() == []

    def test_edge_submatrix_gathers_rows_in_order(self, hypergraph):
        import numpy as np

        sub_indptr, sub_items = hypergraph.edge_submatrix(np.array([2, 0]))
        assert list(sub_indptr) == [0, 1, 3]
        assert sub_items[0] == 1
        assert sorted(sub_items[1:3].tolist()) == [0, 1]

    def test_empty_hypergraph_csr(self):
        empty = Hypergraph(0, [])
        indptr, items = empty.edge_member_matrix()
        assert list(indptr) == [0]
        assert len(items) == 0
        item_indptr, edge_ids = empty.incidence_csr()
        assert list(item_indptr) == [0]
        assert len(edge_ids) == 0

    def test_degrees_from_csr_match_definition(self):
        import numpy as np

        rng = np.random.default_rng(7)
        edges = [
            set(rng.choice(10, size=rng.integers(0, 6), replace=False).tolist())
            for _ in range(20)
        ]
        hypergraph = Hypergraph(10, edges)
        expected = [sum(1 for edge in edges if item in edge) for item in range(10)]
        assert list(hypergraph.degrees) == expected


class TestPricingInstance:
    def test_valuation_length_checked(self, hypergraph):
        with pytest.raises(PricingError):
            PricingInstance(hypergraph, [1.0])

    def test_negative_valuation_rejected(self, hypergraph):
        with pytest.raises(PricingError):
            PricingInstance(hypergraph, [1, 2, -3, 4])

    def test_nan_valuation_rejected(self, hypergraph):
        with pytest.raises(PricingError):
            PricingInstance(hypergraph, [1, 2, np.nan, 4])

    def test_total_valuation(self, hypergraph):
        instance = PricingInstance(hypergraph, [1, 2, 3, 4])
        assert instance.total_valuation() == 10.0

    def test_edges_by_valuation(self, hypergraph):
        instance = PricingInstance(hypergraph, [1, 4, 2, 3])
        assert instance.edges_by_valuation() == [1, 3, 2, 0]
        assert instance.edges_by_valuation(descending=False) == [0, 2, 3, 1]

    def test_properties_delegate(self, hypergraph):
        instance = PricingInstance(hypergraph, [1, 2, 3, 4], "x")
        assert instance.num_items == 4
        assert instance.num_edges == 4
        assert instance.edges is hypergraph.edges
