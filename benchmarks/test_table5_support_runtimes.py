"""Table 5: runtimes vs support size, skewed workload (construction included).

Paper finding: running time grows with |S| for the item-pricing algorithms
and the hypergraph construction, while UBP stays flat.
"""

from repro.experiments.figures import support_runtime_table

from benchmarks.conftest import save_artifact
import pytest

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow


SIZES = (100, 200, 400, 800)


def test_table5_skewed_support_runtimes(benchmark):
    artifact = benchmark.pedantic(
        support_runtime_table,
        args=("skewed",),
        kwargs={"support_sizes": SIZES, "include_construction": True},
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    runtimes = artifact.data["runtimes"]

    smallest, largest = min(SIZES), max(SIZES)
    # LP-based algorithms and construction get slower as the support grows.
    assert runtimes[largest]["lpip"] >= runtimes[smallest]["lpip"] * 0.5
    assert runtimes[largest]["construction"] >= runtimes[smallest]["construction"]
    # UBP is essentially independent of |S|.
    assert runtimes[largest]["ubp"] < 1.0
