"""Sample-average approximation (SAA) for posted pricing.

The paper's algorithms assume exact valuations; a real market research
process yields *samples*. SAA bridges the two: draw ``N`` independent
valuation profiles from the Bayesian instance, stack them into one
deterministic pricing instance (each profile contributes a copy of every
edge), run any deterministic algorithm from
:mod:`repro.core.algorithms` on the stack, and deploy the resulting pricing
against the true distributions.

Stacking is the correct reduction: the realized revenue of a pricing ``p``
on the stacked instance equals ``N`` times the empirical-mean revenue of
``p`` over the sampled profiles, so the stack's optimal pricing is exactly
the empirical-expected-revenue maximizer within the algorithm's family. As
``N`` grows the empirical mean converges to the true expectation uniformly
over, e.g., uniform bundle prices, and the SAA price converges to the
distribution-optimal one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayesian.distributions import EmpiricalValuation
from repro.bayesian.posted import BayesianInstance, expected_revenue
from repro.core.algorithms.base import PricingAlgorithm
from repro.core.algorithms.ubp import UBP
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import PricingFunction
from repro.exceptions import PricingError


@dataclass
class SAAResult:
    """Outcome of a sample-average approximation run."""

    pricing: PricingFunction
    empirical_revenue: float  # per-profile average on the training samples
    true_expected_revenue: float  # scored against the real distributions
    num_samples: int

    @property
    def generalization_gap(self) -> float:
        """Empirical minus true expected revenue (overfitting measure)."""
        return self.empirical_revenue - self.true_expected_revenue


def stack_samples(
    instance: BayesianInstance,
    num_samples: int,
    rng: np.random.Generator | int | None = None,
) -> PricingInstance:
    """Stack ``num_samples`` sampled profiles into one pricing instance.

    The hypergraph repeats every edge once per profile; valuations are the
    independent draws. Items are shared across profiles — prices must be
    consistent across samples, which is the whole point.
    """
    if num_samples < 1:
        raise PricingError("num_samples must be at least 1")
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    edges: list[frozenset[int]] = []
    valuations: list[float] = []
    for _ in range(num_samples):
        for edge, dist in zip(instance.hypergraph.edges, instance.distributions):
            edges.append(edge)
            valuations.append(float(dist.sample(rng)))
    stacked = Hypergraph(instance.num_items, edges)
    return PricingInstance(stacked, valuations, name=f"{instance.name}:saa")


def saa_pricing(
    instance: BayesianInstance,
    algorithm: PricingAlgorithm,
    num_samples: int,
    rng: np.random.Generator | int | None = None,
) -> SAAResult:
    """Train ``algorithm`` on sampled profiles, score against the truth."""
    stacked = stack_samples(instance, num_samples, rng)
    result = algorithm.run(stacked)
    true_revenue = expected_revenue(result.pricing, instance)
    return SAAResult(
        pricing=result.pricing,
        empirical_revenue=result.revenue / num_samples,
        true_expected_revenue=true_revenue,
        num_samples=num_samples,
    )


def saa_uniform_bundle_price(
    instance: BayesianInstance,
    num_samples: int,
    rng: np.random.Generator | int | None = None,
) -> SAAResult:
    """SAA specialised to uniform bundle pricing (the common market default).

    Equivalent to posting the optimal price of the pooled empirical
    valuation distribution; exposed separately because the UBP sweep on the
    stacked instance is ``O(N m log(N m))`` and needs no LP machinery.
    """
    return saa_pricing(instance, UBP(), num_samples, rng)


def pooled_empirical_distribution(
    instance: BayesianInstance,
    num_samples: int,
    rng: np.random.Generator | int | None = None,
) -> EmpiricalValuation:
    """The empirical distribution of all sampled valuations pooled together.

    Useful as a diagnostic: for a uniform bundle price the SAA optimum is
    the optimal posted price of this pooled distribution scaled by ``m``.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    samples: list[float] = []
    for _ in range(num_samples):
        samples.extend(
            float(dist.sample(rng)) for dist in instance.distributions
        )
    return EmpiricalValuation(samples)
