"""Tests for the lower-bound constructions (Lemmas 2-4) and random graphs.

These also *verify the paper's theory empirically*: each construction must
exhibit the claimed revenue gap for the corresponding pricing family.
"""

import numpy as np
import pytest

from repro.core.algorithms import UBP, UIP, LPIP
from repro.workloads.synthetic import (
    harmonic_instance,
    laminar_instance,
    laminar_optimal_revenue,
    partition_instance,
    random_instance,
)
from repro.exceptions import WorkloadError


class TestHarmonic:
    """Lemma 2: uniform bundle pricing loses Omega(log m)."""

    def test_structure(self):
        instance = harmonic_instance(16)
        assert instance.num_edges == 16
        assert all(len(edge) == 1 for edge in instance.edges)

    def test_item_pricing_extracts_everything(self):
        instance = harmonic_instance(64)
        result = LPIP().run(instance)
        assert result.revenue == pytest.approx(instance.total_valuation(), rel=1e-6)

    def test_ubp_stuck_at_constant(self):
        # Any uniform price 1/c earns at most c * (1/c) = 1.
        instance = harmonic_instance(256)
        result = UBP().run(instance)
        assert result.revenue <= 1.0 + 1e-9

    def test_gap_grows_with_m(self):
        gaps = []
        for m in (16, 64, 256):
            instance = harmonic_instance(m)
            gaps.append(instance.total_valuation() / UBP().run(instance).revenue)
        assert gaps[0] < gaps[1] < gaps[2]

    def test_invalid_m(self):
        with pytest.raises(WorkloadError):
            harmonic_instance(0)


class TestPartition:
    """Lemma 3: item pricing loses Omega(log m) on unit valuations."""

    def test_structure(self):
        instance = partition_instance(8)
        # class sizes i = 1..8 with floor(8/i) customers each
        assert instance.num_edges == sum(8 // i for i in range(1, 9))
        assert np.all(instance.valuations == 1.0)

    def test_edges_within_class_are_disjoint(self):
        instance = partition_instance(6)
        # reconstruct classes by edge size
        by_size: dict[int, list] = {}
        for edge in instance.edges:
            by_size.setdefault(len(edge), []).append(edge)
        for size, edges in by_size.items():
            seen = set()
            for edge in edges:
                assert not (edge & seen)
                seen |= edge

    def test_ubp_extracts_everything(self):
        instance = partition_instance(16)
        result = UBP().run(instance)
        assert result.revenue == pytest.approx(instance.total_valuation())

    def test_item_pricing_gap_grows(self):
        # Optimal revenue Theta(n log n); item pricing O(n).
        ratios = []
        for n in (8, 32, 128):
            instance = partition_instance(n)
            revenue = LPIP(max_programs=1).run(instance).revenue
            ratios.append(instance.total_valuation() / max(revenue, 1e-9))
        assert ratios[-1] > ratios[0]


class TestLaminar:
    """Lemma 4: both families lose Omega(log m) on the laminar family."""

    def test_structure(self):
        instance = laminar_instance(3)
        assert instance.num_items == 8
        # depth 0: 1 set x 27 copies; total edges = sum over depths
        expected = sum(
            2**depth * max(1, round((2 / 3) ** depth * 27)) for depth in range(4)
        )
        assert instance.num_edges == expected

    def test_valuations_follow_depth(self):
        instance = laminar_instance(2)
        top = [v for e, v in zip(instance.edges, instance.valuations) if len(e) == 4]
        assert all(v == 1.0 for v in top)
        leaves = [v for e, v in zip(instance.edges, instance.valuations) if len(e) == 1]
        assert all(v == pytest.approx(0.5625) for v in leaves)

    def test_full_value_matches_formula(self):
        instance = laminar_instance(4)
        assert instance.total_valuation() == pytest.approx(laminar_optimal_revenue(4))

    def test_both_families_lose(self):
        instance = laminar_instance(5)
        total = instance.total_valuation()  # (t+1) * 3^t = 6 * 243 = 1458
        ubp = UBP().run(instance).revenue
        uip = UIP().run(instance).revenue
        # O(3^t) bound: with t=5, best-of-both should be well below total.
        assert max(ubp, uip) < 0.75 * total

    def test_gap_grows_with_t(self):
        ratios = []
        for t in (2, 4, 6):
            instance = laminar_instance(t, copy_cap=200)
            best = max(UBP().run(instance).revenue, UIP().run(instance).revenue)
            ratios.append(instance.total_valuation() / best)
        assert ratios[0] < ratios[-1]

    def test_copy_cap(self):
        capped = laminar_instance(4, copy_cap=2)
        uncapped = laminar_instance(4)
        assert capped.num_edges < uncapped.num_edges


class TestRandomInstance:
    def test_deterministic(self):
        a = random_instance(20, 10, rng=5)
        b = random_instance(20, 10, rng=5)
        assert a.edges == b.edges
        assert np.array_equal(a.valuations, b.valuations)

    def test_size_bounds_respected(self):
        instance = random_instance(30, 40, min_edge_size=2, max_edge_size=5, rng=1)
        assert all(2 <= len(edge) <= 5 for edge in instance.edges)

    def test_invalid_bounds(self):
        with pytest.raises(WorkloadError):
            random_instance(10, 5, min_edge_size=5, max_edge_size=2)
        with pytest.raises(WorkloadError):
            random_instance(3, 5, max_edge_size=10)
