"""Capacity item pricing (CIP) — Cheung & Swamy [2008].

The primal-dual scheme: for a per-item capacity ``k``, solve the fractional
welfare-maximization LP

    max  sum_e v_e x_e
    s.t. sum_{e contains j} x_e <= k     (one constraint per used item j)
         0 <= x_e <= 1

The optimal *duals* of the capacity constraints are item prices under which
(by complementary slackness) any item with a positive price is sold ``k``
times fractionally. Sweeping ``k`` geometrically — ``k = 1, (1+eps),
(1+eps)^2, ... , B`` — and keeping the realized-revenue-maximizing price
vector yields an ``O((1+eps) log B)`` approximation in theory.

Matching the paper's experimental setup, ``epsilon`` trades approximation for
running time (they use values between 0.2 and 4 depending on workload size).
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction
from repro.core.revenue import revenue_of_item_weights
from repro.exceptions import LPError, PricingError
from repro.lp import LinExpr, LPModel, Sense


def capacity_schedule(max_degree: int, epsilon: float) -> list[float]:
    """Geometric capacity sweep ``1, (1+eps), ... , >= B``."""
    if epsilon <= 0:
        raise PricingError("epsilon must be positive")
    if max_degree <= 0:
        return [1.0]
    capacities: list[float] = []
    capacity = 1.0
    while capacity < max_degree:
        capacities.append(capacity)
        capacity *= 1.0 + epsilon
    capacities.append(float(max_degree))
    return capacities


class CIP(PricingAlgorithm):
    """Capacity-constrained primal-dual item pricing."""

    name = "cip"

    def __init__(self, epsilon: float = 0.5):
        if epsilon <= 0:
            raise PricingError("epsilon must be positive")
        self.epsilon = epsilon

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        hypergraph = instance.hypergraph
        used_items = hypergraph.used_items()
        nonempty_edges = [
            index for index in range(instance.num_edges) if instance.edges[index]
        ]
        if not used_items or not nonempty_edges:
            return ItemPricing(np.zeros(instance.num_items)), {"num_programs": 0}

        best_weights = np.zeros(instance.num_items)
        best_revenue = 0.0
        best_capacity: float | None = None
        solved = 0

        for capacity in capacity_schedule(hypergraph.max_degree, self.epsilon):
            weights = self._solve_capacity(instance, used_items, nonempty_edges, capacity)
            if weights is None:
                continue
            solved += 1
            revenue = revenue_of_item_weights(weights, instance)
            if revenue > best_revenue:
                best_revenue = revenue
                best_weights = weights
                best_capacity = capacity

        return ItemPricing(best_weights), {
            "num_programs": solved,
            "best_capacity": best_capacity,
            "epsilon": self.epsilon,
        }

    def _solve_capacity(
        self,
        instance: PricingInstance,
        used_items: list[int],
        nonempty_edges: list[int],
        capacity: float,
    ) -> np.ndarray | None:
        model = LPModel(name=f"cip-k{capacity:g}", sense=Sense.MAXIMIZE)
        allocation = {
            index: model.add_variable(f"x{index}", lower=0.0, upper=1.0)
            for index in nonempty_edges
        }
        model.set_objective(
            LinExpr.weighted_sum(
                (allocation[index], float(instance.valuations[index]))
                for index in nonempty_edges
            )
        )
        incidence = instance.hypergraph.incidence
        for item in used_items:
            edges_with_item = [
                allocation[index] for index in incidence[item] if index in allocation
            ]
            if not edges_with_item:
                continue
            model.add_constraint(
                LinExpr.sum_of(edges_with_item) <= capacity,
                name=f"cap-{item}",
            )

        try:
            solution = model.solve()
        except LPError:
            return None

        weights = np.zeros(instance.num_items)
        for item in used_items:
            weights[item] = max(0.0, solution.dual(f"cap-{item}"))
        return weights
