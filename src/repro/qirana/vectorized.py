"""Vectorized conflict-set backend: batch evaluation over delta tensors.

For the plan shapes that dominate the paper's workloads — single-table
selection/projection queries and scalar aggregates — whether a support
instance changes the answer is a function of the *patched rows only*:

- **flat** (``[Sort] Project [Filter] TableScan``): the bag answer changes
  iff some patched row's (filter status, projected tuple) changes between
  its old and new version; instances patching several rows of the table are
  routed through an exact multiset comparison (a pairwise test would flag
  value swaps that leave the bag unchanged).
- **scalar aggregates** (``Project Aggregate([Filter] TableScan)`` without
  GROUP BY/HAVING/DISTINCT): per-aggregate deltas are accumulated per
  instance and compared against the base output. COUNT is always exact;
  SUM/AVG are vectorized only over INT columns, where float64 accumulation
  is exact (integers below 2**53), so the decision matches full
  re-execution bit for bit.

All candidates of a query are decided together: their patched rows are
gathered from the support set's :class:`~repro.support.tensor.TableDeltaTensor`
into old/new columnar batches of the query's referenced cells, and the
plan's expressions are evaluated once per batch via
:meth:`~repro.db.expr.Expr.eval_batch`. Queries whose plan shape is not
vectorizable fall back — per query, not per engine — to the incremental
backend.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.db.columnar import (
    BatchEvaluator,
    ColumnarBatch,
    ColumnVector,
    null_aware_neq,
    table_batch,
    truth,
)
from repro.db.expr import ColumnRef, Scope
from repro.db.plan import Aggregate, Filter, PlanNode, Project, Sort, TableScan
from repro.db.query import Query
from repro.db.schema import ColumnType
from repro.exceptions import QueryError
from repro.qirana.backends import (
    ConflictBackend,
    ConflictComputation,
    IncrementalBackend,
    register_backend,
)
from repro.support.generator import SupportSet


@dataclass
class _AggSpec:
    """One compiled scalar aggregate: COUNT(*) / COUNT(e) / SUM(c) / AVG(c)."""

    func: str
    arg_eval: BatchEvaluator | None  # None encodes COUNT(*)
    compared: bool  # referenced by the projection (changes are visible)


@dataclass
class _BatchQuery:
    """A query compiled for batch conflict evaluation."""

    table: str
    scan_scope: Scope
    needed_slots: list[int]
    filter_eval: BatchEvaluator | None
    project_evals: list[BatchEvaluator] | None  # flat plans
    agg_specs: list[_AggSpec] | None  # scalar-aggregate plans
    ordered: bool = False  # ORDER BY: the answer is a sequence, not a bag
    base_state: tuple | None = None  # lazily computed aggregate base state


def _unwrap_source(node: PlanNode) -> tuple[TableScan, Filter | None] | None:
    predicate: Filter | None = None
    if isinstance(node, Filter):
        predicate = node
        node = node.child
    if isinstance(node, TableScan):
        return node, predicate
    return None


def compile_batch_query(query: Query, base) -> _BatchQuery | None:
    """Compile ``query`` for batch evaluation, or ``None`` if unsupported."""
    node = query.plan
    # Orderedness from the plan (Sort) or declared on the query itself.
    ordered = query.ordered
    if isinstance(node, Sort):
        ordered = True
        node = node.child
    if not isinstance(node, Project):
        return None
    project = node
    node = node.child

    aggregate: Aggregate | None = None
    if isinstance(node, Aggregate):
        aggregate = node
        node = node.child

    source = _unwrap_source(node)
    if source is None:
        return None
    scan, predicate = source
    if not base.has_table(scan.table):
        return None
    scan_scope = scan.output_scope(base)
    schema = base.table(scan.table).schema

    try:
        filter_eval = (
            predicate.predicate.eval_batch(scan_scope) if predicate else None
        )

        if aggregate is None:
            project_evals = [item.expr.eval_batch(scan_scope) for item in project.items]
            agg_specs = None
        else:
            if aggregate.group_items:
                return None
            agg_specs = _compile_aggregates(aggregate, project, scan_scope, schema, base)
            if agg_specs is None:
                return None
            project_evals = None
    except QueryError:
        return None

    needed: set[int] = set()
    expressions = []
    if predicate is not None:
        expressions.append(predicate.predicate)
    if aggregate is None:
        expressions.extend(item.expr for item in project.items)
    else:
        expressions.extend(
            spec.arg for spec in aggregate.aggregates if spec.arg is not None
        )
    for expression in expressions:
        for qualifier, column in expression.referenced_columns():
            try:
                needed.add(scan_scope.resolve(qualifier, column))
            except QueryError:
                return None

    return _BatchQuery(
        table=scan.table.lower(),
        scan_scope=scan_scope,
        needed_slots=sorted(needed),
        filter_eval=filter_eval,
        project_evals=project_evals,
        agg_specs=agg_specs,
        ordered=ordered,
    )


def _compile_aggregates(
    aggregate: Aggregate, project: Project, scan_scope: Scope, schema, base
) -> list[_AggSpec] | None:
    """Compile scalar aggregates, or ``None`` when any is unsupported."""
    # The projection must be a simple column selection over the aggregate's
    # output row — then a change is visible iff a *projected* aggregate
    # changes. Arithmetic over aggregates would need scalar re-evaluation.
    output_scope = aggregate.output_scope(base)
    compared: set[int] = set()
    for item in project.items:
        if not isinstance(item.expr, ColumnRef):
            return None
        try:
            compared.add(output_scope.resolve(item.expr.qualifier, item.expr.name))
        except QueryError:
            return None

    specs: list[_AggSpec] = []
    for index, spec in enumerate(aggregate.aggregates):
        func = spec.func.lower()
        if spec.distinct or func not in ("count", "sum", "avg"):
            return None
        if spec.arg is None:
            if func != "count":
                return None
            arg_eval = None
        else:
            if func in ("sum", "avg"):
                # Restrict to INT columns: float64 accumulation of integers
                # is exact, so incremental deltas agree with re-execution.
                if not isinstance(spec.arg, ColumnRef):
                    return None
                slot = scan_scope.resolve(spec.arg.qualifier, spec.arg.name)
                if schema.columns[slot].dtype is not ColumnType.INT:
                    return None
            arg_eval = spec.arg.eval_batch(scan_scope)
        specs.append(_AggSpec(func, arg_eval, compared=index in compared))
    return specs


class VectorizedBackend(ConflictBackend):
    """Columnar batch backend with per-query fallback to ``incremental``."""

    name = "vectorized"

    def __init__(self, support: SupportSet, fallback: ConflictBackend | None = None):
        super().__init__(support)
        self._fallback = fallback or IncrementalBackend(support)
        # Keyed by query identity, not text: programmatic queries may share
        # text with different plans. The query object is pinned in the value
        # so its id() cannot be recycled while the cache lives.
        self._compiled: dict[int, tuple[Query, _BatchQuery | None]] = {}
        self._table_batches: dict[str, ColumnarBatch] = {}

    # -- compilation caches -------------------------------------------------

    #: Compiled-plan cache bound: compilation is cheap relative to conflict
    #: computation, so wholesale clearing at the cap keeps a long-lived
    #: market (a stream of unique ad-hoc queries) from growing unboundedly.
    MAX_COMPILED_PLANS = 4096

    def batch_plan(self, query: Query) -> _BatchQuery | None:
        cached = self._compiled.get(id(query))
        if cached is None:
            if len(self._compiled) >= self.MAX_COMPILED_PLANS:
                self._compiled.clear()
            plan = compile_batch_query(query, self.base)
            self._compiled[id(query)] = (query, plan)
            return plan
        return cached[1]

    def _table_batch(self, table: str) -> ColumnarBatch:
        batch = self._table_batches.get(table)
        if batch is None:
            batch = table_batch(self.base.table(table))
            self._table_batches[table] = batch
        return batch

    # -- the backend hook ---------------------------------------------------

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        setup_start = time.perf_counter()
        plan = self.batch_plan(query)
        if plan is None:
            return self._fallback.compute(query, candidates)
        if candidates is None:
            candidates = self.candidate_instances(query)
        setup = time.perf_counter() - setup_start

        start = time.perf_counter()
        try:
            conflicting, reexecuted = self._decide(plan, candidates, query)
        except QueryError:
            # Runtime type surprises (e.g. mixed-kind ordering comparisons)
            # are rare enough to pay full fallback for the whole query.
            return self._fallback.compute(query, candidates)
        elapsed = time.perf_counter() - start
        return ConflictComputation(
            conflict_set=frozenset(conflicting),
            num_candidates=len(candidates),
            num_pruned=len(self.support) - len(candidates),
            wall_time_seconds=elapsed,
            incremental=False,
            backend=self.name,
            setup_seconds=setup,
            num_reexecuted=reexecuted,
        )

    # -- batch decision -----------------------------------------------------

    def _decide(
        self, plan: _BatchQuery, candidates: list[int], query: Query
    ) -> tuple[list[int], int]:
        if not candidates:
            return [], 0
        tensor = self.support.delta_tensor(plan.table)
        candidate_array = np.asarray(candidates, dtype=np.int64)
        selected_mask = np.isin(tensor.pair_instance, candidate_array)
        selected = np.nonzero(selected_mask)[0]
        if len(selected) == 0:
            return [], 0
        instances = tensor.pair_instance[selected]
        rows = tensor.pair_row[selected]

        old_batch, new_batch = self._gather(plan, tensor, selected_mask, selected, rows)

        ones = np.ones(len(selected), dtype=bool)
        old_pass = truth(plan.filter_eval(old_batch)) if plan.filter_eval else ones
        new_pass = truth(plan.filter_eval(new_batch)) if plan.filter_eval else ones.copy()

        if plan.project_evals is not None:
            return self._decide_flat(
                plan, tensor, instances, old_batch, new_batch, old_pass, new_pass, query
            )
        conflicting = self._decide_aggregate(
            plan, candidate_array, instances, old_batch, new_batch, old_pass, new_pass
        )
        return conflicting, 0

    def _gather(self, plan, tensor, selected_mask, selected, rows):
        """Old/new columnar batches of the referenced cells of the pairs."""
        base = self._table_batch(plan.table)
        schema = self.base.table(plan.table).schema
        num_slots = plan.scan_scope.arity

        old_columns: list[ColumnVector | None] = [None] * num_slots
        new_columns: list[ColumnVector | None] = [None] * num_slots
        for slot in plan.needed_slots:
            old_columns[slot] = base.columns[slot].take(rows)
            new_columns[slot] = old_columns[slot].copy()

        inverse = np.full(tensor.num_pairs, -1, dtype=np.int64)
        inverse[selected] = np.arange(len(selected), dtype=np.int64)
        for column, patches in tensor.column_patches.items():
            slot = schema.column_index(column)
            vector = new_columns[slot]
            if vector is None:
                continue
            applicable = selected_mask[patches.positions]
            if not applicable.any():
                continue
            local = inverse[patches.positions[applicable]]
            values = patches.values[applicable]
            null = np.fromiter(
                (value is None for value in values), dtype=bool, count=len(values)
            )
            if vector.is_numeric:
                vector.values[local] = np.fromiter(
                    (
                        np.nan if value is None else float(value)
                        for value in values
                    ),
                    dtype=np.float64,
                    count=len(values),
                )
            else:
                vector.values[local] = values
            vector.null[local] = null

        num = len(selected)
        return (
            ColumnarBatch(plan.scan_scope, old_columns, num),
            ColumnarBatch(plan.scan_scope, new_columns, num),
        )

    def _decide_flat(
        self, plan, tensor, instances, old_batch, new_batch, old_pass, new_pass, query
    ) -> tuple[list[int], int]:
        old_projected = [evaluate(old_batch) for evaluate in plan.project_evals]
        new_projected = [evaluate(new_batch) for evaluate in plan.project_evals]

        changed = np.zeros(old_batch.num_rows, dtype=bool)
        for old_column, new_column in zip(old_projected, new_projected):
            changed |= null_aware_neq(old_column, new_column)
        pair_conflict = (old_pass != new_pass) | (old_pass & new_pass & changed)

        flagged = np.unique(instances[pair_conflict])
        conflicting: list[int] = []
        baseline = None
        reexecuted = 0
        for instance_id in flagged:
            if tensor.pair_counts[instance_id] <= 1:
                conflicting.append(int(instance_id))
                continue
            # Multi-row instance: a pairwise change can still leave the
            # answer bag unchanged (two rows swapping values). Compare the
            # exact contribution multisets, as the incremental checker does.
            # `instances` is sorted (tensor pairs are grouped by instance),
            # so the instance's slice is found by bisection, not a full scan.
            low = np.searchsorted(instances, instance_id, side="left")
            high = np.searchsorted(instances, instance_id, side="right")
            positions = np.arange(low, high)
            old_bag = _contribution_bag(old_projected, old_pass, positions)
            new_bag = _contribution_bag(new_projected, new_pass, positions)
            if old_bag != new_bag:
                # A bag change conflicts regardless of output order.
                conflicting.append(int(instance_id))
            elif plan.ordered:
                # ORDER BY answers are sequences: a bag-preserving multi-row
                # swap can still reorder a tie group. Re-execute to decide.
                if baseline is None:
                    baseline = query.run(self.base)
                reexecuted += 1
                if query.run(self.support.materialize(int(instance_id))) != baseline:
                    conflicting.append(int(instance_id))
        return conflicting, reexecuted

    def _decide_aggregate(
        self, plan, candidate_array, instances, old_batch, new_batch, old_pass, new_pass
    ) -> list[int]:
        base_state = self._aggregate_base_state(plan)
        compact = np.searchsorted(candidate_array, instances)
        num_candidates = len(candidate_array)

        changed_any = np.zeros(num_candidates, dtype=bool)
        for spec, (base_count, base_sum) in zip(plan.agg_specs, base_state):
            if not spec.compared:
                continue
            if spec.arg_eval is None:
                delta = new_pass.astype(np.float64) - old_pass.astype(np.float64)
                count_delta = np.bincount(
                    compact, weights=delta, minlength=num_candidates
                )
                changed_any |= count_delta != 0
                continue

            old_vector = spec.arg_eval(old_batch)
            new_vector = spec.arg_eval(new_batch)
            old_valid = old_pass & ~old_vector.null
            new_valid = new_pass & ~new_vector.null
            count_delta = np.bincount(
                compact,
                weights=new_valid.astype(np.float64) - old_valid.astype(np.float64),
                minlength=num_candidates,
            )
            if spec.func == "count":
                changed_any |= count_delta != 0
                continue

            sum_delta = np.bincount(
                compact,
                weights=np.where(new_valid, new_vector.values, 0.0)
                - np.where(old_valid, old_vector.values, 0.0),
                minlength=num_candidates,
            )
            new_count = base_count + count_delta
            presence_changed = (base_count > 0) != (new_count > 0)
            both_present = (base_count > 0) & (new_count > 0)
            if spec.func == "sum":
                changed_any |= presence_changed | (both_present & (sum_delta != 0))
            else:  # avg
                with np.errstate(invalid="ignore", divide="ignore"):
                    old_average = base_sum / base_count if base_count > 0 else np.nan
                    new_average = (base_sum + sum_delta) / np.where(
                        new_count > 0, new_count, 1
                    )
                changed_any |= presence_changed | (
                    both_present & (new_average != old_average)
                )
        return [int(candidate) for candidate in candidate_array[changed_any]]

    def _aggregate_base_state(self, plan: _BatchQuery) -> list[tuple[int, float]]:
        """Per aggregate: (non-NULL passing count, exact sum) over the base."""
        if plan.base_state is not None:
            return plan.base_state
        batch = self._table_batch(plan.table)
        passing = (
            truth(plan.filter_eval(batch))
            if plan.filter_eval
            else np.ones(batch.num_rows, dtype=bool)
        )
        state: list[tuple[int, float]] = []
        for spec in plan.agg_specs:
            if spec.arg_eval is None:
                state.append((int(passing.sum()), 0.0))
                continue
            vector = spec.arg_eval(batch)
            valid = passing & ~vector.null
            if spec.func == "count":
                total = 0.0  # COUNT needs no sum (and the column may be TEXT)
            else:
                total = float(vector.values[valid].sum()) if valid.any() else 0.0
            state.append((int(valid.sum()), total))
        plan.base_state = state
        return state


def _contribution_bag(projected, passing, positions) -> Counter:
    """Multiset of projected tuples contributed by the given pair positions."""
    bag: Counter = Counter()
    for position in positions:
        if not passing[position]:
            continue
        bag[tuple(column.value_at(position) for column in projected)] += 1
    return bag


class AutoBackend(ConflictBackend):
    """Per-query choice: batch evaluation when it can win, checkers otherwise.

    The batch path pays fixed costs (candidate gather, patch application)
    that only amortize across enough candidates; below the threshold the
    incremental checker's per-instance work is cheaper.
    """

    name = "auto"

    def __init__(self, support: SupportSet, min_batch_candidates: int = 48):
        super().__init__(support)
        self.min_batch_candidates = min_batch_candidates
        self._incremental = IncrementalBackend(support)
        self._vectorized = VectorizedBackend(support, fallback=self._incremental)

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        if self._vectorized.batch_plan(query) is None:
            return self._incremental.compute(query, candidates)
        if candidates is None:
            candidates = self.candidate_instances(query)
        if len(candidates) >= self.min_batch_candidates:
            return self._vectorized.compute(query, candidates)
        return self._incremental.compute(query, candidates)


register_backend(VectorizedBackend.name, VectorizedBackend)
register_backend(AutoBackend.name, AutoBackend)
