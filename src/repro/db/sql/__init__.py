"""SQL front-end: lexer, parser, and planner for the supported fragment.

Supported grammar (covers every query in the paper's four workloads)::

    SELECT [DISTINCT] select_item [, ...]
    FROM table [alias] [, table [alias]] ...
    [WHERE predicate]
    [GROUP BY column [, ...]]
    [ORDER BY column [ASC|DESC] [, ...]]
    [LIMIT n]

where ``select_item`` is ``*``, an expression with optional ``AS name``, or an
aggregate ``count|sum|avg|min|max ( [DISTINCT] expr | * )``, and ``predicate``
supports comparisons, ``AND``/``OR``/``NOT``, ``LIKE``, ``BETWEEN``, ``IN``,
``IS [NOT] NULL``, parentheses, and arithmetic.
"""

from repro.db.sql.parser import parse_select
from repro.db.sql.planner import plan_select

__all__ = ["parse_select", "plan_select"]
