"""History-aware pricing: returning buyers pay only for new information.

The refund framework from the paper's related work (Upadhyaya et al.): a
buyer who already owns bundles with union H pays f(H ∪ e) - f(H) for a new
bundle e. Cumulative payments telescope, so splitting a big query across
sessions costs exactly the same as buying it at once — combination arbitrage
is impossible even over time.

Run:  python examples/history_aware_pricing.py
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import LPIP
from repro.qirana import HistoryAwareLedger, QueryMarket
from repro.support import NeighborSampler
from repro.workloads.world import world_database


def main() -> None:
    database = world_database(scale=0.1)
    support = NeighborSampler(database, rng=np.random.default_rng(0)).generate(250)
    market = QueryMarket(support)

    queries = [
        "select Continent, count(Code) from Country group by Continent",
        "select count(Name) from Country where Continent = 'Asia'",
        "select Continent, max(Population) from Country group by Continent",
        "select * from Country where Continent='Europe' and Population > 5000000",
    ]
    valuations = [35.0, 12.0, 40.0, 70.0]
    market.optimize_pricing(queries, valuations, LPIP())
    ledger = HistoryAwareLedger(market.pricing)

    print("Alice explores the dataset over a week:\n")
    for sql in queries:
        quote = market.quote(sql)
        marginal = ledger.record_purchase("alice", quote.bundle)
        print(f"  fresh {marginal.fresh_price:7.2f}  "
              f"pays {marginal.marginal_price:7.2f}  "
              f"refund {marginal.refund:6.2f}  | {sql[:64]}")

    total = ledger.total_paid["alice"]
    one_shot = market.pricing.price(ledger.holdings("alice"))
    print(f"\ntotal paid over the week : {total:.2f}")
    print(f"one-shot price of the same information: {one_shot:.2f}")
    print(f"telescoping invariant holds: "
          f"{ledger.cumulative_price_consistent('alice')}")

    # A second buyer with no history pays full freight for the same query.
    bob = ledger.quote("bob", market.quote(queries[2]).bundle)
    print(f"\nbob (no history) pays {bob.marginal_price:.2f} for the query "
          f"alice re-buys for "
          f"{ledger.quote('alice', market.quote(queries[2]).bundle).marginal_price:.2f}")


if __name__ == "__main__":
    main()
