"""Ablation: our added heuristics vs the paper's six algorithms.

Three questions, none answered by the paper's figures:

1. How much revenue does exact coordinate ascent add on top of each seed
   (UIP, Layering), and how close does it get to LPIP at a fraction of the
   LP cost?
2. How much does the oblivious geometric grid lose to UIP's optimal sweep
   (theory says at most the grid ratio)?
3. On instances tiny enough for the exact oracles: how much revenue do the
   succinct families actually leave on the table?
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.algorithms import (
    CoordinateAscent,
    GeometricGridItemPricing,
    Layering,
    LPIP,
    UBP,
    UIP,
    exact_optimal_item_pricing,
    exact_optimal_subadditive_revenue,
)
from repro.core.bounds import sum_of_valuations
from repro.experiments.report import format_table
from repro.valuations import UniformValuations
from repro.workloads.synthetic import random_instance
from repro.workloads.world import world_workload

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



@pytest.fixture(scope="module")
def skewed_instance():
    workload = world_workload(scale=0.15, expanded=False)
    support = workload.support(size=300, seed=0, cells_per_instance=2)
    hypergraph = workload.hypergraph(support)
    return UniformValuations(100).instance(hypergraph, rng=1)


def test_ablation_ascent_seeds(benchmark, skewed_instance):
    """Coordinate ascent on top of each seed vs the LP algorithms."""
    instance = skewed_instance
    total = sum_of_valuations(instance)

    def sweep():
        rows = []
        for label, algorithm in (
            ("uip", UIP()),
            ("ascent(uip)", CoordinateAscent(seed="uip")),
            ("layering", Layering()),
            ("ascent(layering)", CoordinateAscent(seed=Layering())),
            ("ascent(zero)", CoordinateAscent(seed="zero")),
            ("lpip", LPIP()),
        ):
            start = time.perf_counter()
            result = algorithm.run(instance)
            elapsed = time.perf_counter() - start
            rows.append((label, result.revenue / total, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["seeded algorithm", "normalized revenue", "seconds"], rows
    ))
    revenue = {label: norm for label, norm, _ in rows}
    # Ascent must never hurt its seed...
    assert revenue["ascent(uip)"] >= revenue["uip"] - 1e-9
    assert revenue["ascent(layering)"] >= revenue["layering"] - 1e-9
    # ...and on this skewed instance it should recover most of LPIP's edge
    # over UIP without solving a single LP.
    assert revenue["ascent(uip)"] >= 0.7 * revenue["lpip"]


def test_ablation_grid_ratio(benchmark, skewed_instance):
    """Oblivious geometric grid vs UIP as the ratio varies."""
    instance = skewed_instance
    uip_revenue = UIP().run(instance).revenue

    def sweep():
        rows = []
        for ratio in (4.0, 2.0, 1.5, 1.1, 1.01):
            result = GeometricGridItemPricing(ratio=ratio).run(instance)
            rows.append(
                (
                    f"r={ratio:g}",
                    result.metadata["num_candidates"],
                    result.revenue / uip_revenue,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["grid", "candidates", "fraction of UIP revenue"], rows
    ))
    fractions = {label: fraction for label, _, fraction in rows}
    for ratio in (4.0, 2.0, 1.5, 1.1, 1.01):
        label = f"r={ratio:g}"
        assert fractions[label] >= 1.0 / ratio - 1e-9  # the bracket bound
        assert fractions[label] <= 1.0 + 1e-9  # UIP sweep is optimal
    # Finer grids should close the gap essentially completely.
    assert fractions["r=1.01"] >= 0.99


def test_ablation_succinctness_gap(benchmark):
    """Exact oracles: what do the succinct families leave on the table?

    Averaged over random tiny instances (the only scale where the exact
    optima are computable), reported as fractions of the exact subadditive
    optimum OPT.
    """
    rng = np.random.default_rng(11)
    instances = [
        random_instance(
            num_items=5,
            num_edges=6,
            min_edge_size=1,
            max_edge_size=4,
            valuation_high=50.0,
            rng=rng,
        )
        for _ in range(12)
    ]

    def measure():
        ratios = {"ubp": [], "uip": [], "lpip": [], "exact-item": []}
        for instance in instances:
            opt = exact_optimal_subadditive_revenue(instance)
            if opt <= 0:
                continue
            ratios["ubp"].append(UBP().run(instance).revenue / opt)
            ratios["uip"].append(UIP().run(instance).revenue / opt)
            ratios["lpip"].append(LPIP().run(instance).revenue / opt)
            _, item = exact_optimal_item_pricing(instance)
            ratios["exact-item"].append(item / opt)
        return {
            label: float(np.mean(values)) for label, values in ratios.items()
        }

    means = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [(label, value) for label, value in means.items()]
    print("\n" + format_table(["family", "mean fraction of exact OPT"], rows))
    # Exact item pricing sandwiches between the heuristics and OPT.
    assert means["exact-item"] <= 1.0 + 1e-6
    assert means["exact-item"] >= means["lpip"] - 1e-6
    assert means["exact-item"] >= means["uip"] - 1e-6
    # On generic tiny instances item pricing captures most of OPT.
    assert means["exact-item"] >= 0.8
