"""Conflict-set computation: from queries to hyperedges.

``CS(Q, D) = {D' in S : Q(D') != Q(D)}`` (Section 3.2). Naively that is one
query re-execution per support instance; this module prunes and batches it
down to array operations in the common case. Two sound observations about
delta-encoded neighbors drive the pruning:

1. **Table pruning** — an instance whose patches only touch tables the query
   never reads cannot change the answer.
2. **Column pruning** — stronger: the answer of our plans is a function of
   the *referenced (table, column)* cells only (support deltas never insert
   or delete rows), so an instance must patch at least one referenced column
   to conflict.

The surviving candidates are decided by a pluggable
:class:`~repro.qirana.backends.ConflictBackend`:

- ``naive`` re-runs the query per candidate (the definition),
- ``incremental`` applies the delta checkers of
  :mod:`repro.qirana.incremental`,
- ``vectorized`` decides all candidates of a query at once with columnar
  NumPy evaluation over a delta tensor (:mod:`repro.qirana.vectorized`),
- ``auto`` (the default) picks per query: batch evaluation when the plan is
  vectorizable and the candidate set is large enough to amortize it,
  incremental checkers otherwise.

:class:`ConflictSetEngine` is the stable facade: construct it over a support
set, then ask for conflict sets, diagnostics, or a whole workload's
hypergraph. All backends produce identical hyperedges; they differ only in
speed and in the diagnostics they report.
"""

from __future__ import annotations

from repro.core.hypergraph import Hypergraph
from repro.db.query import Query
from repro.qirana.backends import (
    ConflictBackend,
    ConflictComputation,
    available_backends,
    get_backend,
    referenced_columns,
)
from repro.support.generator import SupportSet

__all__ = [
    "ConflictComputation",
    "ConflictSetEngine",
    "available_backends",
    "referenced_columns",
]


class ConflictSetEngine:
    """Computes conflict sets (hyperedges) for queries over a support set.

    Parameters
    ----------
    support:
        The sampled support set ``S``.
    use_incremental:
        Legacy switch kept for compatibility: ``False`` forces the ``naive``
        backend (full re-execution per candidate).
    backend:
        Name of a registered conflict backend (``naive``, ``incremental``,
        ``vectorized``, ``auto``); overrides ``use_incremental``. Defaults
        to ``auto``.
    """

    def __init__(
        self,
        support: SupportSet,
        use_incremental: bool = True,
        backend: str | None = None,
        **backend_params,
    ):
        self.support = support
        self.base = support.base
        self.use_incremental = use_incremental
        if backend is None:
            backend = "auto" if use_incremental else "naive"
        self.backend_name = backend.lower()
        self._backend: ConflictBackend = get_backend(
            self.backend_name, support, **backend_params
        )
        #: Aggregate diagnostics across every compute() call, keyed by the
        #: backend that actually decided each query.
        self.diagnostics: dict[str, dict[str, float]] = {}

    @property
    def backend(self) -> ConflictBackend:
        return self._backend

    def candidate_instances(self, query: Query) -> list[int]:
        """Instance ids that could possibly conflict with ``query``."""
        return self._backend.candidate_instances(query)

    def compute(self, query: Query) -> ConflictComputation:
        """Conflict set with diagnostics."""
        computation = self._backend.compute(query)
        record = self.diagnostics.setdefault(
            computation.backend or self.backend_name,
            {
                "queries": 0,
                "candidates": 0,
                "pruned": 0,
                "reexecuted": 0,
                "wall_time_seconds": 0.0,
                "setup_seconds": 0.0,
                "fallback_reasons": {},
                "kernels": {},
            },
        )
        record["queries"] += 1
        record["candidates"] += computation.num_candidates
        record["pruned"] += computation.num_pruned
        record["reexecuted"] += computation.num_reexecuted
        record["wall_time_seconds"] += computation.wall_time_seconds
        record["setup_seconds"] += computation.setup_seconds
        if computation.fallback_reason is not None:
            reasons = record["fallback_reasons"]
            reasons[computation.fallback_reason] = (
                reasons.get(computation.fallback_reason, 0) + 1
            )
        if computation.kernel is not None:
            kernels = record["kernels"]
            kernels[computation.kernel] = kernels.get(computation.kernel, 0) + 1
        return computation

    def invalidate_tables(self, tables) -> None:
        """Drop backend caches derived from mutated base tables (delta path)."""
        self._backend.invalidate_tables(tables)

    def template_cache_stats(self) -> dict[str, float] | None:
        """Hit/miss/eviction counters of the backend's template cache.

        ``None`` for backends without one (naive, incremental). Reported
        alongside :attr:`diagnostics` by the benchmark harness and the
        pricing service, but kept out of ``diagnostics`` itself so that
        mapping stays homogeneous (one record per deciding backend).
        """
        template_stats = getattr(self._backend, "template_stats", None)
        if template_stats is None:
            return None
        return template_stats()

    def conflict_set(self, query: Query) -> frozenset[int]:
        """Just the hyperedge ``CS(Q, D)``."""
        return self.compute(query).conflict_set

    def build_hypergraph(self, queries: list[Query]) -> Hypergraph:
        """The pricing hypergraph of a workload: one hyperedge per query.

        Batch-friendly: the backend's ``prepare`` hook warms the delta
        tensors (one per table, hence one per join side) and columnar base
        tables up front, so the construction cost is amortized across the
        workload instead of being paid by the first query of each shape.
        """
        self._backend.prepare(queries)
        edges = [self.conflict_set(query) for query in queries]
        labels = [query.text for query in queries]
        return Hypergraph(len(self.support), edges, labels=labels)
