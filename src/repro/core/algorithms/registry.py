"""Registry mapping algorithm names to factories.

The experiment harness and CLI refer to algorithms by name; new algorithms
can be registered by downstream code via :func:`register_algorithm`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.algorithms.cip import CIP
from repro.core.algorithms.exact import ExactItemPricing, ExactSubadditivePricing
from repro.core.algorithms.layering import Layering
from repro.core.algorithms.local_search import CoordinateAscent
from repro.core.algorithms.lpip import LPIP
from repro.core.algorithms.powers import GeometricGridItemPricing
from repro.core.algorithms.ubp import UBP, UBPRefine
from repro.core.algorithms.uip import UIP
from repro.core.algorithms.xos import XOSCombiner
from repro.exceptions import PricingError

_REGISTRY: dict[str, Callable[..., PricingAlgorithm]] = {}


def register_algorithm(name: str, factory: Callable[..., PricingAlgorithm]) -> None:
    """Register ``factory`` under ``name`` (lowercase)."""
    key = name.lower()
    if key in _REGISTRY:
        raise PricingError(f"algorithm {name!r} is already registered")
    _REGISTRY[key] = factory


def get_algorithm(name: str, **params) -> PricingAlgorithm:
    """Instantiate a registered algorithm by name with optional parameters."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PricingError(f"unknown algorithm {name!r} (known: {known})") from None
    return factory(**params)


def available_algorithms() -> list[str]:
    """Sorted names of every registered algorithm."""
    return sorted(_REGISTRY)


def default_algorithm_suite(
    lpip_max_programs: int | None = None,
    cip_epsilon: float = 0.5,
) -> list[PricingAlgorithm]:
    """The six algorithms evaluated in the paper's figures, in plot order.

    The XOS combiner shares the LPIP/CIP *objects*, so running the whole
    suite on one instance solves each component's LPs exactly once (the
    base-class one-slot memo serves the combiner's re-run).
    """
    lpip = LPIP(max_programs=lpip_max_programs)
    cip = CIP(epsilon=cip_epsilon)
    return [
        lpip,
        UBP(),
        cip,
        UIP(),
        Layering(),
        XOSCombiner([lpip, cip]),
    ]


register_algorithm("ubp", UBP)
register_algorithm("ubp+lp", UBPRefine)
register_algorithm("uip", UIP)
register_algorithm("lpip", LPIP)
register_algorithm("cip", CIP)
register_algorithm("layering", Layering)
register_algorithm("xos", XOSCombiner)
register_algorithm("grid-uip", GeometricGridItemPricing)
register_algorithm("ascent", CoordinateAscent)
register_algorithm("exact-item", ExactItemPricing)
register_algorithm("exact-subadditive", ExactSubadditivePricing)
