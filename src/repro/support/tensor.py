"""NumPy delta tensors over a support set.

The batch conflict engine decides all candidates of a query in a few array
operations. Its input is the *delta tensor* of one table: every
``(instance, row)`` pair some support instance patches, in instance order,
plus the per-column patch assignments. Building it costs one pass over the
support set's deltas and is cached on the :class:`SupportSet`, so the cost is
amortized over an entire workload (hundreds to thousands of queries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ColumnPatches:
    """All patches of one column: positions into the pair arrays + values."""

    positions: np.ndarray  #: int64 indices into pair_instance/pair_row
    values: np.ndarray  #: object array of replacement values (None = NULL)


@dataclass(frozen=True)
class TableDeltaTensor:
    """Columnar view of every patch a support set applies to one table.

    ``pair_instance``/``pair_row`` enumerate the distinct ``(instance, row)``
    pairs that are patched, sorted by instance id (instances are consecutive
    by construction, so the arrays are grouped). ``pair_counts[i]`` is the
    number of patched rows instance ``i`` has on this table — the batch
    engine uses it to route multi-row instances through the exact multiset
    comparison instead of the pairwise fast path.
    """

    table: str
    num_instances: int
    pair_instance: np.ndarray  #: int64[P]
    pair_row: np.ndarray  #: int64[P]
    pair_counts: np.ndarray  #: int64[num_instances]
    column_patches: dict[str, ColumnPatches]  #: lowercased column -> patches
    touched_instances: np.ndarray  #: int64, sorted unique instance ids with pairs

    @property
    def num_pairs(self) -> int:
        return int(len(self.pair_instance))

    def select_pairs(self, candidates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Pairs belonging to the given (sorted) candidate instance ids.

        Returns ``(mask, positions)``: a boolean mask over the pair arrays
        plus the selected positions — the entry point of every batch kernel,
        and, for join plans, evaluated once per join side.
        """
        mask = np.isin(self.pair_instance, candidates)
        return mask, np.nonzero(mask)[0]


def build_delta_tensor(support, table: str) -> TableDeltaTensor:
    """The delta tensor of ``table`` for every instance of ``support``."""
    key = table.lower()
    pair_instances: list[int] = []
    pair_rows: list[int] = []
    per_column: dict[str, tuple[list[int], list[object]]] = {}

    for instance in support:
        first_pair: dict[int, int] = {}
        for delta in instance.deltas:
            if delta.table.lower() != key:
                continue
            position = first_pair.get(delta.row_index)
            if position is None:
                position = len(pair_instances)
                first_pair[delta.row_index] = position
                pair_instances.append(instance.instance_id)
                pair_rows.append(delta.row_index)
            column = delta.column.lower()
            positions, values = per_column.setdefault(column, ([], []))
            positions.append(position)
            values.append(delta.value)

    column_patches = {}
    for column, (positions, values) in per_column.items():
        value_array = np.empty(len(values), dtype=object)
        value_array[:] = values
        column_patches[column] = ColumnPatches(
            np.asarray(positions, dtype=np.int64), value_array
        )

    pair_instance = np.asarray(pair_instances, dtype=np.int64)
    pair_counts = np.bincount(pair_instance, minlength=len(support)).astype(np.int64)
    return TableDeltaTensor(
        table=key,
        num_instances=len(support),
        pair_instance=pair_instance,
        pair_row=np.asarray(pair_rows, dtype=np.int64),
        pair_counts=pair_counts,
        column_patches=column_patches,
        touched_instances=np.unique(pair_instance),
    )
