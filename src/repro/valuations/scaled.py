"""Size-correlated ("scaling") valuations (Figures 5b / 6b).

The paper correlates each valuation with its hyperedge size: larger conflict
sets reveal more information and are worth more. Empty edges get valuation 0
under the exponential model (mean 0) and ``max(0, N(0, sigma^2))`` under the
normal model, matching ``|e|^k = 0``.
"""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph import Hypergraph
from repro.exceptions import PricingError
from repro.valuations.base import ValuationModel, clip_non_negative


class ExponentialScaledValuations(ValuationModel):
    """``v_e ~ Exponential(mean = |e|^k)``."""

    def __init__(self, k: float = 1.0):
        if not np.isfinite(k):
            raise PricingError("exponent k must be finite")
        self.k = float(k)
        self.name = f"exp(|e|^{k:g})"

    def generate(self, hypergraph: Hypergraph, rng: np.random.Generator) -> np.ndarray:
        sizes = hypergraph.edge_sizes().astype(np.float64)
        means = np.power(sizes, self.k, where=sizes > 0, out=np.zeros_like(sizes))
        return rng.exponential(1.0, size=hypergraph.num_edges) * means


class NormalScaledValuations(ValuationModel):
    """``v_e ~ max(0, Normal(mu = |e|^k, sigma^2))`` with sigma^2 = 10."""

    def __init__(self, k: float = 1.0, variance: float = 10.0):
        if variance <= 0:
            raise PricingError("variance must be positive")
        self.k = float(k)
        self.variance = float(variance)
        self.name = f"normal(|e|^{k:g},s2={variance:g})"

    def generate(self, hypergraph: Hypergraph, rng: np.random.Generator) -> np.ndarray:
        sizes = hypergraph.edge_sizes().astype(np.float64)
        means = np.power(sizes, self.k, where=sizes > 0, out=np.zeros_like(sizes))
        draws = rng.normal(means, np.sqrt(self.variance))
        return clip_non_negative(draws)
