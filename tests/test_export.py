"""Tests for CSV export of experiment artifacts."""

import csv

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.export import (
    export_histogram_csv,
    export_runtimes_csv,
    export_series_csv,
)
from repro.experiments.figures import FigureData


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestSeriesExport:
    def test_roundtrip(self, tmp_path):
        artifact = FigureData(
            "figX", "t", "",
            data={"series": {"lpip": [0.9, 0.8], "ubp": [0.5, 0.4]},
                  "parameters": ["k=1", "k=2"]},
        )
        path = export_series_csv(artifact, tmp_path / "s.csv")
        rows = read_csv(path)
        assert rows[0] == ["series", "k=1", "k=2"]
        assert rows[1][0] == "lpip"
        assert float(rows[1][1]) == pytest.approx(0.9)

    def test_missing_parameters_defaults_to_indices(self, tmp_path):
        artifact = FigureData("figX", "t", "", data={"series": {"a": [1.0]}})
        rows = read_csv(export_series_csv(artifact, tmp_path / "s.csv"))
        assert rows[0] == ["series", "0"]

    def test_no_series_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            export_series_csv(FigureData("f", "t", ""), tmp_path / "s.csv")

    def test_inconsistent_lengths_raise(self, tmp_path):
        artifact = FigureData(
            "figX", "t", "", data={"series": {"a": [1.0], "b": [1.0, 2.0]}}
        )
        with pytest.raises(ExperimentError):
            export_series_csv(artifact, tmp_path / "s.csv")


class TestRuntimeExport:
    def test_roundtrip(self, tmp_path):
        artifact = FigureData(
            "table4", "t", "",
            data={"runtimes": {"skewed": {"ubp": 0.1, "lpip": 2.0}}},
        )
        rows = read_csv(export_runtimes_csv(artifact, tmp_path / "r.csv"))
        assert rows[0] == ["row", "lpip", "ubp"]
        assert rows[1][0] == "skewed"

    def test_missing_data(self, tmp_path):
        with pytest.raises(ExperimentError):
            export_runtimes_csv(FigureData("f", "t", ""), tmp_path / "r.csv")


class TestHistogramExport:
    def test_roundtrip(self, tmp_path):
        artifact = FigureData(
            "fig4", "t", "",
            data={
                "sizes": np.array([1, 2, 3]),
                "counts": np.array([2, 1]),
                "bin_edges": np.array([0.0, 1.5, 3.0]),
            },
        )
        rows = read_csv(export_histogram_csv(artifact, tmp_path / "h.csv"))
        assert rows[0] == ["bin_low", "bin_high", "count"]
        assert rows[1] == ["0.0", "1.5", "2"]

    def test_missing_data(self, tmp_path):
        with pytest.raises(ExperimentError):
            export_histogram_csv(FigureData("f", "t", ""), tmp_path / "h.csv")
