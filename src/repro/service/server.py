"""``PricingService``: a concurrent, caching, micro-batching pricing front-end.

:class:`~repro.qirana.broker.QueryMarket` is a single-threaded facade — the
right tool for offline pricing optimization, but not for serving a stream of
concurrent buyers: every ``quote`` re-plans its text, every distinct text
pays a full conflict-set computation, and nothing guards the engine's caches
against interleaved mutation. :class:`PricingService` is the serving tier on
top of it:

- **Canonical quote cache** — requests are planned once (a bounded raw-text
  plan memo) and fingerprinted at the plan level
  (:mod:`repro.service.canonical`), so whitespace/alias variants of one
  query hit a single bounded LRU entry. Cache hits return without touching
  the market at all.
- **Micro-batched quoting** — cache misses are queued and coalesced by a
  :class:`~repro.service.batching.MicroBatcher` into ``quote_batch`` calls
  (flushed when the batch reaches ``max_batch_size`` or the oldest request
  has waited ``max_batch_delay`` seconds), amortizing the engine's
  delta-tensor and columnar setup across concurrent traffic exactly as the
  backend ``prepare`` hook intends.
- **Admission control** — the miss queue is bounded (``max_queue_depth``):
  under open-loop overload new misses are shed with a typed
  :class:`~repro.exceptions.ServiceOverloadError` instead of queueing
  unboundedly, and accepted/shed counters surface in :meth:`stats`.
- **Serialized market access** — one re-entrant lock guards the market, the
  transaction ledger, and the history-aware ledger, so concurrent quotes,
  purchases, and pricing installs interleave safely.
- **Per-buyer sessions** — :meth:`PricingService.session` wires a buyer to
  the service's :class:`~repro.qirana.history.HistoryAwareLedger` for
  marginal (history-aware) pricing and purchasing.
- **Warm-start snapshot/restore** — :meth:`snapshot` persists pricing,
  known bundles, the transaction ledger, per-buyer history, *and the
  canonical quote cache* through :mod:`repro.qirana.persistence`;
  :meth:`restore` rehydrates a fresh service over the same support set with
  its previous working set already cached, so the first requests after a
  restart are hits, not conflict-set recomputations.

Installing a new pricing bumps the quote cache's generation, so stale prices
are never served after a re-optimization.

For a tier that partitions the support set across several markets and
schedulers, see :class:`repro.service.sharding.ShardedPricingService`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import threading

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.pricing import PricingFunction
from repro.db.database import Database
from repro.db.query import Query
from repro.delta.log import DeltaLog, DeltaRecord
from repro.delta.types import DeltaOp, delta_from_dict
from repro.exceptions import DeltaValidationError, PricingError, SnapshotError
from repro.qirana.broker import (
    MarketDeltaReport,
    PriceQuote,
    QueryMarket,
    Transaction,
)
from repro.qirana.history import HistoryAwareLedger, MarginalQuote
from repro.qirana.persistence import QuoteEntry, load_market_state, save_market_state
from repro.service.batching import BatcherStats, BatchRequest, MicroBatcher
from repro.service.cache import CacheStats, LRUCache, QuoteCache
from repro.service.canonical import canonical_key
from repro.support.generator import SupportSet


@dataclass(frozen=True)
class ServiceStats:
    """A snapshot of the service's caches, batching, and ledger counters."""

    quotes: CacheStats
    plans: CacheStats
    batcher: BatcherStats
    transactions: int
    #: Counters of the conflict engine's compiled-template cache (shape
    #: fingerprint -> batch plan); ``None`` when the backend has no cache.
    templates: dict | None = None
    #: Delta-log lifecycle counters (accepted/applied/cancelled/rejected).
    deltas: dict | None = None
    #: High-water data version of the applied delta log.
    data_version: int = 0

    @property
    def batches(self) -> int:
        return self.batcher.batches

    @property
    def batched_requests(self) -> int:
        return self.batcher.batched_requests

    @property
    def max_batch_size(self) -> int:
        return self.batcher.max_batch_size

    @property
    def mean_batch_size(self) -> float:
        return self.batcher.mean_batch_size

    @property
    def accepted(self) -> int:
        return self.batcher.accepted

    @property
    def shed(self) -> int:
        return self.batcher.shed

    def as_dict(self) -> dict:
        return {
            "quote_cache": self.quotes.as_dict(),
            "plan_memo": self.plans.as_dict(),
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
            "accepted": self.accepted,
            "shed": self.shed,
            "shed_rate": self.batcher.shed_rate,
            "transactions": self.transactions,
            "template_cache": self.templates,
            "deltas": self.deltas,
            "data_version": self.data_version,
        }


class CanonicalServingMixin:
    """The canonicalization + buyer surface both serving tiers share.

    :class:`PricingService` and
    :class:`~repro.service.sharding.ShardedPricingService` differ in how a
    planned query becomes a priced quote (:meth:`_quote_planned`) and how
    raw text is planned (:meth:`_plan`), but canonical fingerprinting, the
    plan memo, quote re-stamping, purchases, and history-aware sessions are
    identical — and :class:`BuyerSession` already depends on this exact
    protocol (``_canonical``, ``_quote_planned``, ``_market_lock``,
    ``_ledger``, ``base``, ``_append_transaction``).

    Hosts must provide: ``base``, ``_plans``, ``_market_lock``, ``_ledger``,
    ``_plan(text) -> Query``, ``_quote_planned(planned, key) -> PriceQuote``,
    and ``_append_transaction(transaction)``.
    """

    def _plan(self, text: str) -> Query:
        raise NotImplementedError

    def _canonical(self, query: Query | str) -> tuple[Query, str]:
        """(planned query, canonical fingerprint), memoized by raw text."""
        if isinstance(query, Query):
            return query, canonical_key(query, self.base)
        memo = self._plans.get(query)
        if memo is None:
            planned = self._plan(query)
            memo = (planned, canonical_key(planned, self.base))
            self._plans.put(query, memo)
        return memo

    @staticmethod
    def _restamp(quote: PriceQuote, planned: Query) -> PriceQuote:
        """A cached quote re-labeled with this request's text."""
        if quote.query_text == planned.text:
            return quote
        return PriceQuote(planned.text, quote.price, quote.bundle)

    def quote(self, query: Query | str) -> PriceQuote:
        """Price a query: canonical-cache hit, or batched/scattered miss."""
        planned, key = self._canonical(query)
        return self._quote_planned(planned, key)

    def purchase(
        self,
        query: Query | str,
        buyer: str,
        valuation: float | None = None,
    ) -> tuple[object, PriceQuote]:
        """Quote-then-sell at the fresh (history-free) price.

        Mirrors :meth:`QueryMarket.purchase`: a buyer with a stated
        ``valuation`` walks away when the price exceeds it. The answer is
        computed and the sale appended to the ledger under the market lock,
        so concurrent purchases never lose transactions.
        """
        planned, key = self._canonical(query)
        quote = self._quote_planned(planned, key)
        if valuation is not None and quote.price > valuation:
            return None, quote
        with self._market_lock:
            answer = planned.run(self.base)
            self._append_transaction(
                Transaction(buyer, quote.query_text, quote.price)
            )
        return answer, quote

    def session(self, buyer: str) -> "BuyerSession":
        """A per-buyer session with history-aware (marginal) pricing."""
        return BuyerSession(self, buyer)


class PricingService(CanonicalServingMixin):
    """Thread-safe serving facade over a :class:`QueryMarket`.

    Parameters
    ----------
    market:
        The wrapped market, or a :class:`SupportSet` to build one over.
    max_batch_size:
        Flush the micro-batch as soon as this many misses are queued.
    max_batch_delay:
        Flush no later than this many seconds after the *oldest* queued
        request arrived. Under a burst the scheduler is already busy
        quoting, so follow-up batches flush immediately; the delay is only
        ever paid by an isolated miss.
    max_queue_depth:
        Bound on queued-but-unflushed misses; submissions past the bound
        are shed with :class:`~repro.exceptions.ServiceOverloadError`.
        ``None`` disables admission control.
    cache_capacity / plan_memo_capacity:
        Bounds for the canonical quote cache and the raw-text plan memo.
    start:
        When ``False`` the scheduler thread is not started and misses are
        quoted synchronously in the calling thread (still batched per
        call, still cached) — deterministic single-threaded mode for tests
        and offline scripts.
    """

    def __init__(
        self,
        market: QueryMarket | SupportSet,
        *,
        max_batch_size: int = 64,
        max_batch_delay: float = 0.001,
        max_queue_depth: int | None = 1024,
        cache_capacity: int = 4096,
        plan_memo_capacity: int = 8192,
        start: bool = True,
    ):
        if isinstance(market, SupportSet):
            market = QueryMarket(market)
        self.market = market
        self._market_lock = threading.RLock()
        self._quotes = QuoteCache(cache_capacity)
        self._plans = LRUCache(plan_memo_capacity)
        self._ledger = HistoryAwareLedger(market.pricing)
        self._delta_log = DeltaLog()
        self._batcher = MicroBatcher(
            self._execute,
            max_batch_size=max_batch_size,
            max_batch_delay=max_batch_delay,
            max_queue_depth=max_queue_depth,
            name="pricing-service-batcher",
            start=start,
        )

    @property
    def max_batch_size(self) -> int:
        return self._batcher.max_batch_size

    @property
    def max_batch_delay(self) -> float:
        return self._batcher.max_batch_delay

    @property
    def max_queue_depth(self) -> int | None:
        return self._batcher.max_queue_depth

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the micro-batch scheduler thread (idempotent)."""
        self._batcher.start()

    def close(self) -> None:
        """Flush queued requests, stop the scheduler, reject new submissions."""
        self._batcher.close()

    def __enter__(self) -> "PricingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pricing management
    # ------------------------------------------------------------------

    def install_pricing(self, pricing: PricingFunction) -> None:
        """Install a new pricing; cached quotes are re-priced, not dropped.

        An install changes prices but not conflict sets, so every cached
        entry's bundle is still exact — the cache is atomically rewritten
        with prices under the new function (and its generation bumped, so
        quotes still in flight under the old pricing are refused).
        """
        with self._market_lock:
            self.market.set_pricing(pricing)
            self._ledger.pricing = pricing
            self._quotes.reprice(
                lambda quote: PriceQuote(
                    quote.query_text, pricing.price(quote.bundle), quote.bundle
                )
            )

    def optimize_pricing(
        self,
        queries: list[Query | str],
        valuations,
        algorithm: PricingAlgorithm,
    ) -> PricingResult:
        """Run a pricing algorithm on a workload and install the result."""
        with self._market_lock:
            result = self.market.optimize_pricing(queries, valuations, algorithm)
            pricing = result.pricing
            self._ledger.pricing = pricing
            self._quotes.reprice(
                lambda quote: PriceQuote(
                    quote.query_text, pricing.price(quote.bundle), quote.bundle
                )
            )
        return result

    # ------------------------------------------------------------------
    # Online deltas
    # ------------------------------------------------------------------

    @property
    def delta_log(self) -> DeltaLog:
        return self._delta_log

    @property
    def data_version(self) -> int:
        """High-water data version of applied deltas."""
        return self._delta_log.applied_version

    def accept_delta(self, op: DeltaOp | dict) -> int:
        """Stage a delta for later apply/cancel; returns its id."""
        if isinstance(op, dict):
            op = delta_from_dict(op)
        return self._delta_log.accept(op)

    def cancel_delta(self, delta_id: int) -> DeltaRecord:
        """Cancel a staged delta (typed error if not staged)."""
        return self._delta_log.cancel(delta_id)

    def apply_delta(self, delta: DeltaOp | dict | int) -> MarketDeltaReport:
        """Validate and apply a delta under the market lock.

        Accepts a staged delta id, a raw op, or a JSON payload (raw ops are
        auto-accepted into the log first, so every applied mutation leaves
        an audit record). Quotes in flight complete against the pre-delta
        version: pricing holds the same market lock, and quotes computed
        before the delta but cached after it are admitted only when their
        referenced columns are provably disjoint from the delta's footprint.
        """
        if isinstance(delta, int):
            delta_id = delta
            op = self._delta_log.staged_op(delta_id)
        else:
            op = delta_from_dict(delta) if isinstance(delta, dict) else delta
            delta_id = self._delta_log.accept(op)
        with self._market_lock:
            try:
                report = self.market.apply_delta(op)
            except DeltaValidationError as exc:
                self._delta_log.mark_rejected(delta_id, str(exc))
                raise
            self._delta_log.mark_applied(delta_id)
            # Adding instances may have extended the installed pricing's
            # item universe; keep the marginal-pricing ledger in step.
            self._ledger.pricing = self.market.pricing
            effect = report.effect
            self._quotes.invalidate(effect.column_pairs, effect.whole_tables)
        return report

    @property
    def pricing(self) -> PricingFunction | None:
        return self.market.pricing

    @property
    def base(self) -> Database:
        """The seller's database."""
        return self.market.base

    @property
    def ledger(self) -> HistoryAwareLedger:
        return self._ledger

    @property
    def transactions(self) -> list[Transaction]:
        return self.market.transactions

    @property
    def revenue(self) -> float:
        """Total revenue collected so far (delegates to the market)."""
        return self.market.revenue

    # ------------------------------------------------------------------
    # Buyer-facing API
    # ------------------------------------------------------------------

    def quote_many(self, queries: list[Query | str]) -> list[PriceQuote]:
        """Price many queries; misses are submitted together for batching."""
        resolved = [self._canonical(query) for query in queries]
        misses: list[tuple[int, BatchRequest]] = []
        results: list[PriceQuote | None] = []
        for position, (planned, key) in enumerate(resolved):
            cached = self._quotes.get(key)
            if cached is not None:
                results.append(self._restamp(cached, planned))
            else:
                results.append(None)
                misses.append((position, BatchRequest.make(planned, key)))
        if misses:
            self._batcher.submit([request for _, request in misses])
            for position, request in misses:
                planned, _ = resolved[position]
                results[position] = self._restamp(request.future.result(), planned)
        return results

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self, path: str | Path) -> None:
        """Persist pricing + bundles + transactions + histories + quotes."""
        with self._market_lock:
            if self.market.pricing is None:
                raise PricingError("no pricing installed; nothing to snapshot")
            save_market_state(
                self.market.pricing,
                self.market._bundle_cache,
                path,
                transactions=self.market.transactions,
                ledger=self._ledger,
                quotes=[
                    QuoteEntry(key, quote.query_text, quote.price, quote.bundle)
                    for key, quote in self._quotes.entries()
                ],
                data_version=self._delta_log.applied_version,
            )

    def restore(self, path: str | Path) -> None:
        """Rehydrate pricing, bundles, ledgers, and the quote cache (warm).

        The service must wrap a market over the same support set the
        snapshot was taken against (bundles are support-instance ids).
        Restored quotes were priced under the restored pricing, so they are
        re-stamped fresh: the previous working set serves as cache hits
        without touching the conflict engine.

        A snapshot whose delta high-water mark is older than the live log's
        is refused with a typed :class:`SnapshotError` — restoring it would
        silently serve pre-delta bundles and prices.
        """
        state = load_market_state(path)
        if state.data_version < self._delta_log.applied_version:
            raise SnapshotError(
                f"snapshot {str(path)!r} has data version "
                f"{state.data_version}, older than the live delta log "
                f"({self._delta_log.applied_version}); refusing to restore"
            )
        with self._market_lock:
            self._delta_log = DeltaLog(start_version=state.data_version)
            self.market.set_pricing(state.pricing)
            self._ledger.pricing = state.pricing
            self.market._bundle_cache.update(state.bundles)
            self.market.transactions[:] = list(state.transactions)
            self._ledger.owned = dict(state.owned)
            self._ledger.total_paid = dict(state.total_paid)
            self._quotes.bump_generation()
            for entry in state.quotes:
                self._quotes.put(
                    entry.key,
                    PriceQuote(entry.query_text, entry.price, entry.bundle),
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        return ServiceStats(
            quotes=self._quotes.stats(),
            plans=self._plans.stats(),
            batcher=self._batcher.stats(),
            transactions=len(self.market.transactions),
            templates=self.market.engine.template_cache_stats(),
            deltas=self._delta_log.counters.as_dict(),
            data_version=self._delta_log.applied_version,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan(self, text: str) -> Query:
        return self.market._as_query(text)

    def _quote_planned(self, planned: Query, key: str) -> PriceQuote:
        cached = self._quotes.get(key)
        if cached is not None:
            return self._restamp(cached, planned)
        request = BatchRequest.make(planned, key)
        self._batcher.submit([request])
        return self._restamp(request.future.result(), planned)

    def _append_transaction(self, transaction: Transaction) -> None:
        """Record a completed sale (caller holds the market lock)."""
        self.market.transactions.append(transaction)

    def _execute(self, batch: list[BatchRequest]) -> list[PriceQuote]:
        with self._market_lock:
            quotes = self.market.quote_batch([item.payload for item in batch])
            # Captured inside the same critical section that priced the
            # batch: a concurrent install_pricing cannot stamp these quotes
            # with a generation they were not priced under, and a concurrent
            # apply_delta advances the epoch these puts are checked against.
            generation, delta_epoch = self._quotes.stamps()
            columns = [
                self.market._bundle_columns.get(item.payload.text)
                for item in batch
            ]
        for item, quote, pairs in zip(batch, quotes, columns):
            self._quotes.put(
                item.key,
                quote,
                generation=generation,
                columns=pairs,
                delta_epoch=delta_epoch,
            )
        return quotes


class BuyerSession:
    """History-aware buyer session: marginal quotes against owned bundles.

    Returning buyers pay only for new information
    (:class:`~repro.qirana.history.HistoryAwareLedger`); the session routes
    bundle computation through the service's canonical cache and batcher,
    then applies marginal pricing under the market lock. The ``service`` may
    be a :class:`PricingService` or a
    :class:`~repro.service.sharding.ShardedPricingService` — both expose the
    same canonicalization, quoting, ledger, and transaction surface.
    """

    def __init__(self, service, buyer: str):
        self.service = service
        self.buyer = buyer

    def quote(self, query: Query | str) -> MarginalQuote:
        """Fresh + marginal price of a query for this buyer."""
        fresh = self.service.quote(query)
        with self.service._market_lock:
            return self.service._ledger.quote(self.buyer, fresh.bundle)

    def purchase(
        self, query: Query | str, valuation: float | None = None
    ) -> tuple[object, MarginalQuote]:
        """Buy at the marginal price (walks away when over ``valuation``)."""
        planned, key = self.service._canonical(query)
        fresh = self.service._quote_planned(planned, key)
        with self.service._market_lock:
            marginal = self.service._ledger.quote(self.buyer, fresh.bundle)
            if valuation is not None and marginal.marginal_price > valuation:
                return None, marginal
            self.service._ledger.record_purchase(self.buyer, fresh.bundle)
            answer = planned.run(self.service.base)
            self.service._append_transaction(
                Transaction(self.buyer, planned.text, marginal.marginal_price)
            )
        return answer, marginal

    @property
    def holdings(self) -> frozenset[int]:
        with self.service._market_lock:
            return self.service._ledger.holdings(self.buyer)

    @property
    def total_paid(self) -> float:
        with self.service._market_lock:
            return self.service._ledger.total_paid.get(self.buyer, 0.0)
