"""Star-Schema-Benchmark-shaped dataset and the 701-query workload.

Appendix C: "the parameters are year (7), region (5), nation (25), city
(250). Q1, Q2, Q3 generate one query for each year, Q4–Q7, Q11, Q12 one per
region, Q9, Q10 one per city and Q42 one for each (region, nation) pair."
Our expansion:

- 3 year templates x 7 years            =  21
- 6 region templates x 5 regions        =  30
- 2 city templates x 250 cities         = 500
- 1 nation template x 25 nations        =  25
- 1 (region, nation) template x 125     = 125
                                   total  701

City-parameterized queries dominate; since each city appears in only a few
dimension rows, their conflict sets are tiny and frequently contain an item
unique to them — reproducing the paper's observation that close to half of
SSB's hyperedges contain a unique item (and at least one is empty when a city
has no matching rows at all).
"""

from __future__ import annotations

import numpy as np

from repro.db.database import Database
from repro.db.query import Query, sql_query
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.workloads.base import Workload

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
YEARS = (1992, 1993, 1994, 1995, 1996, 1997, 1998)
NATIONS_PER_REGION = 5
CITIES_PER_NATION = 10


def nations() -> list[tuple[str, str]]:
    """All 25 (nation, region) pairs."""
    pairs: list[tuple[str, str]] = []
    for region_index, region in enumerate(REGIONS):
        for local in range(NATIONS_PER_REGION):
            pairs.append((f"NATION{region_index * NATIONS_PER_REGION + local:02d}", region))
    return pairs


def cities() -> list[tuple[str, str, str]]:
    """All 250 (city, nation, region) triples."""
    triples: list[tuple[str, str, str]] = []
    for nation, region in nations():
        for local in range(CITIES_PER_NATION):
            triples.append((f"{nation}-C{local}", nation, region))
    return triples


def ssb_database(scale: float = 1.0, seed: int = 23) -> Database:
    """Laptop-scale SSB-shaped database."""
    rng = np.random.default_rng(seed)
    # Floors keep every city present in both dimensions (250 cities).
    num_customers = max(300, int(300 * scale))
    num_suppliers = max(250, int(250 * scale))
    num_parts = max(40, int(200 * scale))
    num_lineorders = max(2000, int(3000 * scale))

    dimdate = Relation(
        TableSchema(
            "DimDate",
            (
                Column("d_datekey", ColumnType.INT),
                Column("d_year", ColumnType.INT),
                Column("d_month", ColumnType.INT),
            ),
            primary_key=("d_datekey",),
        )
    )
    datekeys: list[int] = []
    for year in YEARS:
        for month in range(1, 13):
            key = year * 100 + month
            datekeys.append(key)
            dimdate.insert((key, year, month))

    all_cities = cities()
    customer = Relation(
        TableSchema(
            "Customer",
            (
                Column("c_custkey", ColumnType.INT),
                Column("c_name", ColumnType.TEXT),
                Column("c_city", ColumnType.TEXT),
                Column("c_nation", ColumnType.TEXT),
                Column("c_region", ColumnType.TEXT),
            ),
            primary_key=("c_custkey",),
        )
    )
    # Round-robin city assignment (like dbgen's uniform spread): every city
    # appears as soon as there are >= 250 customers, matching the paper's
    # SSB structure where only a single hyperedge ends up empty.
    for key in range(num_customers):
        city, nation, region = all_cities[key % len(all_cities)]
        customer.insert((key, f"Customer{key:04d}", city, nation, region))

    supplier = Relation(
        TableSchema(
            "Supplier",
            (
                Column("s_suppkey", ColumnType.INT),
                Column("s_name", ColumnType.TEXT),
                Column("s_city", ColumnType.TEXT),
                Column("s_nation", ColumnType.TEXT),
                Column("s_region", ColumnType.TEXT),
            ),
            primary_key=("s_suppkey",),
        )
    )
    for key in range(num_suppliers):
        city, nation, region = all_cities[key % len(all_cities)]
        supplier.insert((key, f"Supplier{key:04d}", city, nation, region))

    part = Relation(
        TableSchema(
            "Part",
            (
                Column("p_partkey", ColumnType.INT),
                Column("p_name", ColumnType.TEXT),
                Column("p_category", ColumnType.TEXT),
                Column("p_brand", ColumnType.TEXT),
                Column("p_mfgr", ColumnType.TEXT),
            ),
            primary_key=("p_partkey",),
        )
    )
    categories = [f"MFGR#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
    for key in range(num_parts):
        category = categories[int(rng.integers(len(categories)))]
        part.insert(
            (
                key,
                f"part{key:04d}",
                category,
                f"{category}-{int(rng.integers(1, 41))}",
                f"MFGR#{int(rng.integers(1, 6))}",
            )
        )

    lineorder = Relation(
        TableSchema(
            "LineOrder",
            (
                Column("lo_orderkey", ColumnType.INT),
                Column("lo_custkey", ColumnType.INT),
                Column("lo_suppkey", ColumnType.INT),
                Column("lo_partkey", ColumnType.INT),
                Column("lo_orderdate", ColumnType.INT),
                Column("lo_quantity", ColumnType.INT),
                Column("lo_extendedprice", ColumnType.FLOAT),
                Column("lo_discount", ColumnType.INT),
                Column("lo_revenue", ColumnType.FLOAT),
                Column("lo_supplycost", ColumnType.FLOAT),
            ),
        )
    )
    for key in range(num_lineorders):
        lineorder.insert(
            (
                key,
                int(rng.integers(num_customers)),
                int(rng.integers(num_suppliers)),
                int(rng.integers(num_parts)),
                datekeys[int(rng.integers(len(datekeys)))],
                int(rng.integers(1, 51)),
                float(np.round(rng.uniform(100, 60_000), 2)),
                int(rng.integers(0, 11)),
                float(np.round(rng.uniform(100, 60_000), 2)),
                float(np.round(rng.uniform(10, 1000), 2)),
            )
        )

    return Database("ssb", [dimdate, customer, supplier, part, lineorder])


def ssb_queries() -> list[str]:
    """The 701-query SSB workload."""
    texts: list[str] = []
    # 3 year templates (flight 1 + a monthly drill-down): 21 queries.
    for year in YEARS:
        texts.append(
            "select sum(L.lo_extendedprice * L.lo_discount) "
            "from LineOrder L, DimDate D "
            f"where L.lo_orderdate = D.d_datekey and D.d_year = {year} "
            "and L.lo_discount between 1 and 3 and L.lo_quantity < 25"
        )
        texts.append(
            "select sum(L.lo_extendedprice * L.lo_discount) "
            "from LineOrder L, DimDate D "
            f"where L.lo_orderdate = D.d_datekey and D.d_year = {year} "
            "and L.lo_discount between 4 and 6 "
            "and L.lo_quantity between 26 and 35"
        )
        texts.append(
            "select D.d_month, sum(L.lo_revenue) from LineOrder L, DimDate D "
            f"where L.lo_orderdate = D.d_datekey and D.d_year = {year} "
            "group by D.d_month"
        )
    # 6 region templates: 30 queries.
    for region in REGIONS:
        texts.append(
            "select C.c_nation, sum(L.lo_revenue) from LineOrder L, Customer C "
            "where L.lo_custkey = C.c_custkey "
            f"and C.c_region = '{region}' group by C.c_nation"
        )
        texts.append(
            "select S.s_nation, sum(L.lo_revenue) from LineOrder L, Supplier S "
            "where L.lo_suppkey = S.s_suppkey "
            f"and S.s_region = '{region}' group by S.s_nation"
        )
        texts.append(
            "select P.p_category, count(*) from LineOrder L, Part P, Supplier S "
            "where L.lo_partkey = P.p_partkey and L.lo_suppkey = S.s_suppkey "
            f"and S.s_region = '{region}' group by P.p_category"
        )
        texts.append(
            "select C.c_city, sum(L.lo_revenue) from LineOrder L, Customer C "
            "where L.lo_custkey = C.c_custkey "
            f"and C.c_region = '{region}' group by C.c_city"
        )
        texts.append(
            "select S.s_city, avg(L.lo_supplycost) from LineOrder L, Supplier S "
            "where L.lo_suppkey = S.s_suppkey "
            f"and S.s_region = '{region}' group by S.s_city"
        )
        texts.append(
            "select D.d_year, sum(L.lo_revenue) "
            "from LineOrder L, DimDate D, Customer C "
            "where L.lo_orderdate = D.d_datekey and L.lo_custkey = C.c_custkey "
            f"and C.c_region = '{region}' group by D.d_year"
        )
    # 2 city templates: 500 queries.
    for city, _, _ in cities():
        texts.append(
            "select sum(L.lo_revenue) from LineOrder L, Customer C "
            f"where L.lo_custkey = C.c_custkey and C.c_city = '{city}'"
        )
        texts.append(
            "select count(*) from LineOrder L, Supplier S "
            f"where L.lo_suppkey = S.s_suppkey and S.s_city = '{city}'"
        )
    # 1 nation template: 25 queries.
    for nation, _ in nations():
        texts.append(
            "select C.c_city, sum(L.lo_revenue) from LineOrder L, Customer C "
            f"where L.lo_custkey = C.c_custkey and C.c_nation = '{nation}' "
            "group by C.c_city"
        )
    # 1 (region, nation) template: 125 queries.
    for nation, _ in nations():
        for region in REGIONS:
            texts.append(
                "select S.s_city, count(*) "
                "from LineOrder L, Supplier S, Customer C "
                "where L.lo_suppkey = S.s_suppkey and L.lo_custkey = C.c_custkey "
                f"and C.c_region = '{region}' and S.s_nation = '{nation}' "
                "group by S.s_city"
            )
    return texts


def ssb_workload(scale: float = 1.0, seed: int = 23) -> Workload:
    """The 701-query SSB workload."""
    database = ssb_database(scale=scale, seed=seed)
    queries: list[Query] = [sql_query(text, database) for text in ssb_queries()]
    return Workload(
        name="ssb",
        database=database,
        queries=queries,
        description="SSB-shaped schema, 701 queries from 13 templates",
        default_support_size=2000,
    )
