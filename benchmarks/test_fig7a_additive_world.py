"""Figure 7a: additive item-level valuations on the world workloads.

Paper findings: LPIP outperforms everything; for small k, UIP matches LPIP
(item values are nearly uniform), and the gap opens as k grows; UBP suffers
on the skewed workload because valuations now correlate with bundle
structure.
"""

import pytest

from repro.experiments.figures import figure7_additive

from benchmarks.conftest import save_artifact

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



@pytest.mark.parametrize("workload_name", ["skewed", "uniform"])
@pytest.mark.parametrize("assigner", ["uniform", "binomial"])
def test_fig7a_additive_model(benchmark, workload_name, assigner):
    artifact = benchmark.pedantic(
        figure7_additive,
        args=(workload_name,),
        kwargs={"assigner": assigner},
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]

    # LPIP leads at every parameter (structural domination over UIP; paper:
    # "LPIP outperforms all other algorithms across all workloads").
    for lpip_val, uip_val in zip(series["lpip"], series["uip"]):
        assert lpip_val >= uip_val - 0.05

    # With additive valuations the frontier LP can sell every buyer at
    # (nearly) full value: LPIP's normalized revenue is high.
    assert max(series["lpip"]) > 0.8


def test_fig7a_uip_gap_grows_with_k(benchmark):
    artifact = benchmark.pedantic(
        figure7_additive, args=("skewed",), kwargs={"assigner": "uniform"},
        rounds=1, iterations=1,
    )
    series = artifact.data["series"]
    gaps = [l - u for l, u in zip(series["lpip"], series["uip"])]
    # k order: 1, 10, 1e2, 1e3, 5e3, 1e4 — the gap at large k exceeds small k.
    assert gaps[-1] >= gaps[0] - 0.05
