"""Unit tests for the Database container."""

import pytest

from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.exceptions import SchemaError


def _relation(name: str):
    schema = TableSchema(name, (Column("a", ColumnType.INT),))
    relation = Relation(schema)
    relation.insert((1,))
    return relation


class TestDatabase:
    def test_lookup_case_insensitive(self, mini_db):
        assert mini_db.table("country") is mini_db.table("COUNTRY")

    def test_unknown_table_raises(self, mini_db):
        with pytest.raises(SchemaError, match="no table"):
            mini_db.table("nope")

    def test_has_table(self, mini_db):
        assert mini_db.has_table("City")
        assert not mini_db.has_table("Missing")

    def test_duplicate_table_rejected(self):
        db = Database("d", [_relation("T")])
        with pytest.raises(SchemaError, match="already exists"):
            db.add_table(_relation("t"))

    def test_table_names(self, mini_db):
        assert set(mini_db.table_names) == {"Country", "City", "CountryLanguage"}

    def test_total_rows(self, mini_db):
        assert mini_db.total_rows == 4 + 4 + 3

    def test_with_table_replaced_shares_other_tables(self, mini_db):
        patched_city = mini_db.table("City").with_cell_replaced(0, "Population", 1)
        clone = mini_db.with_table_replaced(patched_city)
        assert clone.table("Country") is mini_db.table("Country")
        assert clone.table("City") is not mini_db.table("City")
        assert clone.table("City").cell(0, "Population") == 1
        assert mini_db.table("City").cell(0, "Population") == 745514

    def test_with_table_replaced_unknown_table(self, mini_db):
        with pytest.raises(SchemaError, match="unknown table"):
            mini_db.with_table_replaced(_relation("Ghost"))
