"""HTTP front-end tests: wire parity, lifecycle, drain, rolling restart."""

import json
import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service import (
    HTTPServiceClient,
    PricingService,
    ShardedPricingService,
    serve_in_thread,
)
from repro.service.observability import parse_exposition

QUERIES = [
    "select Name from Country",
    "select avg(Population) from Country",
    "select Name from City where Population > 1000000",
    "select Continent, count(*) from Country group by Continent",
]


def build_service(support, **kwargs):
    market = QueryMarket(support)
    market.set_pricing(uniform_calibrated_pricing(support, 100.0))
    return PricingService(market, **kwargs)


@pytest.fixture
def server(mini_support):
    handle = serve_in_thread(build_service(mini_support))
    yield handle
    handle.shutdown()


@pytest.fixture
def client(server):
    with HTTPServiceClient(*server.address) as client:
        yield client


class TestWireParity:
    def test_quote_matches_in_process_oracle(self, server, client, mini_support):
        oracle = QueryMarket(mini_support)
        oracle.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
        for sql in QUERIES:
            served = client.quote(sql)
            expected = oracle.quote(sql)
            assert served.price == expected.price  # bit-equal, not approx
            assert served.bundle_size == len(expected.bundle)
            assert served.query_text == sql

    def test_purchase_round_trip_carries_the_answer(self, client):
        payload = client.purchase(QUERIES[0], "alice")
        assert payload["purchased"] is True
        assert payload["paid"] == payload["price"] > 0
        assert payload["buyer"] == "alice"
        assert payload["answer"]["columns"] == ["Name"]
        assert len(payload["answer"]["rows"]) > 0

    def test_priced_out_buyer_walks_away(self, client):
        quote = client.quote(QUERIES[0])
        payload = client.purchase(QUERIES[0], "cheap", valuation=quote.price / 2)
        assert payload["purchased"] is False
        assert payload["paid"] == 0.0
        assert "answer" not in payload

    def test_x_buyer_header_opts_into_marginal_pricing(self, server, client):
        status, first = client.request(
            "POST",
            "/purchase",
            {"query": QUERIES[0]},
            headers={"X-Buyer": "carol"},
        )
        assert status == 200 and first["purchased"]
        # The same buyer re-buying the same query owes nothing marginal.
        status, again = client.request(
            "POST",
            "/purchase",
            {"query": QUERIES[0]},
            headers={"X-Buyer": "carol"},
        )
        assert status == 200
        assert again["marginal_price"] == 0.0
        assert again["price"] == first["price"]  # fresh price unchanged

    def test_header_session_quote_carries_both_prices(self, server, client):
        client.request(
            "POST", "/purchase", {"query": QUERIES[0]}, headers={"X-Buyer": "dave"}
        )
        status, payload = client.request(
            "POST", "/quote", {"query": QUERIES[0]}, headers={"X-Buyer": "dave"}
        )
        assert status == 200
        assert payload["marginal_price"] == 0.0
        assert payload["price"] > 0
        assert payload["refund"] == payload["price"]

    def test_concurrent_wire_clients_all_complete(self, server, client):
        errors = []

        def hammer():
            try:
                for _ in range(20):
                    assert client.quote(QUERIES[0]).price > 0
            except Exception as exc:  # noqa: BLE001 — collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestHTTPSurface:
    def test_health_and_readiness(self, client):
        assert client.request("GET", "/healthz") == (200, "ok\n")
        assert client.ready()

    def test_unknown_path_is_404(self, client):
        status, payload = client.request("GET", "/nope")
        assert status == 404
        assert "unknown path" in payload["error"]

    def test_wrong_methods_are_405(self, client):
        assert client.request("POST", "/healthz")[0] == 405
        assert client.request("GET", "/quote")[0] == 405

    def test_malformed_json_is_400(self, server):
        import http.client as http_client

        connection = http_client.HTTPConnection(*server.address, timeout=10)
        try:
            connection.request("POST", "/quote", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
            assert "not valid JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_missing_query_is_400(self, client):
        status, payload = client.request("POST", "/quote", {"sql": "oops"})
        assert status == 400
        assert '"query"' in payload["error"]

    def test_purchase_without_buyer_is_400(self, client):
        status, payload = client.request("POST", "/purchase", {"query": QUERIES[0]})
        assert status == 400
        assert "buyer" in payload["error"]

    def test_unparseable_sql_is_400_not_500(self, client):
        status, payload = client.request(
            "POST", "/quote", {"query": "selec oops from"}
        )
        assert status == 400
        assert "error" in payload

    def test_oversized_body_is_413(self, server):
        import http.client as http_client

        connection = http_client.HTTPConnection(*server.address, timeout=10)
        try:
            connection.request("POST", "/quote", body=b"x" * (2 << 20))
            assert connection.getresponse().status == 413
        finally:
            connection.close()

    def test_metrics_scrape_parses_with_stable_names(self, server, client):
        client.quote(QUERIES[0])
        client.quote(QUERIES[0])
        first = parse_exposition(client.metrics())
        hits = {s.labels_dict["shard"]: s.value for s in first["repro_quote_cache_hits_total"]}
        assert hits == {"0": 1.0}
        statuses = {
            (s.labels_dict["endpoint"], s.labels_dict["status"])
            for s in first["repro_http_requests_total"]
        }
        assert ("/quote", "200") in statuses
        client.purchase(QUERIES[1], "erin")
        second = parse_exposition(client.metrics())
        # Counter *names* never change between scrapes (dashboards key on
        # them); only values move.
        assert set(first) == set(second)
        buckets = second["repro_request_duration_seconds_bucket"]
        assert buckets[-1].value == 3.0  # two quotes + one purchase observed

    def test_double_start_raises(self, server):
        with pytest.raises(ServiceError, match="already started"):
            server.start_in_thread()


class GatedService:
    """Delegate that blocks ``quote`` until released — drain-window probe."""

    def __init__(self, inner, gate):
        self._inner = inner
        self._gate = gate
        self.entered = threading.Event()

    def quote(self, text):
        self.entered.set()
        if not self._gate.wait(timeout=10):
            raise TimeoutError("gate never opened")
        return self._inner.quote(text)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class TestDrain:
    def test_readiness_flips_before_inflight_completes(self, mini_support):
        gate = threading.Event()
        service = GatedService(build_service(mini_support), gate)
        server = serve_in_thread(service)
        client = HTTPServiceClient(*server.address, timeout=30)
        probe = HTTPServiceClient(*server.address, timeout=10)
        result = {}

        def slow_quote():
            result["quote"] = client.quote(QUERIES[0])

        inflight = threading.Thread(target=slow_quote)
        inflight.start()
        assert service.entered.wait(timeout=10)

        drainer = threading.Thread(target=server.shutdown)
        drainer.start()
        deadline = time.monotonic() + 10
        while probe.ready() and time.monotonic() < deadline:
            time.sleep(0.005)
        # Readiness flipped while the in-flight request is still running...
        assert not probe.ready()
        assert not server.ready
        assert not drainer.is_alive() or result.get("quote") is None
        # ...and new pricing traffic is refused with 503.
        status, payload = probe.request("POST", "/quote", {"query": QUERIES[1]})
        assert status == 503
        assert "draining" in payload["error"]

        gate.set()
        inflight.join(timeout=30)
        drainer.join(timeout=30)
        # The accepted in-flight request was served, not dropped.
        assert result["quote"].price > 0
        probe.close()
        client.close()

    def test_drain_is_idempotent(self, mini_support):
        server = serve_in_thread(build_service(mini_support))
        server.shutdown()
        server.shutdown()  # second drain is a no-op, not an error
        assert not server.ready


class TestRollingRestart:
    def test_zero_lost_requests_and_warm_cache(self, mini_support, tmp_path):
        snapshot = tmp_path / "warm.json"
        first = serve_in_thread(
            build_service(mini_support), snapshot_path=str(snapshot)
        )
        with HTTPServiceClient(*first.address) as client:
            before = {}
            accepted = 0
            for sql in QUERIES * 3:  # repeats exercise the cache pre-restart
                before[sql] = client.quote(sql).price
                accepted += 1
        first.shutdown()
        assert snapshot.is_file()
        assert accepted == len(QUERIES) * 3  # every accepted request answered

        # The replacement process: fresh service over the same support,
        # restored from the drain snapshot, serving on a new socket.
        restored_service = PricingService(QueryMarket(mini_support))
        restored_service.restore(snapshot)
        second = serve_in_thread(restored_service)
        try:
            with HTTPServiceClient(*second.address) as client:
                for sql in QUERIES:
                    assert client.quote(sql).price == before[sql]  # bit-equal
                samples = parse_exposition(client.metrics())
            by_name = {
                name: sum(s.value for s in family)
                for name, family in samples.items()
            }
            # Hit-counter proof of warmth: the previous working set served
            # entirely from the restored cache — zero misses after restart.
            assert by_name["repro_quote_cache_misses_total"] == 0.0
            assert by_name["repro_quote_cache_hits_total"] == len(QUERIES)
        finally:
            second.shutdown()

    def test_drain_without_pricing_skips_snapshot(self, mini_support, tmp_path):
        snapshot = tmp_path / "never.json"
        service = PricingService(QueryMarket(mini_support))  # no pricing
        server = serve_in_thread(service, snapshot_path=str(snapshot))
        server.shutdown()
        assert not snapshot.exists()


class TestShardedOverTheWire:
    def test_sharded_tier_serves_and_labels_latency(self, mini_support):
        service = ShardedPricingService(mini_support, num_shards=2)
        service.install_pricing(uniform_calibrated_pricing(mini_support, 100.0))
        server = serve_in_thread(service)
        try:
            with HTTPServiceClient(*server.address) as client:
                for sql in QUERIES:
                    assert client.quote(sql).price > 0
                samples = parse_exposition(client.metrics())
            cache_shards = {
                s.labels_dict["shard"]
                for s in samples["repro_quote_cache_hits_total"]
            }
            assert cache_shards == {"0", "1"}
            observed = {
                s.labels_dict["shard"]
                for s in samples["repro_request_duration_seconds_count"]
                if s.value > 0
            }
            # Latency lands in each request's home-shard histogram.
            expected = {str(service.home_shard(sql)) for sql in QUERIES}
            assert observed == expected
        finally:
            server.shutdown()
