"""XOS pricing obtained by combining item-pricing vectors (Section 5.2).

The paper's XOS algorithm runs LPIP and CIP and prices each bundle at the
*maximum* of the two additive prices. The max of monotone additive functions
is monotone and fractionally subadditive (XOS), hence arbitrage-free. The
combiner is generic: any set of component algorithms producing
:class:`~repro.core.pricing.ItemPricing` vectors can be combined.
"""

from __future__ import annotations

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.algorithms.cip import CIP
from repro.core.algorithms.lpip import LPIP
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction, XOSPricing
from repro.exceptions import PricingError


class XOSCombiner(PricingAlgorithm):
    """XOS pricing: max over the item-price vectors of component algorithms."""

    name = "xos"

    def __init__(self, components: list[PricingAlgorithm] | None = None):
        """Default components are LPIP and CIP, as in the paper
        ("XOS-LPIP+CIP" in the figures)."""
        self.components = components if components is not None else [LPIP(), CIP()]
        if not self.components:
            raise PricingError("XOS combiner needs at least one component")

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        vectors: list[ItemPricing] = []
        component_revenues: dict[str, float] = {}
        for algorithm in self.components:
            result = algorithm.run(instance)
            if not isinstance(result.pricing, ItemPricing):
                raise PricingError(
                    f"XOS component {algorithm.name!r} did not return an item pricing"
                )
            vectors.append(result.pricing)
            component_revenues[algorithm.name] = result.revenue
        pricing = XOSPricing(vectors)
        return pricing, {"component_revenues": component_revenues}
