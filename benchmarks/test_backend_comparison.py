"""Conflict-backend comparison on the uniform workload.

The uniform workload's flat selection queries are fully vectorizable, so the
batch backend's advantage over per-candidate re-execution is largest here —
the acceptance bar is a 5x construction speedup over ``naive`` with exact
hyperedge parity (asserted inside ``time_hypergraph_builds``).
"""

from repro.experiments.figures import backend_comparison

from benchmarks.conftest import save_artifact


def test_backend_comparison_uniform(benchmark):
    artifact = benchmark.pedantic(
        backend_comparison,
        kwargs={
            "workload_name": "uniform",
            "scale": 0.15,
            "support_size": 250,
            "num_queries": 120,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    # Only relative speedups are asserted (measured margin is ~20x over the
    # bar); absolute wall-clock comparisons flake on shared CI runners.
    speedups = artifact.data["speedups"]
    assert speedups["vectorized"] >= 5.0, speedups
    assert speedups["auto"] >= 5.0, speedups
