"""Smoke tests for the figure/table harness at tiny scales.

The real reproductions live in ``benchmarks/``; these exercise the same code
paths fast so the harness is covered by the plain test suite.
"""

import pytest

from repro.experiments import figures

TINY = {"scale": 0.1, "support_size": 60}


@pytest.fixture(autouse=True)
def clear_caches():
    figures._cached_workload.cache_clear()
    figures._cached_hypergraph.cache_clear()
    yield


class TestFigureHarness:
    def test_figure4(self):
        artifact = figures.figure4_edge_distribution("tpch", **TINY)
        assert artifact.figure_id == "fig4-tpch"
        assert "#hyperedges" in artifact.text
        assert len(artifact.data["sizes"]) == 220

    def test_figure5a_uniform(self):
        artifact = figures.figure5a_uniform("tpch", fast=True, **TINY)
        series = artifact.data["series"]
        assert "lpip" in series and "subadditive bound" in series
        assert len(series["lpip"]) == len(figures.UNIFORM_KS)

    def test_figure5b_exponential(self):
        artifact = figures.figure5b_exponential("tpch", fast=True, **TINY)
        assert len(artifact.data["parameters"]) == len(figures.SCALE_KS)

    def test_figure7_additive(self):
        artifact = figures.figure7_additive(
            "tpch", assigner="binomial", fast=True, **TINY
        )
        assert "bin" in artifact.text

    def test_figure8_support_sweep(self):
        artifact = figures.figure8_support_sweep(
            "tpch", support_sizes=(20, 60), scale=0.1
        )
        assert artifact.data["sizes"] == (20, 60)
        for values in artifact.data["series"].values():
            assert len(values) == 2

    def test_support_runtime_table(self):
        artifact = figures.support_runtime_table(
            "tpch", support_sizes=(20, 60), include_construction=True
        )
        assert "construction" in artifact.text
        assert set(artifact.data["runtimes"]) == {20, 60}

    def test_workload_hypergraph_cached(self):
        first = figures.workload_hypergraph("tpch", **TINY)
        second = figures.workload_hypergraph("tpch", **TINY)
        assert first[2] is second[2]

    def test_figure_str_renders(self):
        artifact = figures.figure4_edge_distribution("tpch", **TINY)
        assert artifact.figure_id in str(artifact)
