"""Unit tests for schemas, column types and row validation."""

import pytest

from repro.db.schema import Column, ColumnType, TableSchema
from repro.exceptions import SchemaError


class TestColumnType:
    def test_int_accepts_int(self):
        assert ColumnType.INT.accepts(5)

    def test_int_rejects_bool(self):
        assert not ColumnType.INT.accepts(True)

    def test_int_rejects_float(self):
        assert not ColumnType.INT.accepts(5.0)

    def test_float_accepts_int_and_float(self):
        assert ColumnType.FLOAT.accepts(5)
        assert ColumnType.FLOAT.accepts(5.5)

    def test_float_rejects_bool(self):
        assert not ColumnType.FLOAT.accepts(False)

    def test_text_accepts_str(self):
        assert ColumnType.TEXT.accepts("abc")

    def test_text_rejects_int(self):
        assert not ColumnType.TEXT.accepts(1)

    def test_all_types_accept_null(self):
        for dtype in ColumnType:
            assert dtype.accepts(None)


class TestColumn:
    def test_valid_name(self):
        assert Column("Population", ColumnType.INT).name == "Population"

    def test_underscore_name(self):
        assert Column("l_shipyear").name == "l_shipyear"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_name_with_space_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name")


class TestTableSchema:
    def test_column_lookup_case_insensitive(self, country_schema):
        assert country_schema.column_index("code") == 0
        assert country_schema.column_index("CODE") == 0
        assert country_schema.column_index("Population") == 4

    def test_unknown_column_raises(self, country_schema):
        with pytest.raises(SchemaError, match="no column"):
            country_schema.column_index("Nope")

    def test_has_column(self, country_schema):
        assert country_schema.has_column("name")
        assert not country_schema.has_column("nope")

    def test_arity_and_names(self, country_schema):
        assert country_schema.arity == 6
        assert country_schema.column_names[0] == "Code"

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema("T", (Column("a"), Column("A")))

    def test_duplicate_columns_case_insensitive(self):
        with pytest.raises(SchemaError):
            TableSchema("T", (Column("Code"), Column("code")))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("T", ())

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError, match="primary key"):
            TableSchema("T", (Column("a"),), primary_key=("b",))

    def test_validate_row_ok(self, country_schema):
        country_schema.validate_row(("X", "Y", "Z", "W", 1, 2.0))

    def test_validate_row_wrong_arity(self, country_schema):
        with pytest.raises(SchemaError, match="arity"):
            country_schema.validate_row(("X",))

    def test_validate_row_wrong_type(self, country_schema):
        with pytest.raises(SchemaError, match="not valid"):
            country_schema.validate_row(("X", "Y", "Z", "W", "not-int", 2.0))

    def test_validate_row_allows_null(self, country_schema):
        country_schema.validate_row((None, None, None, None, None, None))

    def test_column_accessor(self, country_schema):
        assert country_schema.column("population").dtype is ColumnType.INT
