"""Recursive-descent parser for the supported SELECT fragment."""

from __future__ import annotations

from repro.db.aggregates import is_aggregate_name
from repro.db.expr import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    conjoin,
)
from repro.db.schema import Value
from repro.db.sql.ast import (
    AggregateCall,
    OrderItem,
    SelectAggregate,
    SelectColumn,
    SelectItem,
    SelectStar,
    SelectStatement,
    TableRef,
)
from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.exceptions import SQLSyntaxError, UnsupportedSQLError


def parse_select(sql: str) -> SelectStatement:
    """Parse SQL text into a :class:`SelectStatement`."""
    return _Parser(tokenize(sql)).parse_statement()


class _Parser:
    """Standard recursive-descent parser over the token list."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0
        self._in_having = False

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._position + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        if token.type is not TokenType.END:
            self._position += 1
        return token

    def _match_keyword(self, *words: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.text in words:
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._match_keyword(word)
        if token is None:
            raise SQLSyntaxError(
                f"expected {word.upper()!r} at position {self._peek().position}, "
                f"got {self._peek().text!r}"
            )
        return token

    def _match_punct(self, text: str) -> Token | None:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.text == text:
            return self._advance()
        return None

    def _expect_punct(self, text: str) -> Token:
        token = self._match_punct(text)
        if token is None:
            raise SQLSyntaxError(
                f"expected {text!r} at position {self._peek().position}, "
                f"got {self._peek().text!r}"
            )
        return token

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENTIFIER:
            raise SQLSyntaxError(
                f"expected identifier at position {token.position}, got {token.text!r}"
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Statement
    # ------------------------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        self._expect_keyword("select")
        distinct = self._match_keyword("distinct") is not None
        items = self._parse_select_list()
        self._expect_keyword("from")
        tables = self._parse_from_list()

        where: Expr | None = None
        if self._match_keyword("where"):
            where = self._parse_or()

        group_by: list[Expr] = []
        if self._match_keyword("group"):
            self._expect_keyword("by")
            group_by = self._parse_expr_list()

        having: Expr | None = None
        if self._match_keyword("having"):
            # Aggregate calls are legal inside the HAVING predicate only;
            # the flag re-routes _parse_term's aggregate rejection.
            self._in_having = True
            try:
                having = self._parse_or()
            finally:
                self._in_having = False

        order_by: list[OrderItem] = []
        if self._match_keyword("order"):
            self._expect_keyword("by")
            order_by = self._parse_order_list()

        limit: int | None = None
        if self._match_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise SQLSyntaxError(f"expected number after LIMIT, got {token.text!r}")
            self._advance()
            limit = int(token.text)

        trailing = self._peek()
        if trailing.type is not TokenType.END:
            raise SQLSyntaxError(
                f"unexpected trailing input at position {trailing.position}: "
                f"{trailing.text!r}"
            )
        return SelectStatement(
            items,
            tables,
            where,
            group_by,
            having,
            order_by,
            limit,
            distinct,
        )

    # ------------------------------------------------------------------
    # SELECT list / FROM list
    # ------------------------------------------------------------------

    def _parse_select_list(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.PUNCTUATION and token.text == "*":
            self._advance()
            return SelectStar()
        # alias.* form
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek(1).text == "."
            and self._peek(2).text == "*"
        ):
            self._advance()
            self._advance()
            self._advance()
            return SelectStar(qualifier=token.text)
        # aggregate call
        if (
            token.type is TokenType.IDENTIFIER
            and is_aggregate_name(token.text)
            and self._peek(1).text == "("
        ):
            return self._parse_aggregate_item()
        expr = self._parse_additive()
        alias = self._parse_optional_alias()
        return SelectColumn(expr, alias)

    def _parse_aggregate_item(self) -> SelectAggregate:
        call = self._parse_aggregate_call()
        alias = self._parse_optional_alias()
        return SelectAggregate(call.func, call.arg, call.distinct, alias)

    def _parse_aggregate_call(self) -> AggregateCall:
        func = self._advance().text.lower()
        self._expect_punct("(")
        distinct = self._match_keyword("distinct") is not None
        arg: Expr | None
        if self._peek().text == "*" and self._peek().type is TokenType.PUNCTUATION:
            self._advance()
            arg = None
            if distinct:
                raise UnsupportedSQLError("DISTINCT * inside an aggregate")
        else:
            arg = self._parse_additive()
        self._expect_punct(")")
        return AggregateCall(func, arg, distinct)

    def _parse_optional_alias(self) -> str | None:
        if self._match_keyword("as"):
            return self._expect_identifier().text
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self._advance().text
        return None

    def _parse_from_list(self) -> list[TableRef]:
        tables = [self._parse_table_ref()]
        while self._match_punct(","):
            tables.append(self._parse_table_ref())
        return tables

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_identifier().text
        alias: str | None = None
        if self._match_keyword("as"):
            alias = self._expect_identifier().text
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().text
        return TableRef(name, alias)

    def _parse_expr_list(self) -> list[Expr]:
        exprs = [self._parse_additive()]
        while self._match_punct(","):
            exprs.append(self._parse_additive())
        return exprs

    def _parse_order_list(self) -> list[OrderItem]:
        items: list[OrderItem] = []
        while True:
            expr = self._parse_additive()
            ascending = True
            if self._match_keyword("desc"):
                ascending = False
            else:
                self._match_keyword("asc")
            items.append(OrderItem(expr, ascending))
            if not self._match_punct(","):
                return items

    # ------------------------------------------------------------------
    # Predicates (precedence: OR < AND < NOT < comparison < additive < term)
    # ------------------------------------------------------------------

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._match_keyword("or"):
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._match_keyword("and"):
            left = conjoin([left, self._parse_not()])
        return left

    def _parse_not(self) -> Expr:
        if self._match_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        # Parenthesized sub-predicate vs. parenthesized arithmetic: try the
        # predicate interpretation when the parenthesis directly opens a
        # predicate; arithmetic parens are handled inside _parse_term.
        if self._peek().text == "(" and self._looks_like_predicate_paren():
            self._expect_punct("(")
            inner = self._parse_or()
            self._expect_punct(")")
            return inner

        operand = self._parse_additive()

        negated = self._match_keyword("not") is not None
        if self._match_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            between = Between(operand, low, high)
            return Not(between) if negated else between
        if self._match_keyword("like"):
            token = self._peek()
            if token.type is not TokenType.STRING:
                raise SQLSyntaxError("LIKE requires a string literal pattern")
            self._advance()
            return Like(operand, token.text, negated=negated)
        if self._match_keyword("in"):
            self._expect_punct("(")
            values = [self._parse_literal_value()]
            while self._match_punct(","):
                values.append(self._parse_literal_value())
            self._expect_punct(")")
            return InList(operand, tuple(values), negated=negated)
        if self._match_keyword("is"):
            is_negated = self._match_keyword("not") is not None
            self._expect_keyword("null")
            return IsNull(operand, negated=is_negated)
        if negated:
            raise SQLSyntaxError("NOT must be followed by BETWEEN, LIKE or IN here")

        token = self._peek()
        if token.type is TokenType.OPERATOR:
            self._advance()
            right = self._parse_additive()
            return Comparison(token.text, operand, right)
        # Bare expression used as a predicate (e.g. `select distinct 1`);
        # treat nonzero/non-empty as true at evaluation time.
        return operand

    def _looks_like_predicate_paren(self) -> bool:
        """Heuristic: `(` starts a predicate if a boolean keyword or comparison
        appears before its matching `)` at depth 1."""
        depth = 0
        offset = 0
        while True:
            token = self._peek(offset)
            if token.type is TokenType.END:
                return False
            if token.text == "(" and token.type is TokenType.PUNCTUATION:
                depth += 1
            elif token.text == ")" and token.type is TokenType.PUNCTUATION:
                depth -= 1
                if depth == 0:
                    return False
            elif depth == 1:
                if token.type is TokenType.OPERATOR:
                    return True
                if token.type is TokenType.KEYWORD and token.text in (
                    "and", "or", "not", "like", "between", "in", "is",
                ):
                    return True
            offset += 1

    def _parse_literal_value(self) -> Value:
        token = self._peek()
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        if token.type is TokenType.NUMBER:
            self._advance()
            return _number_value(token.text)
        if token.text == "-" and self._peek(1).type is TokenType.NUMBER:
            self._advance()
            number = self._advance()
            value = _number_value(number.text)
            return -value
        if token.is_keyword("null"):
            self._advance()
            return None
        raise SQLSyntaxError(f"expected literal at position {token.position}")

    # ------------------------------------------------------------------
    # Arithmetic expressions
    # ------------------------------------------------------------------

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.PUNCTUATION and token.text in ("+", "-"):
                self._advance()
                left = Arithmetic(token.text, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token.type is TokenType.PUNCTUATION and token.text in ("*", "/"):
                self._advance()
                left = Arithmetic(token.text, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(_number_value(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.text)
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.text == "-" and token.type is TokenType.PUNCTUATION:
            self._advance()
            inner = self._parse_term()
            return Arithmetic("-", Literal(0), inner)
        if token.text == "(" and token.type is TokenType.PUNCTUATION:
            self._advance()
            inner = self._parse_additive()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            if is_aggregate_name(token.text) and self._peek(1).text == "(":
                if self._in_having:
                    return self._parse_aggregate_call()
                raise UnsupportedSQLError(
                    "aggregates are only allowed in the SELECT list or HAVING"
                )
            self._advance()
            if self._match_punct("."):
                column = self._expect_identifier()
                return ColumnRef(column.text, qualifier=token.text)
            return ColumnRef(token.text)
        raise SQLSyntaxError(
            f"unexpected token {token.text!r} at position {token.position}"
        )


def _number_value(text: str) -> int | float:
    return float(text) if "." in text else int(text)
