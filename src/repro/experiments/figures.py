"""Per-figure/table experiment definitions.

Each ``figure_*``/``table_*`` function reproduces one artifact of the paper's
evaluation section and returns a :class:`FigureData` whose ``text`` renders
the same rows/series the paper plots. Workload hypergraphs are cached per
process — the paper likewise computes each workload's hypergraph once and
reuses it across valuation models.

Defaults are laptop-scale (support ~600–1000, data scale ~0.3–0.5); pass
``support_size``/``scale`` for larger instances. Absolute numbers will not
match the paper (different hardware, dataset scale, LP solver), but the
qualitative shape — which algorithm wins where — does; see EXPERIMENTS.md.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.algorithms import default_algorithm_suite
from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import Hypergraph, HypergraphStats
from repro.experiments.report import format_series_table, format_table
from repro.experiments.runner import (
    run_algorithms,
    run_parameter_sweep,
    sweep_series,
    time_hypergraph_builds,
    time_revenue_sweeps,
)
from repro.qirana.conflict import ConflictSetEngine
from repro.support.generator import SupportSet
from repro.valuations import (
    AdditiveValuations,
    ExponentialScaledValuations,
    NormalScaledValuations,
    UniformValuations,
    ZipfValuations,
)
from repro.workloads import get_workload
from repro.workloads.base import Workload

#: Laptop-scale defaults per workload: (data scale, support size). Support
#: sizes are chosen so the expected number of deltas hitting each selective
#: query's relevant cells matches the paper's density (support 15k over the
#: 5k-row world db; 100k over SF1), keeping the fraction of empty hyperedges
#: comparable — that fraction is what drives the UBP-vs-item-pricing balance.
DEFAULT_SCALES: dict[str, tuple[float, int]] = {
    "skewed": (0.2, 2400),
    "uniform": (0.3, 1000),
    "tpch": (1.0, 1500),
    "ssb": (0.6, 1200),
}


@dataclass
class FigureData:
    """One reproduced artifact: identifying info + printable text + raw data."""

    figure_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"== {self.figure_id}: {self.title} ==\n{self.text}"


@functools.lru_cache(maxsize=8)
def _cached_workload(name: str, scale: float) -> Workload:
    return get_workload(name, scale=scale)


@functools.lru_cache(maxsize=16)
def _cached_hypergraph(
    name: str, scale: float, support_size: int, seed: int, backend: str
) -> tuple[Workload, SupportSet, Hypergraph]:
    workload = _cached_workload(name, scale)
    support = workload.support(size=support_size, seed=seed, mode="row")
    hypergraph = workload.hypergraph(support, backend=backend)
    return workload, support, hypergraph


def workload_hypergraph(
    name: str,
    scale: float | None = None,
    support_size: int | None = None,
    seed: int = 0,
    backend: str = "auto",
) -> tuple[Workload, SupportSet, Hypergraph]:
    """(workload, support, hypergraph) with per-process caching.

    ``backend`` names a conflict backend from
    :func:`repro.qirana.backends.available_backends`; every backend yields
    identical hyperedges, so it only affects construction speed.
    """
    default_scale, default_support = DEFAULT_SCALES[name]
    return _cached_hypergraph(
        name,
        scale if scale is not None else default_scale,
        support_size if support_size is not None else default_support,
        seed,
        backend.lower(),
    )


def _suite(fast: bool = False) -> list[PricingAlgorithm]:
    """The six-algorithm suite; ``fast`` caps LP counts for big sweeps."""
    if fast:
        return default_algorithm_suite(lpip_max_programs=40, cip_epsilon=1.0)
    return default_algorithm_suite(lpip_max_programs=120, cip_epsilon=0.5)


# ---------------------------------------------------------------------------
# Figure 4 + Table 3: hypergraph structure
# ---------------------------------------------------------------------------

def figure4_edge_distribution(
    workload_name: str,
    scale: float | None = None,
    support_size: int | None = None,
    num_bins: int = 12,
) -> FigureData:
    """Histogram of hyperedge sizes (Figures 4a–4d)."""
    _, _, hypergraph = workload_hypergraph(workload_name, scale, support_size)
    sizes = hypergraph.edge_sizes()
    max_size = int(sizes.max()) if len(sizes) else 0
    bins = np.linspace(0, max(max_size, 1), num_bins + 1)
    counts, edges = np.histogram(sizes, bins=bins)
    rows = [
        [f"[{edges[i]:.0f}, {edges[i + 1]:.0f})", int(counts[i])]
        for i in range(len(counts))
    ]
    text = format_table(
        ["hyperedge size", "#hyperedges"],
        rows,
        title=f"{hypergraph.num_edges} queries, {workload_name} workload",
    )
    return FigureData(
        figure_id=f"fig4-{workload_name}",
        title=f"Hyperedge size distribution ({workload_name})",
        text=text,
        data={"sizes": sizes, "counts": counts, "bin_edges": edges},
    )


def table3_hypergraph_characteristics(
    scale_overrides: dict[str, float] | None = None,
    support_size: int | None = None,
) -> FigureData:
    """Table 3: # queries, max degree B, average edge size per workload."""
    rows = []
    stats: dict[str, HypergraphStats] = {}
    for name in ("uniform", "skewed", "ssb", "tpch"):
        scale = (scale_overrides or {}).get(name)
        _, _, hypergraph = workload_hypergraph(name, scale, support_size)
        summary = hypergraph.stats()
        stats[name] = summary
        rows.append(
            [
                name,
                summary.num_edges,
                summary.max_degree,
                f"{summary.avg_edge_size:.2f}",
            ]
        )
    text = format_table(
        ["Query Workload", "# Queries (m)", "Max degree (B)", "Avg edge size"],
        rows,
        title="Table 3: Hypergraph Characteristics",
    )
    return FigureData("table3", "Hypergraph characteristics", text, {"stats": stats})


# ---------------------------------------------------------------------------
# Figures 5/6: sampled and scaled valuations
# ---------------------------------------------------------------------------

UNIFORM_KS = (100, 200, 300, 400, 500)
ZIPF_AS = (1.5, 1.75, 2.0, 2.25, 2.5)
SCALE_KS = (2.0, 1.5, 1.0, 0.5, 0.25)
ADDITIVE_KS = (1, 10, 100, 1000, 5000, 10000)


def _sweep_figure(
    figure_id: str,
    workload_name: str,
    models,
    parameter_label: str,
    fast: bool,
    scale: float | None,
    support_size: int | None,
    repetitions: int,
    seed: int = 1,
) -> FigureData:
    _, _, hypergraph = workload_hypergraph(workload_name, scale, support_size)
    points = run_parameter_sweep(
        hypergraph,
        models,
        _suite(fast=fast),
        seed=seed,
        repetitions=repetitions,
    )
    parameters, series = sweep_series(points)
    text = format_series_table(
        parameter_label,
        parameters,
        series,
        title=f"{hypergraph.num_edges} queries, {workload_name} workload",
    )
    return FigureData(
        figure_id,
        f"normalized revenue vs {parameter_label} ({workload_name})",
        text,
        {"points": points, "series": series, "parameters": parameters},
    )


def figure5a_uniform(workload_name: str, fast: bool = True, scale: float | None = None,
                     support_size: int | None = None, repetitions: int = 1) -> FigureData:
    """Figure 5a/6a, left panels: v ~ Uniform[1, k]."""
    models = [(f"k={k}", UniformValuations(k)) for k in UNIFORM_KS]
    return _sweep_figure(
        f"fig5a-uniform-{workload_name}", workload_name, models,
        "Uniform[1,k]", fast, scale, support_size, repetitions,
    )


def figure5a_zipf(workload_name: str, fast: bool = True, scale: float | None = None,
                  support_size: int | None = None, repetitions: int = 1) -> FigureData:
    """Figure 5a/6a, right panels: v ~ zipf(a)."""
    models = [(f"a={a}", ZipfValuations(a)) for a in ZIPF_AS]
    return _sweep_figure(
        f"fig5a-zipf-{workload_name}", workload_name, models,
        "parameter a", fast, scale, support_size, repetitions,
    )


def figure5b_exponential(workload_name: str, fast: bool = True, scale: float | None = None,
                         support_size: int | None = None, repetitions: int = 1) -> FigureData:
    """Figure 5b/6b: v ~ Exponential(mean = |e|^k)."""
    models = [(f"k={k}", ExponentialScaledValuations(k)) for k in SCALE_KS]
    return _sweep_figure(
        f"fig5b-exp-{workload_name}", workload_name, models,
        "beta=|e|^k", fast, scale, support_size, repetitions,
    )


def figure5b_normal(workload_name: str, fast: bool = True, scale: float | None = None,
                    support_size: int | None = None, repetitions: int = 1) -> FigureData:
    """Figure 5b/6b: v ~ Normal(|e|^k, 10)."""
    models = [(f"k={k}", NormalScaledValuations(k)) for k in SCALE_KS]
    return _sweep_figure(
        f"fig5b-normal-{workload_name}", workload_name, models,
        "N(|e|^k,10)", fast, scale, support_size, repetitions,
    )


def figure7_additive(workload_name: str, assigner: str = "uniform", fast: bool = True,
                     scale: float | None = None, support_size: int | None = None,
                     repetitions: int = 1) -> FigureData:
    """Figures 7a/7b: additive item-level valuations."""
    models = [
        (f"k={k}", AdditiveValuations(k, assigner=assigner)) for k in ADDITIVE_KS
    ]
    label = "D~ unif[1,k]" if assigner == "uniform" else "D~ bin(k,0.5)"
    return _sweep_figure(
        f"fig7-{assigner}-{workload_name}", workload_name, models,
        label, fast, scale, support_size, repetitions,
    )


# ---------------------------------------------------------------------------
# Figure 8 + Tables 5/6: support-size sweeps
# ---------------------------------------------------------------------------

def figure8_support_sweep(
    workload_name: str,
    support_sizes: tuple[int, ...] = (100, 200, 400, 800),
    valuation_k: float = 100.0,
    fast: bool = True,
    scale: float | None = None,
    seed: int = 1,
) -> FigureData:
    """Figure 8: revenue vs support size under Uniform[1, 100].

    The largest size's support is sampled once and prefix-restricted, so
    smaller supports are strict subsets (isolating the granularity effect).
    """
    workload, support, _ = workload_hypergraph(
        workload_name, scale, max(support_sizes)
    )
    algorithms = _suite(fast=fast)
    parameters: list[object] = []
    series: dict[str, list[float]] = {}
    runtimes: dict[int, dict[str, float]] = {}
    for size in support_sizes:
        restricted = support.restrict(size)
        hypergraph = ConflictSetEngine(restricted).build_hypergraph(workload.queries)
        model = UniformValuations(valuation_k)
        instance = model.instance(hypergraph, rng=np.random.default_rng(seed))
        outcome = run_algorithms(instance, algorithms, compute_bound=False)
        parameters.append(f"|S|={size}")
        for name in outcome.results:
            series.setdefault(name, []).append(outcome.normalized(name))
        runtimes[size] = outcome.runtimes()
    text = format_series_table(
        "support set size",
        parameters,
        series,
        title=f"{workload.num_queries} queries, {workload_name}; uniform[1,{valuation_k:g}]",
    )
    return FigureData(
        f"fig8-{workload_name}",
        f"revenue vs support size ({workload_name})",
        text,
        {"series": series, "runtimes": runtimes, "sizes": support_sizes},
    )


# ---------------------------------------------------------------------------
# Table 4: runtimes per workload
# ---------------------------------------------------------------------------

def table4_runtimes(
    workload_names: tuple[str, ...] = ("skewed", "uniform", "ssb", "tpch"),
    fast: bool = True,
    valuation_k: float = 100.0,
    seed: int = 1,
) -> FigureData:
    """Table 4: per-algorithm wall-clock per workload (our hardware)."""
    algorithms = _suite(fast=fast)
    headers = ["Query Workload"] + [algorithm.name for algorithm in algorithms]
    rows = []
    raw: dict[str, dict[str, float]] = {}
    for name in workload_names:
        _, _, hypergraph = workload_hypergraph(name)
        model = UniformValuations(valuation_k)
        instance = model.instance(hypergraph, rng=np.random.default_rng(seed))
        outcome = run_algorithms(instance, algorithms, compute_bound=False)
        raw[name] = outcome.runtimes()
        rows.append([name] + [f"{raw[name][a.name]:.2f}" for a in algorithms])
    text = format_table(headers, rows, title="Table 4: algorithm runtimes (seconds)")
    return FigureData("table4", "Algorithm running times", text, {"runtimes": raw})


def support_runtime_table(
    workload_name: str,
    support_sizes: tuple[int, ...] = (100, 200, 400, 800),
    include_construction: bool = True,
    fast: bool = True,
    valuation_k: float = 100.0,
    seed: int = 1,
) -> FigureData:
    """Tables 5/6: runtimes as a function of support size.

    Table 5 (skewed) includes hypergraph-construction time; Table 6 (SSB)
    excludes it — we expose both via ``include_construction``.
    """
    workload, support, _ = workload_hypergraph(workload_name, None, max(support_sizes))
    algorithms = _suite(fast=fast)
    headers = ["Support Set Size"] + [a.name for a in algorithms]
    if include_construction:
        headers.append("construction")
    rows = []
    raw: dict[int, dict[str, float]] = {}
    for size in support_sizes:
        restricted = support.restrict(size)
        start = time.perf_counter()
        hypergraph = ConflictSetEngine(restricted).build_hypergraph(workload.queries)
        construction = time.perf_counter() - start
        model = UniformValuations(valuation_k)
        instance = model.instance(hypergraph, rng=np.random.default_rng(seed))
        outcome = run_algorithms(instance, algorithms, compute_bound=False)
        raw[size] = dict(outcome.runtimes())
        raw[size]["construction"] = construction
        row = [f"|S| = {size}"] + [f"{raw[size][a.name]:.2f}" for a in algorithms]
        if include_construction:
            row.append(f"{construction:.2f}")
        rows.append(row)
    table_id = "table5" if include_construction else "table6"
    text = format_table(
        headers,
        rows,
        title=f"{table_id}: runtimes vs support size ({workload_name})",
    )
    return FigureData(table_id, f"runtimes vs |S| ({workload_name})", text, {"runtimes": raw})


# ---------------------------------------------------------------------------
# Conflict-backend comparison (beyond the paper: systems scaling)
# ---------------------------------------------------------------------------

def backend_comparison(
    workload_name: str = "uniform",
    backends: tuple[str, ...] = ("naive", "incremental", "vectorized", "auto"),
    scale: float | None = None,
    support_size: int | None = None,
    num_queries: int | None = None,
    seed: int = 0,
) -> FigureData:
    """Hypergraph-construction time per conflict backend on one workload.

    Runs every backend over the same support set and query list (parity is
    asserted — identical hyperedges), reporting wall-clock seconds and the
    speedup relative to ``naive``. The uniform workload is the headline:
    its flat selection queries are fully vectorizable.
    """
    default_scale, default_support = DEFAULT_SCALES[workload_name]
    workload = _cached_workload(
        workload_name, scale if scale is not None else default_scale
    )
    support = workload.support(
        size=support_size if support_size is not None else default_support,
        seed=seed,
        mode="row",
    )
    queries = (
        workload.queries
        if num_queries is None
        else workload.queries[:num_queries]
    )
    builds = time_hypergraph_builds(support, queries, backends)
    by_name = {build.backend: build for build in builds}
    return _backend_comparison_figure(
        builds,
        reference=by_name.get("naive", builds[0]),
        figure_id=f"backend-comparison-{workload_name}",
        title=f"conflict backend construction times ({workload_name})",
        table_title=(
            f"{len(queries)} queries, |S|={len(support)}, "
            f"{workload_name} workload"
        ),
    )


def _hypergraph_stat_summary(hypergraph: Hypergraph) -> dict[str, float]:
    """The n/m/k/B row every machine-readable benchmark artifact carries."""
    stats = hypergraph.stats()
    return {
        "n": stats.num_items,
        "m": stats.num_edges,
        "k": stats.max_edge_size,
        "B": stats.max_degree,
        "avg_edge_size": stats.avg_edge_size,
        "num_empty_edges": stats.num_empty_edges,
    }


def _backend_comparison_figure(
    builds, reference, figure_id: str, title: str, table_title: str
) -> FigureData:
    """Assemble the speedup table + artifact shared by the comparisons."""
    rows = []
    speedups: dict[str, float] = {}
    for build in builds:
        speedup = (
            reference.seconds / build.seconds if build.seconds > 0 else float("inf")
        )
        speedups[build.backend] = speedup
        rows.append([build.backend, f"{build.seconds:.3f}", f"{speedup:.1f}x"])
    text = format_table(
        ["conflict backend", "construction (s)", f"speedup vs {reference.backend}"],
        rows,
        title=table_title,
    )
    return FigureData(
        figure_id,
        title,
        text,
        {
            "seconds": {build.backend: build.seconds for build in builds},
            "speedups": speedups,
            "speedup_reference": reference.backend,
            "edges": builds[0].hypergraph.num_edges,
            "stats": _hypergraph_stat_summary(builds[0].hypergraph),
            # Exportable via export_runtimes_csv (row per backend).
            "runtimes": {
                build.backend: {"construction": build.seconds} for build in builds
            },
            "diagnostics": {
                build.backend: build.diagnostics for build in builds
            },
        },
    )


def join_backend_comparison(
    workload_name: str = "ssb",
    backends: tuple[str, ...] = ("incremental", "vectorized", "auto"),
    scale: float | None = None,
    support_size: int | None = None,
    num_queries: int | None = None,
    template: str | None = None,
    num_tables: int = 2,
    having_min: int | None = None,
    seed: int = 0,
) -> FigureData:
    """Backend comparison restricted to the ``num_tables``-way join templates.

    The paper's SSB/TPC-H workloads are join-heavy; this figure times
    hypergraph construction over exactly the ``num_tables``-table join
    queries (the shapes the vectorized join kernels cover: per-side delta
    tensors plus cascaded hash-index probes through the left-deep levels).
    ``template`` further restricts to queries containing the given substring
    — e.g. ``"count(*)"`` isolates the SSB city template. ``having_min``
    restricts to the grouped templates and appends
    ``having count(*) >= having_min`` to each, exercising the HAVING
    visibility-mask kernel. ``naive`` is left out of the default backend
    list — re-executing a join per candidate is so slow it would dominate
    the run without adding information; the interesting ratio is vectorized
    vs the incremental checkers.
    """
    from repro.db.query import sql_query

    default_scale, default_support = DEFAULT_SCALES[workload_name]
    workload = _cached_workload(
        workload_name, scale if scale is not None else default_scale
    )
    join_queries = [
        query
        for query in workload.queries
        if len(query.referenced_tables) == num_tables
        and (template is None or template in query.text)
    ]
    flavor = f"{num_tables}-table join"
    if having_min is not None:
        join_queries = [
            sql_query(
                f"{query.text} having count(*) >= {having_min}",
                workload.database,
            )
            for query in join_queries
            if "group by" in query.text.lower()
        ]
        flavor += f" having count(*) >= {having_min}"
    queries = (
        join_queries if num_queries is None else join_queries[:num_queries]
    )
    support = workload.support(
        size=support_size if support_size is not None else default_support,
        seed=seed,
        mode="row",
    )
    builds = time_hypergraph_builds(support, queries, backends)
    suffix = "-join" if num_tables == 2 else f"-join{num_tables}"
    if having_min is not None:
        suffix += "-having"
    return _backend_comparison_figure(
        builds,
        reference=builds[0],
        figure_id=f"backend-comparison-{workload_name}{suffix}",
        title=f"conflict backend construction times ({workload_name} {flavor} templates)",
        table_title=(
            f"{len(queries)} {flavor} queries, |S|={len(support)}, "
            f"{workload_name} workload"
        ),
    )


def template_cache_speedup(
    workload_name: str = "ssb",
    scale: float | None = None,
    support_size: int | None = None,
    num_queries: int | None = None,
    num_requests: int = 700,
    zipf_s: float = 1.1,
    seed: int = 0,
) -> FigureData:
    """Miss-path plan resolution with vs without the template cache.

    A pricing service's expensive misses are *new literal variants* of known
    templates: they miss the canonical quote cache and hit the conflict
    backend's plan-resolution path. With the shape-keyed
    :class:`~repro.service.cache.TemplateCache`, the Nth variant of a
    template binds its literal vector into the cached compiled plan instead
    of re-matching the shape's kernels and recompiling every closure.

    This figure replays the same Zipf-repeated stream of workload queries —
    each request planned fresh, as service text arrives — through two vectorized
    backends over one support set: template cache enabled vs disabled
    (capacity 0, every lookup a miss). Only plan resolution is timed; the
    artifact carries the cache counters that prove the hit path served the
    enabled run.
    """
    from repro.db.query import sql_query
    from repro.qirana.vectorized import VectorizedBackend

    default_scale, default_support = DEFAULT_SCALES[workload_name]
    workload = _cached_workload(
        workload_name, scale if scale is not None else default_scale
    )
    texts = [query.text for query in workload.queries]
    if num_queries is not None:
        texts = texts[:num_queries]
    support = workload.support(
        size=support_size if support_size is not None else default_support,
        seed=seed,
        mode="row",
    )
    rng = np.random.default_rng(seed)
    if zipf_s > 0:
        weights = 1.0 / np.arange(1, len(texts) + 1) ** zipf_s
        weights /= weights.sum()
        schedule = rng.choice(len(texts), size=num_requests, p=weights)
    else:
        schedule = rng.integers(0, len(texts), size=num_requests)

    # Every request is planned fresh (a service quotes *text*), so the
    # per-Query-object plan memo cannot serve repeats — only the
    # fingerprint-keyed template cache can.
    requests = [sql_query(texts[int(index)], workload.database) for index in schedule]

    seconds: dict[str, float] = {}
    stats: dict[str, dict] = {}
    for label, cache_size in (("uncached", 0), ("cached", None)):
        backend = (
            VectorizedBackend(support, template_cache_size=cache_size)
            if cache_size is not None
            else VectorizedBackend(support)
        )
        start = time.perf_counter()
        for query in requests:
            backend.batch_plan(query)
        seconds[label] = time.perf_counter() - start
        stats[label] = backend.template_stats()

    speedup = (
        seconds["uncached"] / seconds["cached"]
        if seconds["cached"] > 0
        else float("inf")
    )
    cached = stats["cached"]
    rows = [
        ["uncached (capacity 0)", f"{seconds['uncached']:.3f}", "1.0x"],
        ["cached", f"{seconds['cached']:.3f}", f"{speedup:.1f}x"],
    ]
    text = format_table(
        ["template cache", "plan resolution (s)", "speedup"],
        rows,
        title=(
            f"{num_requests} requests over {len(texts)} distinct queries "
            f"(zipf s={zipf_s:g}), |S|={len(support)}, "
            f"{workload_name} workload"
        ),
    )
    text += (
        f"\ntemplate cache: hit rate {cached['hit_rate']:.1%} "
        f"({cached['hits']} hits / {cached['misses']} misses, "
        f"{cached['evictions']} evictions)"
    )
    return FigureData(
        f"template-cache-{workload_name}",
        f"shape-keyed template cache: miss-path plan resolution ({workload_name})",
        text,
        {
            "seconds": seconds,
            "speedups": {"cached": speedup},
            "speedup_reference": "uncached",
            "stats": {
                "requests": num_requests,
                "distinct_queries": len(texts),
                "zipf_s": zipf_s,
                "support": len(support),
            },
            "diagnostics": {"template_cache": stats},
        },
    )


def update_churn_speedup(
    workload_name: str = "uniform",
    scale: float | None = None,
    support_size: int = 400,
    num_queries: int = 30,
    num_steps: int = 24,
    seed: int = 0,
) -> FigureData:
    """Incremental delta maintenance vs rebuild-from-scratch on a churn stream.

    A live market absorbs a stream of online deltas (base-cell patches,
    support adds/retires, base-row inserts) through
    :meth:`~repro.qirana.broker.QueryMarket.apply_delta`: the support set
    mutates in place, only bundles whose referenced columns intersect the
    delta's footprint are recomputed, and changed edges are tombstoned +
    appended in the live CSR hypergraph. The rebuild control re-derives the
    whole market after every delta — fresh support indexes and delta
    tensors, fresh conflict engine, full hypergraph over every tracked
    query — which is what a system without incremental maintenance must do.

    After every step the two markets are compared query-by-query: prices
    must be *bit-equal* (``==`` on float64, not approximate) and bundles
    identical, or the figure raises. A third, untimed pass replays the same
    stream through a :class:`~repro.service.PricingService` to prove the
    surgical cache invalidation keeps footprint-disjoint quote entries warm:
    the artifact carries the hit/drop counters.
    """
    import itertools

    from repro.core.pricing import extend_pricing
    from repro.db.schema import ColumnType
    from repro.delta import (
        AddInstance,
        InsertBaseRows,
        PatchBase,
        RetireInstances,
        apply_to_support,
        validate_op,
    )
    from repro.exceptions import DeltaValidationError, ExperimentError
    from repro.qirana.broker import QueryMarket
    from repro.qirana.weighted import uniform_calibrated_pricing
    from repro.service import PricingService
    from repro.support.delta import CellDelta

    default_scale, _ = DEFAULT_SCALES[workload_name]
    resolved_scale = scale if scale is not None else default_scale
    # Three independent copies of the workload: deltas mutate the base
    # database in place, so the process-wide ``_cached_workload`` databases
    # must never be handed to this figure.
    live_workload = get_workload(workload_name, scale=resolved_scale)
    oracle_workload = get_workload(workload_name, scale=resolved_scale)
    service_workload = get_workload(workload_name, scale=resolved_scale)
    texts = [query.text for query in live_workload.queries[:num_queries]]

    live_support = live_workload.support(size=support_size, seed=seed, mode="row")
    # The oracle shares the live run's *frozen instance objects*: the
    # sampler draws values from base cells, so regenerating instances over
    # the mutated base would describe a different market entirely.
    orig_instances = list(live_support.instances)
    base_pricing = uniform_calibrated_pricing(live_support, 100.0)

    market = QueryMarket(live_support)
    market.set_pricing(base_pricing)
    market.build_hypergraph(texts)

    # The oracle's persistent support only *carries* the mutations between
    # steps; each timed rebuild starts from a fresh SupportSet so the
    # control pays the full cost (indexes, delta tensors, conflict sets).
    oracle_db = oracle_workload.database
    oracle_state = SupportSet(oracle_db, list(orig_instances))
    oracle_pricing = base_pricing

    tables = [
        name
        for name in live_support.base.table_names
        if len(live_support.base.table(name)) > 0
    ]
    rng = np.random.default_rng(seed + 1)
    ticks = itertools.count(1)

    def bumped(dtype: ColumnType, current):
        """A fresh value of ``dtype`` guaranteed to differ from ``current``."""
        tick = next(ticks)
        if dtype is ColumnType.INT:
            return (int(current) if isinstance(current, int) else 0) + tick
        if dtype is ColumnType.FLOAT:
            base = float(current) if isinstance(current, (int, float)) else 0.0
            return base + tick + 0.5
        return f"{current}~{tick}" if isinstance(current, str) else f"churn-{tick}"

    def draw_patch() -> PatchBase:
        for _ in range(64):
            table = tables[int(rng.integers(len(tables)))]
            relation = live_support.base.table(table)
            column = relation.schema.columns[
                int(rng.integers(len(relation.schema.columns)))
            ]
            row = int(rng.integers(len(relation)))
            op = PatchBase(
                table, row, column.name,
                bumped(column.dtype, relation.cell(row, column.name)),
            )
            try:
                validate_op(op, live_support)
            except DeltaValidationError:
                continue
            return op
        raise ExperimentError("could not draw a valid base patch in 64 tries")

    def draw_add() -> AddInstance:
        for _ in range(64):
            donor = orig_instances[int(rng.integers(len(orig_instances)))]
            deltas = tuple(
                CellDelta(
                    delta.table,
                    delta.row_index,
                    delta.column,
                    bumped(
                        live_support.base.table(delta.table)
                        .schema.column(delta.column)
                        .dtype,
                        delta.value,
                    ),
                )
                for delta in donor.deltas
            )
            op = AddInstance(deltas)
            try:
                validate_op(op, live_support)
            except DeltaValidationError:
                continue
            return op
        raise ExperimentError("could not draw a valid add_instance in 64 tries")

    def draw_retire() -> RetireInstances | PatchBase:
        live_ids = [
            instance_id
            for instance_id in range(len(live_support))
            if instance_id not in live_support.retired_ids
        ]
        if len(live_ids) <= support_size // 2:
            return draw_patch()  # keep the market populated
        return RetireInstances((live_ids[int(rng.integers(len(live_ids)))],))

    def draw_insert() -> InsertBaseRows:
        table = tables[int(rng.integers(len(tables)))]
        schema = live_support.base.table(table).schema
        row = []
        for column in schema.columns:
            tick = next(ticks)
            if column.dtype is ColumnType.INT:
                row.append(10_000_000 + tick)
            elif column.dtype is ColumnType.FLOAT:
                row.append(10_000_000.5 + tick)
            else:
                row.append(f"new-{tick}")
        return InsertBaseRows(table, (tuple(row),))

    drawers = {
        "patch": draw_patch,
        "add": draw_add,
        "retire": draw_retire,
        "insert": draw_insert,
    }
    cycle = ("patch", "add", "patch", "retire", "add", "patch", "insert", "patch")

    ops = []
    kind_counts: dict[str, int] = {}
    incremental_seconds = 0.0
    rebuild_seconds = 0.0
    checks = 0
    for step in range(num_steps):
        op = drawers[cycle[step % len(cycle)]]()
        ops.append(op)
        kind_counts[op.kind] = kind_counts.get(op.kind, 0) + 1

        start = time.perf_counter()
        market.apply_delta(op)
        incremental_seconds += time.perf_counter() - start

        start = time.perf_counter()
        apply_to_support(op, oracle_state)
        if isinstance(op, AddInstance):
            oracle_pricing = extend_pricing(oracle_pricing, len(oracle_state))
        rebuilt = SupportSet(oracle_db, list(oracle_state.instances))
        rebuilt.retire_instances(sorted(oracle_state.retired_ids))
        oracle = QueryMarket(rebuilt)
        oracle.set_pricing(oracle_pricing)
        oracle.build_hypergraph(texts)
        oracle_quotes = [oracle.quote(text) for text in texts]
        rebuild_seconds += time.perf_counter() - start

        # Bit-equality (outside both timings): every quote of the
        # incrementally-maintained market must match the rebuilt oracle's
        # exactly — same bundle, same float64 price.
        for text, expected in zip(texts, oracle_quotes):
            served = market.quote(text)
            if served.bundle != expected.bundle or served.price != expected.price:
                raise ExperimentError(
                    f"divergence at step {step} ({op.kind}) on {text!r}: "
                    f"incremental {served.price!r}/{sorted(served.bundle)} vs "
                    f"rebuild {expected.price!r}/{sorted(expected.bundle)}"
                )
            checks += 1

    # Cache-survival proof (untimed): the same stream through a pricing
    # service. Entries whose referenced columns are disjoint from a delta's
    # footprint must survive it and serve warm hits afterwards.
    service_support = service_workload.support(
        size=support_size, seed=seed, mode="row"
    )
    service_market = QueryMarket(service_support)
    service_market.set_pricing(base_pricing)
    service = PricingService(service_market, start=False)
    for text in texts:
        service.quote(text)
    for op in ops:
        service.apply_delta(op)
        for text in texts:
            service.quote(text)
    quote_stats = service.stats().quotes

    speedup = (
        rebuild_seconds / incremental_seconds
        if incremental_seconds > 0
        else float("inf")
    )
    rows = [
        ["rebuild from scratch", f"{rebuild_seconds:.3f}", "1.0x"],
        ["incremental apply_delta", f"{incremental_seconds:.3f}", f"{speedup:.1f}x"],
    ]
    text = format_table(
        ["maintenance strategy", "churn stream (s)", "speedup"],
        rows,
        title=(
            f"{num_steps} deltas ({', '.join(f'{v} {k}' for k, v in sorted(kind_counts.items()))}) "
            f"over {len(texts)} tracked queries, |S|={support_size}, "
            f"{workload_name} workload"
        ),
    )
    text += (
        f"\nbit-equal checks: {checks} quote comparisons, all exact"
        f"\nquote cache under churn: {quote_stats.hits} hits served by "
        f"surviving entries, {quote_stats.delta_drops} delta-invalidated, "
        f"{quote_stats.misses} misses"
    )
    return FigureData(
        f"updates-churn-{workload_name}",
        f"incremental delta maintenance vs rebuild ({workload_name})",
        text,
        {
            "seconds": {
                "rebuild": rebuild_seconds,
                "incremental": incremental_seconds,
            },
            "speedups": {"incremental": speedup},
            "speedup_reference": "rebuild",
            "stats": {
                "steps": num_steps,
                "queries": len(texts),
                "support": support_size,
                "final_support": len(live_support),
                "retired": len(live_support.retired_ids),
                "kinds": kind_counts,
            },
            "diagnostics": {
                "bit_equal": True,
                "bitequal_checks": checks,
                "quote_cache": quote_stats.as_dict(),
            },
        },
    )


# ---------------------------------------------------------------------------
# Revenue-strategy comparison (beyond the paper: systems scaling)
# ---------------------------------------------------------------------------

def revenue_comparison(
    workload_name: str = "uniform",
    strategies: tuple[str, ...] = ("scalar", "vectorized"),
    algorithm: str = "ascent",
    scale: float | None = None,
    support_size: int | None = None,
    valuation_k: float = 300.0,
    seed: int = 0,
) -> FigureData:
    """Pricing-algorithm wall time per revenue strategy on one workload.

    The revenue twin of :func:`backend_comparison`: the same algorithm runs
    once under each registered :class:`~repro.core.evaluator.RevenueStrategy`
    (revenue parity asserted inside ``time_revenue_sweeps``), reporting wall
    seconds, the speedup relative to the ``scalar`` oracle, and the
    evaluator's kernel counters. The headline is coordinate ascent on the
    uniform workload — its line-search loop is exactly the pricing inner
    loop the CSR engine vectorizes.
    """
    from repro.core.algorithms import get_algorithm

    _, _, hypergraph = workload_hypergraph(workload_name, scale, support_size)
    model = UniformValuations(valuation_k)
    instance = model.instance(hypergraph, rng=np.random.default_rng(seed))
    sweeps = time_revenue_sweeps(
        instance, lambda: get_algorithm(algorithm), strategies
    )
    by_name = {sweep.strategy: sweep for sweep in sweeps}
    reference = by_name.get("scalar", sweeps[0])
    rows = []
    speedups: dict[str, float] = {}
    for sweep in sweeps:
        speedup = (
            reference.seconds / sweep.seconds if sweep.seconds > 0 else float("inf")
        )
        speedups[sweep.strategy] = speedup
        rows.append(
            [
                sweep.strategy,
                f"{sweep.seconds:.3f}",
                f"{speedup:.1f}x",
                f"{sweep.revenue:.2f}",
            ]
        )
    text = format_table(
        [
            "revenue strategy",
            f"{algorithm} (s)",
            f"speedup vs {reference.strategy}",
            "revenue",
        ],
        rows,
        title=(
            f"{instance.num_edges} buyers, |S|={instance.num_items}, "
            f"{workload_name} workload, v~U[1,{valuation_k:g}]"
        ),
    )
    return FigureData(
        f"revenue-comparison-{workload_name}-{algorithm}",
        f"revenue strategy sweep times ({algorithm}, {workload_name})",
        text,
        {
            "algorithm": algorithm,
            "seconds": {sweep.strategy: sweep.seconds for sweep in sweeps},
            "speedups": speedups,
            "speedup_reference": reference.strategy,
            "revenues": {sweep.strategy: sweep.revenue for sweep in sweeps},
            "stats": _hypergraph_stat_summary(hypergraph),
            # Exportable via export_runtimes_csv (row per strategy).
            "runtimes": {
                sweep.strategy: {algorithm: sweep.seconds} for sweep in sweeps
            },
            "diagnostics": {
                sweep.strategy: sweep.diagnostics for sweep in sweeps
            },
        },
    )


# ---------------------------------------------------------------------------
# Pricing-service throughput (beyond the paper: the serving tier)
# ---------------------------------------------------------------------------

def service_throughput(
    workload_name: str = "uniform",
    scale: float | None = None,
    support_size: int | None = None,
    num_queries: int = 120,
    num_requests: int = 2000,
    zipf_s: float = 1.1,
    num_clients: int = 8,
    max_batch_size: int = 32,
    max_batch_delay: float = 0.001,
    full_price: float = 100.0,
    mode: str = "closed",
    arrival_rate: float | None = None,
    seed: int = 0,
) -> FigureData:
    """Micro-batched concurrent quoting vs one-at-a-time ``QueryMarket.quote``.

    The same Zipf-repeated request stream (``num_requests`` requests over
    the workload's first ``num_queries`` queries) is served two ways:

    - **sequential** — a bare :class:`~repro.qirana.broker.QueryMarket`,
      one ``quote`` call at a time (every request re-plans its text; repeats
      hit the raw-text bundle cache but still re-plan and re-price),
    - **service** — a :class:`~repro.service.server.PricingService` under
      ``num_clients`` concurrent closed-loop clients, with the canonical
      quote cache and the micro-batching scheduler in front of the engine.

    Each side gets its own support set sampled with the same seed, so the
    bundles are identical and neither inherits the other's warm delta
    tensors. Price parity across every distinct query is asserted; the
    artifact carries wall times, speedup, throughput, latency percentiles,
    and the cache/batch counters that prove which path served the traffic.
    """
    from repro.exceptions import ExperimentError
    from repro.qirana.broker import QueryMarket
    from repro.qirana.weighted import uniform_calibrated_pricing
    from repro.service.loadgen import LoadProfile, run_load, zipf_schedule
    from repro.service.server import PricingService

    default_scale, default_support = DEFAULT_SCALES[workload_name]
    workload = _cached_workload(
        workload_name, scale if scale is not None else default_scale
    )
    size = support_size if support_size is not None else default_support
    texts = [query.text for query in workload.queries[:num_queries]]

    # Sequential oracle: the plain market, one quote at a time.
    sequential_support = workload.support(size=size, seed=seed, mode="row")
    sequential_market = QueryMarket(sequential_support)
    sequential_market.set_pricing(
        uniform_calibrated_pricing(sequential_support, full_price)
    )
    schedule = zipf_schedule(
        len(texts), num_requests, zipf_s, np.random.default_rng(seed)
    )
    sequential_start = time.perf_counter()
    for index in schedule:
        sequential_market.quote(texts[int(index)])
    sequential_seconds = time.perf_counter() - sequential_start

    # The service: concurrent clients, canonical cache, micro-batching.
    # The profile is validated before the scheduler thread exists, so a bad
    # mode/rate combination cannot leak a running service.
    profile = LoadProfile(
        num_requests=num_requests,
        num_clients=num_clients,
        zipf_s=zipf_s,
        mode=mode,
        arrival_rate=arrival_rate,
        seed=seed,
    )
    service_support = workload.support(size=size, seed=seed, mode="row")
    service = PricingService(
        QueryMarket(service_support),
        max_batch_size=max_batch_size,
        max_batch_delay=max_batch_delay,
    )
    service.install_pricing(uniform_calibrated_pricing(service_support, full_price))
    try:
        report = run_load(service, texts, profile)
        if report.errors:
            raise ExperimentError(
                f"service load run failed: {report.errors} errored requests"
            )
        # Price parity: every distinct query must cost exactly what the
        # sequential oracle charges (same support seed => same bundles).
        for text in texts:
            oracle = sequential_market.quote(text).price
            served = service.quote(text).price
            if served != oracle:
                raise ExperimentError(
                    f"service price {served!r} != sequential price {oracle!r} "
                    f"for {text!r}"
                )
    finally:
        service.close()

    service_seconds = report.duration_seconds
    speedup = sequential_seconds / service_seconds if service_seconds > 0 else float("inf")
    stats = report.service
    rows = [
        [
            "sequential",
            f"{sequential_seconds:.3f}",
            "1.0x",
            f"{num_requests / sequential_seconds:,.0f}",
        ],
        [
            "service",
            f"{service_seconds:.3f}",
            f"{speedup:.1f}x",
            f"{report.throughput_rps:,.0f}",
        ],
    ]
    cache = stats["quote_cache"]
    text = format_table(
        ["quoting path", "wall (s)", "speedup", "req/s"],
        rows,
        title=(
            f"{num_requests} requests over {len(texts)} distinct queries "
            f"(zipf s={zipf_s:g}), {num_clients} clients, |S|={size}, "
            f"{workload_name} workload"
        ),
    )
    text += (
        f"\nquote cache: hit rate {cache['hit_rate']:.1%} "
        f"({cache['hits']} hits / {cache['misses']} misses); "
        f"micro-batches: {stats['batches']} flushed, "
        f"mean size {stats['mean_batch_size']:.1f}, max {stats['max_batch_size']}"
        f"\nlatency: p50 {report.latency.p50_ms:.3f}ms  "
        f"p99 {report.latency.p99_ms:.3f}ms"
    )
    templates = stats.get("template_cache")
    if templates is not None:
        text += (
            f"\ntemplate cache: hit rate {templates['hit_rate']:.1%} "
            f"({templates['hits']} hits / {templates['misses']} misses, "
            f"{templates['evictions']} evictions)"
        )
    return FigureData(
        f"service-throughput-{workload_name}",
        f"pricing-service micro-batched quoting vs sequential ({workload_name})",
        text,
        {
            "seconds": {
                "sequential": sequential_seconds,
                "service": service_seconds,
            },
            "speedups": {"service": speedup},
            "speedup_reference": "sequential",
            "throughput": {
                "sequential_rps": num_requests / sequential_seconds,
                "service_rps": report.throughput_rps,
            },
            "latency": report.latency.as_dict(),
            "stats": {
                "requests": num_requests,
                "distinct_queries": len(texts),
                "zipf_s": zipf_s,
                "clients": num_clients,
                "support": size,
                "mode": profile.mode,
            },
            "diagnostics": {"service": stats},
        },
    )


def sharded_throughput(
    workload_name: str = "uniform",
    scale: float | None = None,
    support_size: int | None = None,
    num_queries: int = 160,
    num_requests: int = 2500,
    zipf_s: float = 0.6,
    num_clients: int = 4,
    shard_counts: tuple[int, ...] = (1, 4),
    cache_capacity: int = 48,
    max_batch_size: int = 32,
    max_batch_delay: float = 0.001,
    max_queue_depth: int | None = 512,
    conflict_backend: str = "auto",
    full_price: float = 100.0,
    mode: str = "closed",
    arrival_rate: float | None = None,
    seed: int = 0,
) -> FigureData:
    """Shard-count scaling of :class:`ShardedPricingService` on one stream.

    The same Zipf-repeated request stream is served at each shard count in
    ``shard_counts`` (every run gets a fresh support sampled with the same
    seed, so instances — and therefore bundles and prices — are identical).
    Cache budgets are **per shard** (``cache_capacity`` quote entries and as
    many partial-bundle entries per shard), which is the deployment reality
    the benchmark models: a shard is a node with a fixed memory budget.

    The stream's distinct-query working set is sized to overflow one
    shard's caches, so the single-shard tier keeps evicting and recomputing
    conflict sets while the four-shard tier holds the working set and
    serves it from cache — throughput scales with *aggregate cache
    capacity*. On multi-core hardware the per-shard schedulers additionally
    compute their (``1/K``-sized) partial conflict sets in parallel; the
    speedup this figure asserts is the cache-capacity term alone, which a
    single-core CI runner already exhibits.

    Price parity is asserted for every distinct query at every shard count
    against the unsharded sequential oracle (a bare ``QueryMarket`` over
    the full support): the scatter/gathered union of per-shard partial
    conflict sets must reproduce the oracle's bundle bit for bit. The
    artifact carries per-shard-count wall times and speedups plus the
    per-shard cache/batch/admission counters (including shed/accept) that
    prove how the traffic was served.
    """
    from repro.exceptions import ExperimentError
    from repro.qirana.broker import QueryMarket
    from repro.qirana.weighted import uniform_calibrated_pricing
    from repro.service.loadgen import LoadProfile, run_load
    from repro.service.sharding import ShardedPricingService

    if not shard_counts:
        raise ExperimentError("shard_counts must name at least one shard count")
    default_scale, default_support = DEFAULT_SCALES[workload_name]
    workload = _cached_workload(
        workload_name, scale if scale is not None else default_scale
    )
    size = support_size if support_size is not None else default_support
    texts = [query.text for query in workload.queries[:num_queries]]
    profile = LoadProfile(
        num_requests=num_requests,
        num_clients=num_clients,
        zipf_s=zipf_s,
        mode=mode,
        arrival_rate=arrival_rate,
        seed=seed,
    )

    # The unsharded parity oracle: a bare market over the full support.
    oracle_support = workload.support(size=size, seed=seed, mode="row")
    oracle = QueryMarket(oracle_support)
    oracle.set_pricing(uniform_calibrated_pricing(oracle_support, full_price))
    oracle_prices = {text: oracle.quote(text).price for text in texts}

    seconds: dict[str, float] = {}
    throughput: dict[str, float] = {}
    diagnostics: dict[str, dict] = {}
    latencies: dict[str, dict] = {}
    reports = {}
    for num_shards in shard_counts:
        support = workload.support(size=size, seed=seed, mode="row")
        service = ShardedPricingService(
            support,
            num_shards=num_shards,
            conflict_backend=conflict_backend,
            max_batch_size=max_batch_size,
            max_batch_delay=max_batch_delay,
            max_queue_depth=max_queue_depth,
            cache_capacity=cache_capacity,
        )
        service.install_pricing(
            uniform_calibrated_pricing(support, full_price)
        )
        label = f"shards={num_shards}"
        try:
            report = run_load(service, texts, profile)
            if report.errors:
                raise ExperimentError(
                    f"{label} load run failed: {report.errors} errored requests"
                )
            # Bit-equal price parity with the unsharded oracle for every
            # distinct query (post-stream quotes may re-scatter on evicted
            # tail entries — the recomputed union must still match).
            for text in texts:
                served = service.quote(text).price
                if served != oracle_prices[text]:
                    raise ExperimentError(
                        f"{label} price {served!r} != oracle price "
                        f"{oracle_prices[text]!r} for {text!r}"
                    )
        finally:
            service.close()
        reports[label] = report
        seconds[label] = report.duration_seconds
        throughput[label] = report.throughput_rps
        diagnostics[label] = report.as_dict()
        latencies[label] = report.latency.as_dict()

    reference = f"shards={shard_counts[0]}"
    speedups = {
        label: seconds[reference] / seconds[label] if seconds[label] > 0 else float("inf")
        for label in seconds
        if label != reference
    }
    rows = []
    for num_shards in shard_counts:
        label = f"shards={num_shards}"
        report = reports[label]
        cache = report.service["quote_cache"]
        rows.append(
            [
                label,
                f"{seconds[label]:.3f}",
                ("1.0x" if label == reference else f"{speedups[label]:.1f}x"),
                f"{throughput[label]:,.0f}",
                f"{cache['hit_rate']:.1%}",
                str(report.service["requests_shed"]),
            ]
        )
    text = format_table(
        ["serving tier", "wall (s)", "speedup", "req/s", "hit rate", "shed"],
        rows,
        title=(
            f"{num_requests} requests over {len(texts)} distinct queries "
            f"(zipf s={zipf_s:g}), {num_clients} clients, |S|={size}, "
            f"cache {cache_capacity}/shard, {workload_name} workload"
        ),
    )
    return FigureData(
        f"sharded-throughput-{workload_name}",
        f"sharded pricing-service scaling ({workload_name})",
        text,
        {
            "seconds": seconds,
            "speedups": speedups,
            "speedup_reference": reference,
            "throughput": throughput,
            "latency": latencies[f"shards={shard_counts[-1]}"],
            "stats": {
                "requests": num_requests,
                "distinct_queries": len(texts),
                "zipf_s": zipf_s,
                "clients": num_clients,
                "support": size,
                "cache_capacity_per_shard": cache_capacity,
                "shard_counts": list(shard_counts),
                "mode": profile.mode,
            },
            "diagnostics": diagnostics,
        },
    )


def http_throughput(
    workload_name: str = "uniform",
    scale: float | None = None,
    support_size: int | None = None,
    num_queries: int = 120,
    num_requests: int = 1500,
    zipf_s: float = 1.1,
    num_clients: int = 8,
    max_batch_size: int = 32,
    max_batch_delay: float = 0.001,
    full_price: float = 100.0,
    mode: str = "closed",
    arrival_rate: float | None = None,
    seed: int = 0,
    max_workers: int = 8,
) -> FigureData:
    """Serving over the wire vs in process: what does HTTP transport cost?

    The same Zipf-repeated stream is replayed twice against two identically
    seeded :class:`~repro.service.server.PricingService` instances:

    - **in-process** — clients call ``service.quote`` directly (the
      :func:`service_throughput` serving path and this figure's oracle),
    - **http** — clients drive a :class:`~repro.service.http.PricingHTTPServer`
      over real loopback sockets through
      :class:`~repro.service.loadgen.HTTPServiceClient` (persistent
      keep-alive connections, one per client thread).

    Bit-equal price parity is asserted for every distinct query: the number
    that crosses the wire must be exactly the number the in-process oracle
    quotes. The tracked ratio is **wire retention** — HTTP throughput as a
    fraction of in-process throughput — a machine-portable number (both
    sides run on the same host) that regresses when the front-end starts
    adding per-request overhead. The ``/metrics`` exposition is scraped and
    parsed after the run, so the artifact also proves the observability
    surface stays machine-readable under load.
    """
    from repro.exceptions import ExperimentError
    from repro.qirana.broker import QueryMarket
    from repro.qirana.weighted import uniform_calibrated_pricing
    from repro.service.http import serve_in_thread
    from repro.service.loadgen import (
        HTTPServiceClient,
        LoadProfile,
        run_load,
    )
    from repro.service.observability import parse_exposition
    from repro.service.server import PricingService

    default_scale, default_support = DEFAULT_SCALES[workload_name]
    workload = _cached_workload(
        workload_name, scale if scale is not None else default_scale
    )
    size = support_size if support_size is not None else default_support
    texts = [query.text for query in workload.queries[:num_queries]]
    profile = LoadProfile(
        num_requests=num_requests,
        num_clients=num_clients,
        zipf_s=zipf_s,
        mode=mode,
        arrival_rate=arrival_rate,
        seed=seed,
    )

    def build_service() -> PricingService:
        support = workload.support(size=size, seed=seed, mode="row")
        service = PricingService(
            QueryMarket(support),
            max_batch_size=max_batch_size,
            max_batch_delay=max_batch_delay,
        )
        service.install_pricing(uniform_calibrated_pricing(support, full_price))
        return service

    # In-process oracle: same tier, no wire.
    inprocess = build_service()
    try:
        inprocess_report = run_load(inprocess, texts, profile)
        if inprocess_report.errors:
            raise ExperimentError(
                f"in-process load run failed: {inprocess_report.errors} "
                f"errored requests"
            )
        oracle_prices = {text: inprocess.quote(text).price for text in texts}
    finally:
        inprocess.close()

    # Over the wire: an identical tier behind the asyncio front-end.
    http_service = build_service()
    server = serve_in_thread(http_service, max_workers=max_workers)
    try:
        client = HTTPServiceClient(*server.address)
        with client:
            http_report = run_load(client, texts, profile)
            if http_report.errors:
                raise ExperimentError(
                    f"http load run failed: {http_report.errors} "
                    f"errored requests"
                )
            # Bit-equal parity: the wire must not perturb a single price.
            for text in texts:
                served = client.quote(text).price
                if served != oracle_prices[text]:
                    raise ExperimentError(
                        f"http price {served!r} != in-process price "
                        f"{oracle_prices[text]!r} for {text!r}"
                    )
            exposition = client.metrics()
    finally:
        server.shutdown()

    samples = parse_exposition(exposition)
    scraped = {
        name: sum(sample.value for sample in family)
        for name, family in samples.items()
        if name.endswith("_total")
    }
    http_stats = http_service.stats().as_dict()

    inprocess_rps = inprocess_report.throughput_rps
    http_rps = http_report.throughput_rps
    retention = http_rps / inprocess_rps if inprocess_rps > 0 else float("inf")
    rows = [
        [
            "in-process",
            f"{inprocess_report.duration_seconds:.3f}",
            f"{inprocess_rps:,.0f}",
            f"{inprocess_report.latency.p50_ms:.3f}",
            f"{inprocess_report.latency.p99_ms:.3f}",
        ],
        [
            "http",
            f"{http_report.duration_seconds:.3f}",
            f"{http_rps:,.0f}",
            f"{http_report.latency.p50_ms:.3f}",
            f"{http_report.latency.p99_ms:.3f}",
        ],
    ]
    text = format_table(
        ["serving path", "wall (s)", "req/s", "p50 (ms)", "p99 (ms)"],
        rows,
        title=(
            f"{num_requests} requests over {len(texts)} distinct queries "
            f"(zipf s={zipf_s:g}), {num_clients} clients, |S|={size}, "
            f"{workload_name} workload"
        ),
    )
    cache = http_stats["quote_cache"]
    text += (
        f"\nwire retention: {retention:.1%} of in-process throughput"
        f"\nhttp-side quote cache: hit rate {cache['hit_rate']:.1%} "
        f"({cache['hits']} hits / {cache['misses']} misses)"
        f"\nmetrics scrape: {len(samples)} families, "
        f"{sum(len(family) for family in samples.values())} samples parsed"
    )
    return FigureData(
        f"http-throughput-{workload_name}",
        f"pricing tier over HTTP vs in process ({workload_name})",
        text,
        {
            "seconds": {
                "in_process": inprocess_report.duration_seconds,
                "http": http_report.duration_seconds,
            },
            "speedups": {"wire_retention": retention},
            "speedup_reference": "in_process",
            "throughput": {
                "in_process_rps": inprocess_rps,
                "http_rps": http_rps,
            },
            "latency": http_report.latency.as_dict(),
            "stats": {
                "requests": num_requests,
                "distinct_queries": len(texts),
                "zipf_s": zipf_s,
                "clients": num_clients,
                "support": size,
                "mode": profile.mode,
            },
            "diagnostics": {
                "in_process": inprocess_report.as_dict(),
                "http": http_report.as_dict(),
                "http_service": http_stats,
                "scraped_counters": scraped,
            },
        },
    )


def multicore_throughput(
    workload_name: str = "uniform",
    scale: float | None = None,
    support_size: int | None = None,
    num_queries: int = 600,
    num_requests: int = 720,
    zipf_s: float = 0.1,
    num_clients: int = 12,
    process_shard_counts: tuple[int, ...] = (1, 2, 4),
    cache_capacity: int = 1024,
    max_batch_size: int = 32,
    max_batch_delay: float = 0.001,
    arrival_rate: float = 2400.0,
    conflict_backend: str = "auto",
    full_price: float = 100.0,
    seed: int = 0,
) -> FigureData:
    """Process-shard scaling of :class:`ProcessShardedPricingService`.

    The same open-loop Zipf stream is served at each process-shard count
    (fresh support per run, same seed — identical instances, bundles, and
    prices). Unlike :func:`sharded_throughput`, which measures *cache
    capacity* scaling, this stream is deliberately miss-heavy with caches
    large enough to never evict: nearly every distinct query pays one
    conflict-set computation, so the bottleneck is worker compute and the
    lever is cores. Every miss scatters to all ``K`` workers, each
    computing conflicts over ``1/K`` of the support in its own process —
    on a multi-core host the per-miss critical path shrinks by ``~K``,
    which is exactly the scaling a GIL-bound thread tier cannot show.

    Parity is asserted at every shard count against the in-process
    :class:`ShardedPricingService` oracle at the *largest* shard count:
    bit-equal prices for every distinct query, identical home-shard
    routing, zero sheds (the admission queue is unbounded here — this
    figure measures compute, not admission policy), zero worker restarts,
    and worker-side batch counters proving the misses were computed in
    the worker processes. ``BENCH_multicore.json`` carries the wall
    times, speedups, and per-shard coordinator + worker counters.
    """
    from repro.exceptions import ExperimentError
    from repro.qirana.weighted import uniform_calibrated_pricing
    from repro.service.loadgen import LoadProfile, run_load
    from repro.service.multicore import ProcessShardedPricingService, fork_available
    from repro.service.sharding import ShardedPricingService

    if not process_shard_counts:
        raise ExperimentError(
            "process_shard_counts must name at least one shard count"
        )
    if not fork_available():
        raise ExperimentError(
            "multicore_throughput requires the fork start method"
        )
    default_scale, default_support = DEFAULT_SCALES[workload_name]
    workload = _cached_workload(
        workload_name, scale if scale is not None else default_scale
    )
    size = support_size if support_size is not None else default_support
    texts = [query.text for query in workload.queries[:num_queries]]
    profile = LoadProfile(
        num_requests=num_requests,
        num_clients=num_clients,
        zipf_s=zipf_s,
        mode="open",
        arrival_rate=arrival_rate,
        seed=seed,
    )

    # The parity oracle is the in-process sharded tier at the top shard
    # count: same partitioning, same routing ring, same scatter/gather
    # algebra — only the execution substrate differs (threads vs
    # processes), so prices and home shards must match bit for bit.
    oracle_support = workload.support(size=size, seed=seed, mode="row")
    oracle = ShardedPricingService(
        oracle_support,
        num_shards=process_shard_counts[-1],
        conflict_backend=conflict_backend,
        max_queue_depth=None,
        start=False,
    )
    oracle.install_pricing(uniform_calibrated_pricing(oracle_support, full_price))
    oracle_prices = {text: oracle.quote(text).price for text in texts}
    oracle_homes = {text: oracle.home_shard(text) for text in texts}
    oracle.close()

    seconds: dict[str, float] = {}
    throughput: dict[str, float] = {}
    diagnostics: dict[str, dict] = {}
    latencies: dict[str, dict] = {}
    reports = {}
    for num_shards in process_shard_counts:
        support = workload.support(size=size, seed=seed, mode="row")
        service = ProcessShardedPricingService(
            support,
            num_shards=num_shards,
            conflict_backend=conflict_backend,
            max_batch_size=max_batch_size,
            max_batch_delay=max_batch_delay,
            max_queue_depth=None,
            cache_capacity=cache_capacity,
        )
        label = f"process_shards={num_shards}"
        try:
            service.install_pricing(
                uniform_calibrated_pricing(support, full_price)
            )
            report = run_load(service, texts, profile)
            if report.errors:
                raise ExperimentError(
                    f"{label} load run failed: {report.errors} errored requests"
                )
            for text in texts:
                served = service.quote(text).price
                if served != oracle_prices[text]:
                    raise ExperimentError(
                        f"{label} price {served!r} != oracle price "
                        f"{oracle_prices[text]!r} for {text!r}"
                    )
                if num_shards == process_shard_counts[-1]:
                    home = service.home_shard(text)
                    if home != oracle_homes[text]:
                        raise ExperimentError(
                            f"{label} routed {text!r} to shard {home}, the "
                            f"in-process oracle to {oracle_homes[text]}"
                        )
            tier = service.stats()
            if tier.worker_restarts:
                raise ExperimentError(
                    f"{label} re-forked {tier.worker_restarts} workers "
                    f"mid-benchmark; the scaling numbers are not comparable"
                )
            if tier.shed:
                raise ExperimentError(
                    f"{label} shed {tier.shed} requests with admission "
                    f"control disabled"
                )
        finally:
            service.close()
        reports[label] = report
        seconds[label] = report.duration_seconds
        throughput[label] = report.throughput_rps
        diagnostics[label] = report.as_dict()
        latencies[label] = report.latency.as_dict()

    reference = f"process_shards={process_shard_counts[0]}"
    speedups = {
        label: seconds[reference] / seconds[label] if seconds[label] > 0 else float("inf")
        for label in seconds
        if label != reference
    }
    rows = []
    for num_shards in process_shard_counts:
        label = f"process_shards={num_shards}"
        report = reports[label]
        cache = report.service["quote_cache"]
        rows.append(
            [
                label,
                f"{seconds[label]:.3f}",
                ("1.0x" if label == reference else f"{speedups[label]:.1f}x"),
                f"{throughput[label]:,.0f}",
                f"{cache['hit_rate']:.1%}",
                str(report.service["worker_restarts"]),
            ]
        )
    text = format_table(
        ["serving tier", "wall (s)", "speedup", "req/s", "hit rate", "restarts"],
        rows,
        title=(
            f"{num_requests} open-loop requests over {len(texts)} distinct "
            f"queries (zipf s={zipf_s:g}, {arrival_rate:g} req/s offered), "
            f"{num_clients} clients, |S|={size}, {workload_name} workload"
        ),
    )
    return FigureData(
        f"multicore-throughput-{workload_name}",
        f"process-per-shard pricing-service scaling ({workload_name})",
        text,
        {
            "seconds": seconds,
            "speedups": speedups,
            "speedup_reference": reference,
            "throughput": throughput,
            "latency": latencies[f"process_shards={process_shard_counts[-1]}"],
            "stats": {
                "requests": num_requests,
                "distinct_queries": len(texts),
                "zipf_s": zipf_s,
                "clients": num_clients,
                "support": size,
                "cache_capacity_per_shard": cache_capacity,
                "process_shard_counts": list(process_shard_counts),
                "arrival_rate": arrival_rate,
                "mode": profile.mode,
                "cpu_count": os.cpu_count(),
            },
            "diagnostics": diagnostics,
        },
    )
