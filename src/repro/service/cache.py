"""Bounded, counter-instrumented caches for the pricing service.

Two layers sit in front of the broker:

- a plan memo (:class:`LRUCache`) from raw request text to its planned query
  and canonical fingerprint — repeat texts skip the SQL parse/plan entirely,
- a quote cache (:class:`QuoteCache`) from canonical fingerprint to the
  served :class:`~repro.qirana.broker.PriceQuote` — textual variants of one
  query share a single entry.

Both are strict LRU with a hard capacity (the broker's raw-text bundle cache
is unbounded; the service layer is where boundedness lives) and count hits,
misses, and evictions. The quote cache is additionally *generation-aware*:
installing a new pricing bumps the generation, and entries stamped with an
older generation are dropped on access (a lazy, O(1) invalidation — no
stop-the-world clear while requests are in flight).

A third cache lives below the broker: the vectorized conflict backend's
:class:`TemplateCache`, keyed by shape fingerprint (canonical form with
literals stripped) and holding compiled batch templates. It reuses the same
LRU/counter machinery, with the stamp supplied by the caller — the support
set's ``data_version`` — so entries compiled against dropped delta tensors
invalidate lazily the same way stale quotes do.

Thread safety: every public method takes the cache's lock; counters and the
LRU order stay consistent under concurrent quoting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass

from repro.exceptions import ServiceError


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of one cache's counters."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int
    stale_drops: int
    generation: int
    #: Entries dropped by surgical (column-level) delta invalidation.
    delta_drops: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the cache was never consulted)."""
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale_drops": self.stale_drops,
            "delta_drops": self.delta_drops,
            "generation": self.generation,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Thread-safe bounded LRU mapping with hit/miss/eviction counters."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ServiceError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stale_drops = 0
        self._delta_drops = 0

    def get(self, key, default=None):
        """Look up ``key``, counting a hit (and refreshing recency) or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key, value) -> None:
        """Insert/refresh ``key``, evicting the least-recently-used overflow."""
        with self._lock:
            self._store(key, value)

    def _store(self, key, value) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                stale_drops=self._stale_drops,
                delta_drops=self._delta_drops,
                generation=self._generation(),
            )

    def _generation(self) -> int:
        return 0


class QuoteCache(LRUCache):
    """LRU quote cache with generation + surgical column-level invalidation.

    Entries are stamped with the pricing generation current when they were
    computed, plus (optionally) the referenced (table, column) pairs of the
    cached query — the footprint the delta subsystem invalidates against.

    Two invalidation paths coexist:

    - :meth:`bump_generation` — the wholesale path: every older entry
      becomes stale and is dropped lazily on access. Kept for restores,
      where no per-entry metadata survives.
    - :meth:`invalidate` — the surgical path used by market deltas *and*
      pricing installs (via :meth:`reprice`): only entries whose referenced
      columns intersect the delta's footprint are dropped (entries without
      metadata drop conservatively), counted as ``delta_drops``. Each call
      advances a *delta epoch*; a bounded history of recent footprints lets
      :meth:`put` decide whether a quote computed before a concurrent
      invalidation is still exact (its columns are disjoint from every
      footprint since) or must be discarded.
    """

    #: How many invalidation footprints to retain for the put-race check.
    INVALIDATION_HISTORY = 64

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._gen = 0
        self._delta_epoch = 0
        #: (epoch, column_pairs, whole_tables) of recent invalidations.
        self._invalidations: deque[tuple[int, frozenset, frozenset]] = deque(
            maxlen=self.INVALIDATION_HISTORY
        )

    @property
    def generation(self) -> int:
        with self._lock:
            return self._gen

    @property
    def delta_epoch(self) -> int:
        with self._lock:
            return self._delta_epoch

    def stamps(self) -> tuple[int, int]:
        """(generation, delta epoch) in one consistent snapshot.

        Captured inside the same critical section that computes a quote so
        :meth:`put` can later decide whether the world moved underneath it.
        """
        with self._lock:
            return self._gen, self._delta_epoch

    def bump_generation(self) -> int:
        """Invalidate every current entry; returns the new generation."""
        with self._lock:
            self._gen += 1
            return self._gen

    def invalidate(
        self,
        column_pairs: frozenset,
        whole_tables: frozenset = frozenset(),
    ) -> int:
        """Surgically drop entries touching the given footprint.

        Entries whose referenced columns intersect ``column_pairs`` (or
        name a table in ``whole_tables``), and entries without metadata,
        are removed eagerly; everything else survives bit-exact (the
        column-pruning lemma: a delta outside a query's referenced columns
        cannot change its conflict set, hence neither its price). Returns
        the number of dropped entries.
        """
        column_pairs = frozenset(column_pairs)
        whole_tables = frozenset(whole_tables)
        with self._lock:
            self._delta_epoch += 1
            self._invalidations.append(
                (self._delta_epoch, column_pairs, whole_tables)
            )
            doomed = [
                key
                for key, (_, columns, _) in self._entries.items()
                if self._footprint_hits(columns, column_pairs, whole_tables)
            ]
            for key in doomed:
                del self._entries[key]
            self._delta_drops += len(doomed)
            return len(doomed)

    @staticmethod
    def _footprint_hits(columns, column_pairs, whole_tables) -> bool:
        if columns is None:
            return True
        if column_pairs and (columns & column_pairs):
            return True
        if whole_tables and any(table in whole_tables for table, _ in columns):
            return True
        return False

    def reprice(self, fn) -> int:
        """Atomically rewrite every entry's value through ``fn`` (installs).

        A pricing install changes prices, not conflict sets, so
        conflict-set-valid entries need re-pricing, not eviction: the
        generation bumps (refusing in-flight puts computed under the old
        pricing) and every entry is re-stamped with ``fn(value)`` under the
        new generation in one critical section. Returns the number of
        repriced entries.
        """
        with self._lock:
            self._gen += 1
            for key, (_, columns, value) in list(self._entries.items()):
                self._entries[key] = (self._gen, columns, fn(value))
            return len(self._entries)

    def get(self, key, default=None):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return default
            generation, _, value = entry
            if generation != self._gen:
                # Stale pricing: drop the entry so the next miss re-quotes
                # under the installed pricing.
                del self._entries[key]
                self._stale_drops += 1
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(
        self,
        key,
        value,
        generation: int | None = None,
        columns: frozenset | None = None,
        delta_epoch: int | None = None,
    ) -> None:
        """Store ``value`` stamped with ``generation`` and its footprint.

        The service captures generation and delta epoch *inside* the same
        market-lock critical section that computed the quote, so a
        concurrent pricing install can never stamp an old price as fresh.
        A quote computed before a concurrent surgical invalidation is kept
        only when its ``columns`` are provably disjoint from every
        footprint invalidated since its epoch; otherwise it is discarded
        (including when the bounded history no longer reaches back far
        enough).
        """
        with self._lock:
            stamp = self._gen if generation is None else generation
            if stamp != self._gen:
                return
            if delta_epoch is not None and delta_epoch != self._delta_epoch:
                if not self._survives_since(columns, delta_epoch):
                    return
            self._store(key, (stamp, columns, value))

    def _survives_since(self, columns, delta_epoch: int) -> bool:
        """Whether a quote from ``delta_epoch`` is still exact now."""
        if columns is None:
            return False
        if self._invalidations:
            oldest = self._invalidations[0][0]
            if oldest > delta_epoch + 1:
                return False  # history truncated: cannot prove disjointness
        elif delta_epoch != self._delta_epoch:
            return False
        for epoch, column_pairs, whole_tables in self._invalidations:
            if epoch <= delta_epoch:
                continue
            if self._footprint_hits(columns, column_pairs, whole_tables):
                return False
        return True

    def entries(self) -> list[tuple[object, object]]:
        """The fresh (current-generation) entries, least-recently-used first.

        This is what a snapshot persists so a restarted tier starts warm;
        stale entries are omitted (they would be dropped on access anyway)
        and counters are untouched.
        """
        with self._lock:
            return [
                (key, value)
                for key, (generation, _, value) in self._entries.items()
                if generation == self._gen
            ]

    def _generation(self) -> int:
        return self._gen


class TemplateCache(LRUCache):
    """LRU cache of compiled query templates, stamped with a data version.

    Unlike :class:`QuoteCache`, the stamp is *caller-supplied* on every
    access (the support set's ``data_version``): the cache has no authority
    over when support-derived state — delta tensors, hash indexes — becomes
    stale, it only refuses to return an entry compiled under a different
    stamp. Stale entries are dropped lazily on lookup and counted as
    ``stale_drops``; a ``capacity`` of 0 disables the cache entirely (every
    lookup is a miss, nothing is stored), which the benchmarks use to
    measure the uncached miss path.
    """

    def __init__(self, capacity: int):
        if capacity == 0:
            # Bypass the >= 1 check: a disabled cache stores nothing.
            super().__init__(1)
            self.capacity = 0
        else:
            super().__init__(capacity)
        self._stamp = 0

    def get(self, key, stamp: int = 0, default=None):
        with self._lock:
            self._stamp = stamp
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return default
            entry_stamp, value = entry
            if entry_stamp != stamp:
                del self._entries[key]
                self._stale_drops += 1
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key, value, stamp: int = 0) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._stamp = stamp
            self._store(key, (stamp, value))

    def _generation(self) -> int:
        return self._stamp
