"""Figure 7b: additive item-level valuations on SSB and TPC-H.

Includes the paper's Section 6.3 post-processing observation: refining the
best uniform bundle price with an item-pricing LP ("ubp+lp") lifts revenue
substantially on TPC-H.
"""

import numpy as np
import pytest

from repro.core.algorithms import UBP, UBPRefine
from repro.experiments.figures import figure7_additive, workload_hypergraph
from repro.valuations import AdditiveValuations

from benchmarks.conftest import save_artifact

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



@pytest.mark.parametrize("workload_name", ["ssb", "tpch"])
@pytest.mark.parametrize("assigner", ["uniform", "binomial"])
def test_fig7b_additive_model(benchmark, workload_name, assigner):
    artifact = benchmark.pedantic(
        figure7_additive,
        args=(workload_name,),
        kwargs={"assigner": assigner},
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]
    for lpip_val, uip_val in zip(series["lpip"], series["uip"]):
        assert lpip_val >= uip_val - 0.05


def test_fig7b_ubp_lp_refinement_boosts_revenue(benchmark):
    """Paper: refining UBP prices via an LP lifted TPC-H from 0.78 to 0.99."""
    _, _, hypergraph = workload_hypergraph("tpch")
    model = AdditiveValuations(k=1, assigner="uniform")
    instance = model.instance(hypergraph, rng=np.random.default_rng(5))

    def run_both():
        plain = UBP().run(instance).revenue
        refined = UBPRefine().run(instance).revenue
        return plain, refined

    plain, refined = benchmark.pedantic(run_both, rounds=1, iterations=1)
    total = instance.total_valuation()
    print(
        f"\nTPC-H additive k=1: UBP={plain / total:.3f} "
        f"-> UBP+LP={refined / total:.3f} normalized"
    )
    assert refined >= plain - 1e-9
