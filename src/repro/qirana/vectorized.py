"""Vectorized conflict-set backend: batch evaluation over delta tensors.

For the plan shapes that dominate the paper's workloads — single-table and
two-table equi-join selection/projection queries and (grouped) aggregates —
whether a support instance changes the answer is a function of the *patched
rows only*:

- **flat** (``[Sort] Project [Filter] <source>``): the bag answer changes iff
  the multiset of contributions induced by the patched rows changes between
  their old and new versions.
- **aggregates** (``Project Aggregate([Filter] <source>)``): per-instance
  deltas are applied against precomputed per-group base state and the
  affected groups' visible output rows compared as multisets. COUNT is always
  exact; SUM/AVG are delta-vectorized over INT columns (float64 accumulation
  of integers below 2**53 is exact); MIN/MAX are decided by an order-statistic
  walk over *sorted-group segments* of the base values; float SUM/AVG over
  grouped single-table plans are recomputed exactly in base row order (the
  same order full re-execution sums in), so every decision matches the naive
  oracle bit for bit.
- **joins**: each side has its own :class:`~repro.support.tensor.TableDeltaTensor`;
  a patched side row's old/new contributions are found by probing a hash
  index over the (filtered) opposite side, and the expanded contribution
  batches are evaluated columnar — array ops instead of per-candidate
  re-execution. Instances patching both sides of a join are re-executed.

All candidates of a query are decided together: their patched rows are
gathered into old/new columnar batches of the query's referenced cells, and
the plan's expressions are evaluated once per batch via
:meth:`~repro.db.expr.Expr.eval_batch`. Queries whose plan shape is not
vectorizable fall back — per query, not per engine — to the incremental
backend. Plan-shape rules are shared with the incremental checkers through
:mod:`repro.qirana.shapes`.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.db.columnar import (
    BatchEvaluator,
    ColumnarBatch,
    ColumnVector,
    build_key_index,
    hash_join_indices,
    key_tuples,
    null_aware_neq,
    truth,
)
from repro.db.database import Database
from repro.db.expr import ColumnRef, Scope
from repro.db.query import Query
from repro.db.schema import ColumnType
from repro.exceptions import QueryError
from repro.qirana.backends import (
    ConflictBackend,
    ConflictComputation,
    IncrementalBackend,
    register_backend,
)
from repro.qirana.shapes import QueryShape, match_shape
from repro.support.generator import SupportSet

#: Aggregate kinds decided purely by vectorized delta arithmetic.
_DELTA_KINDS = frozenset({"count_star", "count", "int_sum", "int_avg"})

#: Aggregate kinds recomputed exactly in base row order per affected group.
_ORDER_KINDS = frozenset({"float_sum", "float_avg"})


@dataclass
class _AggSpec:
    """One compiled aggregate with its decision strategy (``kind``)."""

    func: str  # count / sum / avg / min / max
    kind: str  # count_star | count | int_sum | int_avg | float_sum | float_avg | minmax
    arg_eval: BatchEvaluator | None  # None encodes COUNT(*)
    compared: bool  # referenced by the projection (changes are visible)


# ---------------------------------------------------------------------------
# Contribution sources
# ---------------------------------------------------------------------------


@dataclass
class _Chunk:
    """One batch of contributions: patched rows expanded through the source.

    ``old_instances``/``new_instances`` give the owning instance id per
    contribution (grouped ascending). For single-table sources old and new
    are position-aligned (contribution == patched pair); join expansion
    produces differently sized sides. ``old_rows``/``new_rows`` carry the
    base-contribution position of each contribution for sources that can
    identify it (needed by the exact in-order float recompute).
    """

    old_instances: np.ndarray
    old_batch: ColumnarBatch
    old_pass: np.ndarray
    new_instances: np.ndarray
    new_batch: ColumnarBatch
    new_pass: np.ndarray
    old_rows: np.ndarray | None = None
    new_rows: np.ndarray | None = None
    aligned: bool = False  # old/new are position-aligned pair batches
    #: Join sources: per-pair "positions cannot move" bit — the pair's join
    #: key and side-filter status are unchanged, so its contributions attach
    #: to the same partners at the same output positions. None (single-table
    #: sources) means positions are inherently stable: a row's contribution
    #: sits at its own row position. `pair_instances` aligns the bits.
    pair_instances: np.ndarray | None = None
    pair_stable: np.ndarray | None = None


def _gather_pairs(backend, table, scope, needed_slots, tensor, selected_mask, selected, rows):
    """Old/new columnar batches of the referenced cells of selected pairs."""
    base = backend._table_batch(table)
    schema = backend.base.table(table).schema
    num_slots = scope.arity

    old_columns: list[ColumnVector | None] = [None] * num_slots
    new_columns: list[ColumnVector | None] = [None] * num_slots
    for slot in needed_slots:
        old_columns[slot] = base.columns[slot].take(rows)
        new_columns[slot] = old_columns[slot].copy()

    inverse = np.full(tensor.num_pairs, -1, dtype=np.int64)
    inverse[selected] = np.arange(len(selected), dtype=np.int64)
    for column, patches in tensor.column_patches.items():
        slot = schema.column_index(column)
        vector = new_columns[slot]
        if vector is None:
            continue
        applicable = selected_mask[patches.positions]
        if not applicable.any():
            continue
        local = inverse[patches.positions[applicable]]
        values = patches.values[applicable]
        null = np.fromiter(
            (value is None for value in values), dtype=bool, count=len(values)
        )
        if vector.is_numeric:
            vector.values[local] = np.fromiter(
                (np.nan if value is None else float(value) for value in values),
                dtype=np.float64,
                count=len(values),
            )
        else:
            vector.values[local] = values
        vector.null[local] = null

    num = len(selected)
    return (
        ColumnarBatch(scope, old_columns, num),
        ColumnarBatch(scope, new_columns, num),
    )


class _TableSource:
    """Contributions of a one-table plan: the (filtered) rows themselves."""

    is_join = False

    def __init__(self, base: Database, scan, predicate):
        self.base = base
        self.table = scan.table.lower()
        self.tables = (self.table,)
        self.scope: Scope = scan.output_scope(base)
        self.schema = base.table(scan.table).schema
        self.filter_expr = predicate.predicate if predicate is not None else None
        self.filter_eval = (
            self.filter_expr.eval_batch(self.scope) if self.filter_expr else None
        )
        self.needed_slots: list[int] = []
        self._base_pass: np.ndarray | None = None

    def dtype(self, slot: int) -> ColumnType:
        return self.schema.columns[slot].dtype

    def finalize(self) -> None:
        pass

    def base_contributions(self, backend) -> tuple[ColumnarBatch, np.ndarray]:
        batch = backend._table_batch(self.table)
        if self._base_pass is None:
            self._base_pass = (
                truth(self.filter_eval(batch))
                if self.filter_eval
                else np.ones(batch.num_rows, dtype=bool)
            )
        return batch, self._base_pass

    def pair_data(self, backend, candidate_array):
        """(tensor, instances, rows, old/new pair batches, old/new pass)."""
        tensor = backend.support.delta_tensor(self.table)
        mask, selected = tensor.select_pairs(candidate_array)
        if len(selected) == 0:
            return None
        instances = tensor.pair_instance[selected]
        rows = tensor.pair_row[selected]
        old_batch, new_batch = _gather_pairs(
            backend, self.table, self.scope, self.needed_slots,
            tensor, mask, selected, rows,
        )
        ones = np.ones(len(selected), dtype=bool)
        old_pass = truth(self.filter_eval(old_batch)) if self.filter_eval else ones
        new_pass = (
            truth(self.filter_eval(new_batch)) if self.filter_eval else ones.copy()
        )
        return tensor, instances, rows, old_batch, new_batch, old_pass, new_pass

    def chunks(self, backend, candidate_array) -> tuple[list[_Chunk], list[int]]:
        data = self.pair_data(backend, candidate_array)
        if data is None:
            return [], []
        _, instances, rows, old_batch, new_batch, old_pass, new_pass = data
        chunk = _Chunk(
            instances, old_batch, old_pass,
            instances, new_batch, new_pass,
            old_rows=rows, new_rows=rows, aligned=True,
        )
        return [chunk], []


class _JoinSource:
    """Contributions of a two-table equi-join plan.

    Each side keeps a hash index over its filtered base rows keyed by the
    join key; a patched side row's contributions are found by probing the
    *opposite* index with its old/new key — O(matches) instead of a full
    join — and gathered into columnar batches over the joined scope.
    """

    is_join = True

    def __init__(self, base: Database, shape: QueryShape):
        level = shape.levels[0]
        join = level.join
        sides = (shape.leftmost, level.right)
        self.base = base
        self.tables = tuple(side.table for side in sides)
        self.side_scopes = tuple(side.scan.output_scope(base) for side in sides)
        self.side_schemas = tuple(base.table(side.table).schema for side in sides)
        self.scope: Scope = self.side_scopes[0].concat(self.side_scopes[1])
        self.left_arity = self.side_scopes[0].arity
        self.side_filter_exprs = tuple(
            side.predicate.predicate if side.predicate is not None else None
            for side in sides
        )
        self.side_filter_evals = tuple(
            expr.eval_batch(scope) if expr is not None else None
            for expr, scope in zip(self.side_filter_exprs, self.side_scopes)
        )
        self.side_key_exprs = (list(join.left_keys), list(join.right_keys))
        self.side_key_evals = tuple(
            [key.eval_batch(scope) for key in keys]
            for keys, scope in zip(self.side_key_exprs, self.side_scopes)
        )
        # Column-only join keys resolve to table slots, making the side's
        # key tuples and unfiltered hash index cacheable across queries.
        self.side_key_slots: list[tuple[int, ...] | None] = []
        for keys, scope in zip(self.side_key_exprs, self.side_scopes):
            if all(isinstance(key, ColumnRef) for key in keys):
                self.side_key_slots.append(
                    tuple(scope.resolve(key.qualifier, key.name) for key in keys)
                )
            else:
                self.side_key_slots.append(None)
        self.filter_expr = (
            shape.residual.predicate if shape.residual is not None else None
        )
        self.filter_eval = (
            self.filter_expr.eval_batch(self.scope) if self.filter_expr else None
        )
        self.needed_slots: list[int] = []  # joined-scope slots, set by compile
        self._side_needed: tuple[list[int], list[int]] | None = None
        self._state: dict | None = None

    def dtype(self, slot: int) -> ColumnType:
        if slot < self.left_arity:
            return self.side_schemas[0].columns[slot].dtype
        return self.side_schemas[1].columns[slot - self.left_arity].dtype

    def finalize(self) -> None:
        """Split joined needed slots per side; add key/side-filter slots."""
        side_needed: list[set[int]] = [set(), set()]
        for slot in self.needed_slots:
            if slot < self.left_arity:
                side_needed[0].add(slot)
            else:
                side_needed[1].add(slot - self.left_arity)
        for side in (0, 1):
            expressions = list(self.side_key_exprs[side])
            if self.side_filter_exprs[side] is not None:
                expressions.append(self.side_filter_exprs[side])
            for expression in expressions:
                for qualifier, column in expression.referenced_columns():
                    side_needed[side].add(
                        self.side_scopes[side].resolve(qualifier, column)
                    )
        self._side_needed = (sorted(side_needed[0]), sorted(side_needed[1]))

    # -- base-side state ----------------------------------------------------

    def _prepare(self, backend) -> dict:
        if self._state is not None:
            return self._state
        batches = [backend._table_batch(table) for table in self.tables]
        passes = []
        keys = []
        indexes = []
        for side in (0, 1):
            evaluate = self.side_filter_evals[side]
            passing = (
                truth(evaluate(batches[side]))
                if evaluate
                else np.ones(batches[side].num_rows, dtype=bool)
            )
            passes.append(passing)
            slots = self.side_key_slots[side]
            if slots is not None:
                # Key tuples (and, for unfiltered sides, the hash index) are
                # a property of the table and key columns alone — shared
                # across every query of the workload via the backend cache.
                side_keys, unfiltered_index = backend._join_key_cache(
                    self.tables[side], slots
                )
            else:
                side_keys = key_tuples(
                    [ev(batches[side]) for ev in self.side_key_evals[side]]
                )
                unfiltered_index = None
            keys.append(side_keys)
            if evaluate is None and unfiltered_index is not None:
                indexes.append(unfiltered_index)
            else:
                indexes.append(build_key_index(side_keys, passing))
        # Enumerate the base join by probing the side with fewer passing
        # rows (base contribution order is irrelevant to the kernels: the
        # grouped state is order-insensitive for joins, and per-instance
        # comparisons never mix base order in).
        counts = [int(passes[side].sum()) for side in (0, 1)]
        probe = 0 if counts[0] <= counts[1] else 1
        probe_rows, match_rows = hash_join_indices(
            keys[probe], indexes[1 - probe], passes[probe]
        )
        if probe == 0:
            left_rows, right_rows = probe_rows, match_rows
        else:
            left_rows, right_rows = match_rows, probe_rows
        base_batch = self._joined_batch(0, batches[0], left_rows, right_rows, batches[1])
        base_pass = (
            truth(self.filter_eval(base_batch))
            if self.filter_eval
            else np.ones(base_batch.num_rows, dtype=bool)
        )
        self._state = {
            "batches": batches,
            "indexes": indexes,
            "base_batch": base_batch,
            "base_pass": base_pass,
        }
        return self._state

    def _joined_batch(self, side, side_batch, side_positions, opp_positions, opp_batch):
        """Joined-scope batch: patched-side rows + matching opposite rows."""
        columns: list[ColumnVector | None] = [None] * self.scope.arity
        side_offset = 0 if side == 0 else self.left_arity
        opp_offset = self.left_arity if side == 0 else 0
        for slot in self._side_needed[side]:
            columns[side_offset + slot] = side_batch.columns[slot].take(side_positions)
        for slot in self._side_needed[1 - side]:
            columns[opp_offset + slot] = opp_batch.columns[slot].take(opp_positions)
        return ColumnarBatch(self.scope, columns, len(side_positions))

    def base_contributions(self, backend) -> tuple[ColumnarBatch, np.ndarray]:
        state = self._prepare(backend)
        return state["base_batch"], state["base_pass"]

    # -- per-candidate expansion --------------------------------------------

    def chunks(self, backend, candidate_array) -> tuple[list[_Chunk], list[int]]:
        state = self._prepare(backend)
        tensors = [backend.support.delta_tensor(table) for table in self.tables]
        both = np.intersect1d(
            tensors[0].touched_instances, tensors[1].touched_instances
        )
        both = both[np.isin(both, candidate_array)]
        reexecute = [int(instance) for instance in both]

        chunks: list[_Chunk] = []
        for side in (0, 1):
            tensor = tensors[side]
            mask, selected = tensor.select_pairs(candidate_array)
            if len(selected) and len(both):
                keep = ~np.isin(tensor.pair_instance[selected], both)
                selected = selected[keep]
                mask = np.zeros(tensor.num_pairs, dtype=bool)
                mask[selected] = True
            if len(selected) == 0:
                continue
            instances = tensor.pair_instance[selected]
            rows = tensor.pair_row[selected]
            old_side, new_side = _gather_pairs(
                backend, self.tables[side], self.side_scopes[side],
                self._side_needed[side], tensor, mask, selected, rows,
            )
            ones = np.ones(len(selected), dtype=bool)
            evaluate = self.side_filter_evals[side]
            old_side_pass = truth(evaluate(old_side)) if evaluate else ones
            new_side_pass = truth(evaluate(new_side)) if evaluate else ones.copy()
            old_keys = key_tuples(
                [ev(old_side) for ev in self.side_key_evals[side]]
            )
            new_keys = key_tuples(
                [ev(new_side) for ev in self.side_key_evals[side]]
            )
            stable = np.fromiter(
                (
                    old_keys[position] == new_keys[position]
                    and bool(old_side_pass[position]) == bool(new_side_pass[position])
                    for position in range(len(selected))
                ),
                dtype=bool,
                count=len(selected),
            )
            opp_index = state["indexes"][1 - side]
            opp_batch = state["batches"][1 - side]
            old_pairs, old_opp = hash_join_indices(old_keys, opp_index, old_side_pass)
            new_pairs, new_opp = hash_join_indices(new_keys, opp_index, new_side_pass)
            old_batch = self._joined_batch(side, old_side, old_pairs, old_opp, opp_batch)
            new_batch = self._joined_batch(side, new_side, new_pairs, new_opp, opp_batch)
            old_pass = (
                truth(self.filter_eval(old_batch))
                if self.filter_eval
                else np.ones(old_batch.num_rows, dtype=bool)
            )
            new_pass = (
                truth(self.filter_eval(new_batch))
                if self.filter_eval
                else np.ones(new_batch.num_rows, dtype=bool)
            )
            chunks.append(
                _Chunk(
                    instances[old_pairs], old_batch, old_pass,
                    instances[new_pairs], new_batch, new_pass,
                    pair_instances=instances, pair_stable=stable,
                )
            )
        return chunks, reexecute


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


@dataclass
class _BatchQuery:
    """A query compiled for batch conflict evaluation."""

    kernel: str  # flat | flat_join | scalar | grouped
    source: _TableSource | _JoinSource
    project_evals: list[BatchEvaluator] | None  # flat kernels
    group_evals: list[BatchEvaluator] | None  # grouped kernel
    agg_specs: list[_AggSpec] | None
    project_slots: list[int] | None  # grouped: output-scope slots, projection order
    has_groups: bool = False
    ordered: bool = False  # ORDER BY: the answer is a sequence, not a bag
    base_state: list | None = None  # lazily computed scalar-aggregate state
    grouped_state: "_GroupedState | None" = None  # lazily computed group state


def compile_batch_query(query: Query, base) -> _BatchQuery | None:
    """Compile ``query`` for batch evaluation, or ``None`` if unsupported."""
    shape = match_shape(query.plan)
    if shape is None or shape.having is not None:
        return None
    ordered = shape.ordered or query.ordered

    try:
        if shape.single is not None:
            if not base.has_table(shape.single.scan.table):
                return None
            source: _TableSource | _JoinSource = _TableSource(
                base, shape.single.scan, shape.single.predicate
            )
        else:
            if len(shape.levels) != 1:
                return None  # batch path covers two-table equi-joins only
            join = shape.levels[0].join
            if not join.left_keys or len(join.left_keys) != len(join.right_keys):
                return None
            if not all(base.has_table(table) for table in shape.tables):
                return None
            source = _JoinSource(base, shape)

        needed_expressions = []
        if source.filter_expr is not None:
            needed_expressions.append(source.filter_expr)
        aggregate = shape.aggregate
        project = shape.project

        if aggregate is None:
            project_evals = [
                item.expr.eval_batch(source.scope) for item in project.items
            ]
            needed_expressions.extend(item.expr for item in project.items)
            group_evals = agg_specs = project_slots = None
            kernel = "flat_join" if source.is_join else "flat"
            has_groups = False
        else:
            output_scope = aggregate.output_scope(base)
            project_slots = []
            for item in project.items:
                # The projection must be a simple column selection over the
                # aggregate's output row — then a change is visible iff a
                # *projected* output column changes.
                if not isinstance(item.expr, ColumnRef):
                    return None
                project_slots.append(
                    output_scope.resolve(item.expr.qualifier, item.expr.name)
                )
            agg_specs = _compile_agg_specs(aggregate, source, project_slots)
            if agg_specs is None:
                return None
            group_evals = [
                item.expr.eval_batch(source.scope) for item in aggregate.group_items
            ]
            needed_expressions.extend(item.expr for item in aggregate.group_items)
            needed_expressions.extend(
                spec.arg for spec in aggregate.aggregates if spec.arg is not None
            )
            has_groups = bool(aggregate.group_items)
            project_evals = None
            if not has_groups and all(
                spec.kind in _DELTA_KINDS for spec in agg_specs
            ):
                kernel = "scalar"
            else:
                kernel = "grouped"

        needed: set[int] = set()
        for expression in needed_expressions:
            for qualifier, column in expression.referenced_columns():
                needed.add(source.scope.resolve(qualifier, column))
        source.needed_slots = sorted(needed)
        source.finalize()
    except QueryError:
        return None

    return _BatchQuery(
        kernel=kernel,
        source=source,
        project_evals=project_evals,
        group_evals=group_evals,
        agg_specs=agg_specs,
        project_slots=project_slots,
        has_groups=has_groups,
        ordered=ordered,
    )


def _compile_agg_specs(aggregate, source, project_slots) -> list[_AggSpec] | None:
    """Compile aggregates with per-spec decision kinds, or ``None``."""
    num_groups = len(aggregate.group_items)
    compared = set(project_slots)
    specs: list[_AggSpec] = []
    for index, spec in enumerate(aggregate.aggregates):
        func = spec.func.lower()
        if spec.distinct:
            return None
        if spec.arg is None:
            if func != "count":
                return None
            kind = "count_star"
            arg_eval = None
        else:
            arg_eval = spec.arg.eval_batch(source.scope)
            if func == "count":
                kind = "count"
            elif func in ("sum", "avg"):
                dtype = None
                if isinstance(spec.arg, ColumnRef):
                    slot = source.scope.resolve(spec.arg.qualifier, spec.arg.name)
                    dtype = source.dtype(slot)
                if dtype is ColumnType.INT:
                    # float64 accumulation of integers is exact (below
                    # 2**53), so incremental deltas agree with re-execution.
                    kind = "int_sum" if func == "sum" else "int_avg"
                elif dtype is ColumnType.TEXT:
                    return None  # the oracle itself raises on text sums
                elif source.is_join or num_groups == 0:
                    # Float accumulation is order-sensitive; exact in-order
                    # recompute is only implemented for grouped single-table
                    # segments (scalar/joined float sums stay incremental).
                    return None
                else:
                    kind = "float_sum" if func == "sum" else "float_avg"
            else:  # min / max
                # Restrict to columns so group values are homogeneous and the
                # order-statistic walk compares like with like.
                if not isinstance(spec.arg, ColumnRef):
                    return None
                kind = "minmax"
        specs.append(
            _AggSpec(
                func=func,
                kind=kind,
                arg_eval=arg_eval,
                compared=(num_groups + index) in compared,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# Grouped base state: sorted-group segments over the base contributions
# ---------------------------------------------------------------------------


class _GroupedState:
    """Per-group base state for the grouped kernel.

    Groups are factorized once over the base contributions; per group the
    state keeps its contribution positions (the *segment*, in base order),
    exact delta-friendly count/sum accumulators, ascending value lists for
    MIN/MAX order statistics, and — for float aggregates — the base output
    computed by summing the segment in base row order (bit-identical to
    re-execution).
    """

    def __init__(self, plan: _BatchQuery, batch: ColumnarBatch, passing: np.ndarray):
        self.plan = plan
        keys = (
            key_tuples([evaluate(batch) for evaluate in plan.group_evals])
            if plan.group_evals
            else [()] * batch.num_rows
        )
        self.key_to_gid: dict[tuple, int] = {}
        self.keys: list[tuple] = []
        positions_by_gid: list[list[int]] = []
        for position in np.nonzero(passing)[0]:
            key = keys[position]
            gid = self.key_to_gid.get(key)
            if gid is None:
                gid = len(self.keys)
                self.key_to_gid[key] = gid
                self.keys.append(key)
                positions_by_gid.append([])
            positions_by_gid[gid].append(int(position))
        self.segments: list[list[int]] = positions_by_gid
        self.counts: list[int] = [len(segment) for segment in positions_by_gid]

        #: Per aggregate: (valid counts, sums, ascending values, arg vector).
        self.valid: list[list[int] | None] = []
        self.sums: list[list[float] | None] = []
        self.sorted_values: list[list[list] | None] = []
        self.vectors: list[ColumnVector | None] = []
        for spec in plan.agg_specs:
            if spec.arg_eval is None:
                self.valid.append(None)
                self.sums.append(None)
                self.sorted_values.append(None)
                self.vectors.append(None)
                continue
            vector = spec.arg_eval(batch)
            self.vectors.append(vector)
            valid: list[int] = []
            sums: list[float] = []
            ordered_values: list[list] = []
            for segment in positions_by_gid:
                values = [
                    vector.value_at(position)
                    for position in segment
                    if not vector.null[position]
                ]
                valid.append(len(values))
                sums.append(float(sum(value for value in values)) if values and spec.kind in ("int_sum", "int_avg") else 0.0)
                ordered_values.append(sorted(values) if spec.kind == "minmax" else [])
            self.valid.append(valid)
            self.sums.append(sums)
            self.sorted_values.append(ordered_values if spec.kind == "minmax" else None)
        self._outputs: dict[int, tuple | None] = {}

    def gid_of(self, key: tuple) -> int:
        """Group id for ``key``, creating an empty group on first sight."""
        gid = self.key_to_gid.get(key)
        if gid is None:
            gid = len(self.keys)
            self.key_to_gid[key] = gid
            self.keys.append(key)
            self.segments.append([])
            self.counts.append(0)
            for index, spec in enumerate(self.plan.agg_specs):
                if self.valid[index] is not None:
                    self.valid[index].append(0)
                    self.sums[index].append(0.0)
                if self.sorted_values[index] is not None:
                    self.sorted_values[index].append([])
        return gid

    def base_output(self, gid: int) -> tuple | None:
        """The visible projected row of group ``gid`` in the base (cached)."""
        cached = self._outputs.get(gid, "miss")
        if cached != "miss":
            return cached
        plan = self.plan
        count = self.counts[gid]
        if count == 0 and plan.has_groups:
            output = None
        else:
            values = []
            for index, spec in enumerate(plan.agg_specs):
                values.append(self._base_aggregate(gid, index, spec))
            output = _project_output(plan, self.keys[gid], values)
        self._outputs[gid] = output
        return output

    def base_output_value(self, gid: int, index: int):
        """The base value of one aggregate of one group."""
        return self._base_aggregate(gid, index, self.plan.agg_specs[index])

    def _base_aggregate(self, gid: int, index: int, spec: _AggSpec):
        if spec.kind == "count_star":
            return self.counts[gid]
        valid = self.valid[index][gid]
        if spec.kind == "count":
            return valid
        if valid == 0:
            return None
        if spec.kind == "minmax":
            ordered = self.sorted_values[index][gid]
            return ordered[0] if spec.func == "min" else ordered[-1]
        if spec.kind in ("int_sum", "int_avg"):
            total = self.sums[index][gid]
            return total if spec.kind == "int_sum" else total / valid
        # float_sum / float_avg: exact in-order recompute over the segment.
        vector = self.vectors[index]
        total = sum(
            vector.value_at(position)
            for position in self.segments[gid]
            if not vector.null[position]
        )
        return total if spec.kind == "float_sum" else total / valid


class _AggEdit:
    """One instance's effect on one aggregate of one group."""

    __slots__ = ("dvalid", "dsum", "removed", "added", "rows_removed", "rows_added")

    def __init__(self):
        self.dvalid = 0  # delta of non-NULL passing contributions
        self.dsum = 0.0  # int_sum/int_avg: exact value delta
        self.removed: list = []  # minmax: values; float kinds: (row, value)
        self.added: list = []
        self.rows_removed: list = []  # membership rows regardless of NULLs
        self.rows_added: list = []


class _GroupEdit:
    """One instance's accumulated effect on one group."""

    __slots__ = ("dcount", "aggs")

    def __init__(self, specs: list[_AggSpec]):
        self.dcount = 0
        self.aggs = [_AggEdit() for _ in specs]


def _project_output(plan: _BatchQuery, key: tuple, agg_values: list) -> tuple:
    output = key + tuple(agg_values)
    return tuple(output[slot] for slot in plan.project_slots)


def _extreme(base_sorted: list, removed: Counter, added: list, want_max: bool):
    """Order-statistic walk: the new MIN/MAX after removals and additions."""
    best = None
    if removed:
        remaining = Counter(removed)
        iterator = reversed(base_sorted) if want_max else iter(base_sorted)
        for value in iterator:
            if remaining.get(value):
                remaining[value] -= 1
                continue
            best = value
            break
    elif base_sorted:
        best = base_sorted[-1] if want_max else base_sorted[0]
    for value in added:
        if best is None or (value > best if want_max else value < best):
            best = value
    return best


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


class VectorizedBackend(ConflictBackend):
    """Columnar batch backend with per-query fallback to ``incremental``."""

    name = "vectorized"

    def __init__(self, support: SupportSet, fallback: ConflictBackend | None = None):
        super().__init__(support)
        self._fallback = fallback or IncrementalBackend(support)
        # Keyed by query identity, not text: programmatic queries may share
        # text with different plans. The query object is pinned in the value
        # so its id() cannot be recycled while the cache lives.
        self._compiled: dict[int, tuple[Query, _BatchQuery | None]] = {}
        self._table_batches: dict[str, ColumnarBatch] = {}
        self._join_keys: dict[tuple[str, tuple[int, ...]], tuple[list, dict]] = {}

    # -- compilation caches -------------------------------------------------

    #: Compiled-plan cache bound: compilation is cheap relative to conflict
    #: computation, so wholesale clearing at the cap keeps a long-lived
    #: market (a stream of unique ad-hoc queries) from growing unboundedly.
    MAX_COMPILED_PLANS = 4096

    def batch_plan(self, query: Query) -> _BatchQuery | None:
        cached = self._compiled.get(id(query))
        if cached is None:
            if len(self._compiled) >= self.MAX_COMPILED_PLANS:
                self._compiled.clear()
            plan = compile_batch_query(query, self.base)
            self._compiled[id(query)] = (query, plan)
            return plan
        return cached[1]

    def _table_batch(self, table: str) -> ColumnarBatch:
        from repro.db.columnar import table_batch

        batch = self._table_batches.get(table)
        if batch is None:
            batch = table_batch(self.base.table(table))
            self._table_batches[table] = batch
        return batch

    def _join_key_cache(self, table: str, slots: tuple[int, ...]):
        """(key tuples, unfiltered hash index) of a table's key columns.

        Shared across all queries joining on the same columns — the SSB/TPC-H
        workloads join thousands of templates on the same handful of keys.
        """
        cache_key = (table, slots)
        cached = self._join_keys.get(cache_key)
        if cached is None:
            batch = self._table_batch(table)
            tuples = key_tuples([batch.columns[slot] for slot in slots])
            cached = (tuples, build_key_index(tuples))
            self._join_keys[cache_key] = cached
        return cached

    def prepare(self, queries) -> None:
        """Warm per-workload caches: compiled plans, base batches, tensors.

        Called by :meth:`ConflictSetEngine.build_hypergraph` (and through it
        by the broker's ``quote_batch``) so delta tensors — one per table,
        hence one *per join side* — and columnar base tables are built once
        and shared by every query of the batch.
        """
        tables: set[str] = set()
        for query in queries:
            plan = self.batch_plan(query)
            if plan is not None:
                tables.update(plan.source.tables)
        for table in tables:
            self._table_batch(table)
            self.support.delta_tensor(table)

    # -- the backend hook ---------------------------------------------------

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        setup_start = time.perf_counter()
        plan = self.batch_plan(query)
        if plan is None:
            return self._fallback.compute(query, candidates)
        if candidates is None:
            candidates = self.candidate_instances(query)
        setup = time.perf_counter() - setup_start

        start = time.perf_counter()
        try:
            conflicting, undecided = self._decide(plan, candidates)
            reexecuted = len(undecided)
            if undecided:
                baseline = query.run(self.base)
                for instance_id in sorted(undecided):
                    if query.run(self.support.materialize(instance_id)) != baseline:
                        conflicting.append(instance_id)
        except QueryError:
            # Runtime type surprises (e.g. mixed-kind ordering comparisons)
            # are rare enough to pay full fallback for the whole query.
            return self._fallback.compute(query, candidates)
        elapsed = time.perf_counter() - start
        return ConflictComputation(
            conflict_set=frozenset(conflicting),
            num_candidates=len(candidates),
            num_pruned=len(self.support) - len(candidates),
            wall_time_seconds=elapsed,
            incremental=False,
            backend=self.name,
            setup_seconds=setup,
            num_reexecuted=reexecuted,
        )

    # -- kernel dispatch ----------------------------------------------------

    def _decide(
        self, plan: _BatchQuery, candidates: list[int]
    ) -> tuple[list[int], set[int]]:
        """Conflicting instance ids plus instances needing re-execution."""
        if not candidates:
            return [], set()
        candidate_array = np.asarray(candidates, dtype=np.int64)
        if plan.kernel == "flat":
            return self._decide_flat(plan, candidate_array)
        chunks, reexecute = plan.source.chunks(self, candidate_array)
        undecided = set(reexecute)
        if plan.kernel == "flat_join":
            conflicting = self._decide_flat_join(plan, chunks, undecided)
        elif plan.kernel == "scalar":
            conflicting = self._decide_scalar(plan, candidate_array, chunks)
        else:
            conflicting = self._decide_grouped(plan, chunks, undecided)
        return conflicting, undecided

    # -- flat single-table kernel (aligned pairwise fast path) ---------------

    def _decide_flat(
        self, plan: _BatchQuery, candidate_array: np.ndarray
    ) -> tuple[list[int], set[int]]:
        data = plan.source.pair_data(self, candidate_array)
        if data is None:
            return [], set()
        tensor, instances, _, old_batch, new_batch, old_pass, new_pass = data

        old_projected = [evaluate(old_batch) for evaluate in plan.project_evals]
        new_projected = [evaluate(new_batch) for evaluate in plan.project_evals]

        changed = np.zeros(old_batch.num_rows, dtype=bool)
        for old_column, new_column in zip(old_projected, new_projected):
            changed |= null_aware_neq(old_column, new_column)
        pair_conflict = (old_pass != new_pass) | (old_pass & new_pass & changed)

        flagged = np.unique(instances[pair_conflict])
        conflicting: list[int] = []
        undecided: set[int] = set()
        for instance_id in flagged:
            if tensor.pair_counts[instance_id] <= 1:
                conflicting.append(int(instance_id))
                continue
            # Multi-row instance: a pairwise change can still leave the
            # answer bag unchanged (two rows swapping values). Compare the
            # exact contribution multisets, as the incremental checker does.
            # `instances` is sorted (tensor pairs are grouped by instance),
            # so the instance's slice is found by bisection, not a full scan.
            low = np.searchsorted(instances, instance_id, side="left")
            high = np.searchsorted(instances, instance_id, side="right")
            positions = np.arange(low, high)
            old_bag = _contribution_bag(old_projected, old_pass, positions)
            new_bag = _contribution_bag(new_projected, new_pass, positions)
            if old_bag != new_bag:
                # A bag change conflicts regardless of output order.
                conflicting.append(int(instance_id))
            elif plan.ordered:
                # ORDER BY answers are sequences: a bag-preserving multi-row
                # swap can still reorder a tie group. Re-execute to decide.
                undecided.add(int(instance_id))
        return conflicting, undecided

    # -- flat join kernel (contribution bags per instance) -------------------

    def _decide_flat_join(
        self, plan: _BatchQuery, chunks: list[_Chunk], undecided: set[int]
    ) -> list[int]:
        conflicting: list[int] = []
        for chunk in chunks:
            old_tuples = _projected_tuples(plan.project_evals, chunk.old_batch)
            new_tuples = _projected_tuples(plan.project_evals, chunk.new_batch)
            for instance_id, (o_lo, o_hi), (n_lo, n_hi) in _instance_slices(chunk):
                old_items = [
                    old_tuples[position]
                    for position in range(o_lo, o_hi)
                    if chunk.old_pass[position]
                ]
                new_items = [
                    new_tuples[position]
                    for position in range(n_lo, n_hi)
                    if chunk.new_pass[position]
                ]
                if old_items == new_items:
                    # Value-identical contributions decide "no conflict" only
                    # when the pairs are position-stable: a join-key change
                    # can re-attach value-identical contributions to
                    # *different left partners*, moving their positions and
                    # reordering an ORDER BY tie group.
                    if plan.ordered and not _instance_stable(chunk, instance_id):
                        undecided.add(instance_id)
                    continue
                if Counter(old_items) != Counter(new_items):
                    conflicting.append(instance_id)
                elif plan.ordered:
                    # Bag-preserving contribution changes can reorder an
                    # ORDER BY tie group (join output order is left-major).
                    undecided.add(instance_id)
        return conflicting

    # -- scalar COUNT/INT-SUM/INT-AVG kernel (pure array ops) ----------------

    def _decide_scalar(
        self, plan: _BatchQuery, candidate_array: np.ndarray, chunks: list[_Chunk]
    ) -> list[int]:
        base_state = self._scalar_base_state(plan)
        num_candidates = len(candidate_array)

        count_deltas = [np.zeros(num_candidates) for _ in plan.agg_specs]
        sum_deltas = [np.zeros(num_candidates) for _ in plan.agg_specs]
        for chunk in chunks:
            for sign, instances, batch, passing in (
                (-1.0, chunk.old_instances, chunk.old_batch, chunk.old_pass),
                (+1.0, chunk.new_instances, chunk.new_batch, chunk.new_pass),
            ):
                if len(instances) == 0:
                    continue
                compact = np.searchsorted(candidate_array, instances)
                for index, spec in enumerate(plan.agg_specs):
                    if not spec.compared:
                        continue
                    if spec.arg_eval is None:
                        count_deltas[index] += sign * np.bincount(
                            compact,
                            weights=passing.astype(np.float64),
                            minlength=num_candidates,
                        )
                        continue
                    vector = spec.arg_eval(batch)
                    valid = passing & ~vector.null
                    count_deltas[index] += sign * np.bincount(
                        compact,
                        weights=valid.astype(np.float64),
                        minlength=num_candidates,
                    )
                    if spec.kind in ("int_sum", "int_avg"):
                        sum_deltas[index] += sign * np.bincount(
                            compact,
                            weights=np.where(valid, vector.values, 0.0),
                            minlength=num_candidates,
                        )

        changed_any = np.zeros(num_candidates, dtype=bool)
        for index, (spec, (base_count, base_sum)) in enumerate(
            zip(plan.agg_specs, base_state)
        ):
            if not spec.compared:
                continue
            count_delta = count_deltas[index]
            if spec.kind in ("count_star", "count"):
                changed_any |= count_delta != 0
                continue
            sum_delta = sum_deltas[index]
            new_count = base_count + count_delta
            presence_changed = (base_count > 0) != (new_count > 0)
            both_present = (base_count > 0) & (new_count > 0)
            if spec.kind == "int_sum":
                changed_any |= presence_changed | (both_present & (sum_delta != 0))
            else:  # int_avg
                with np.errstate(invalid="ignore", divide="ignore"):
                    old_average = base_sum / base_count if base_count > 0 else np.nan
                    new_average = (base_sum + sum_delta) / np.where(
                        new_count > 0, new_count, 1
                    )
                changed_any |= presence_changed | (
                    both_present & (new_average != old_average)
                )
        return [int(candidate) for candidate in candidate_array[changed_any]]

    def _scalar_base_state(self, plan: _BatchQuery) -> list[tuple[int, float]]:
        """Per aggregate: (non-NULL passing count, exact sum) over the base."""
        if plan.base_state is not None:
            return plan.base_state
        batch, passing = plan.source.base_contributions(self)
        state: list[tuple[int, float]] = []
        for spec in plan.agg_specs:
            if spec.arg_eval is None:
                state.append((int(passing.sum()), 0.0))
                continue
            vector = spec.arg_eval(batch)
            valid = passing & ~vector.null
            if spec.kind == "count":
                total = 0.0  # COUNT needs no sum (and the column may be TEXT)
            else:
                total = float(vector.values[valid].sum()) if valid.any() else 0.0
            state.append((int(valid.sum()), total))
        plan.base_state = state
        return state

    # -- grouped kernel (GROUP BY / MIN-MAX / float segments) ----------------

    def _grouped_state(self, plan: _BatchQuery) -> _GroupedState:
        if plan.grouped_state is None:
            batch, passing = plan.source.base_contributions(self)
            plan.grouped_state = _GroupedState(plan, batch, passing)
        return plan.grouped_state

    def _decide_grouped(
        self, plan: _BatchQuery, chunks: list[_Chunk], undecided: set[int]
    ) -> list[int]:
        state = self._grouped_state(plan)
        conflicting: list[int] = []
        for chunk in chunks:
            sides = []
            for instances, batch, passing, rows in (
                (chunk.old_instances, chunk.old_batch, chunk.old_pass, chunk.old_rows),
                (chunk.new_instances, chunk.new_batch, chunk.new_pass, chunk.new_rows),
            ):
                keys = (
                    key_tuples([evaluate(batch) for evaluate in plan.group_evals])
                    if plan.group_evals
                    else [()] * batch.num_rows
                )
                vectors = [
                    spec.arg_eval(batch) if spec.arg_eval is not None else None
                    for spec in plan.agg_specs
                ]
                sides.append((keys, vectors, passing, rows))
            old_side, new_side = sides
            for instance_id, old_span, new_span in _instance_slices(chunk):
                decision = self._decide_grouped_instance(
                    plan, state, old_side, old_span, new_side, new_span,
                    stable=_instance_stable(chunk, instance_id),
                )
                if decision is True:
                    conflicting.append(instance_id)
                elif decision is None:
                    undecided.add(instance_id)
        return conflicting

    def _decide_grouped_instance(
        self, plan, state, old_side, old_span, new_side, new_span, stable
    ) -> bool | None:
        """True = conflict, False = none, None = re-execute to decide."""
        specs = plan.agg_specs
        contributions = []
        for (keys, vectors, passing, rows), (lo, hi), sign in (
            (old_side, old_span, -1),
            (new_side, new_span, +1),
        ):
            items = []
            for position in range(lo, hi):
                if not passing[position]:
                    continue
                values = tuple(
                    None
                    if vector is None
                    else (None if vector.null[position] else vector.value_at(position))
                    for vector in vectors
                )
                row = int(rows[position]) if rows is not None else None
                items.append((keys[position], values, row))
            contributions.append(items)
        old_items, new_items = contributions
        ordered_groups = plan.ordered and plan.has_groups
        if old_items == new_items and (stable or not ordered_groups):
            # Value-identical contributions at unstable positions cannot
            # decide an ordered grouped query: re-attaching a group's
            # contributions to different join partners moves its first
            # occurrence, flipping group emission order within a tie block.
            return False

        # Accumulate edits per affected group.
        edits: dict[int, _GroupEdit] = {}
        for items, sign in ((old_items, -1), (new_items, +1)):
            for key, values, row in items:
                gid = state.gid_of(key)
                edit = edits.get(gid)
                if edit is None:
                    edit = _GroupEdit(specs)
                    edits[gid] = edit
                edit.dcount += sign
                for index, spec in enumerate(specs):
                    if spec.arg_eval is None:
                        continue
                    value = values[index]
                    slot = edit.aggs[index]
                    (slot.rows_removed if sign < 0 else slot.rows_added).append(row)
                    if value is None:
                        continue
                    slot.dvalid += sign
                    if spec.kind in ("int_sum", "int_avg"):
                        slot.dsum += sign * value
                    elif spec.kind == "minmax":
                        (slot.removed if sign < 0 else slot.added).append(value)
                    elif spec.kind in _ORDER_KINDS:
                        (slot.removed if sign < 0 else slot.added).append((row, value))

        old_bag: Counter = Counter()
        new_bag: Counter = Counter()
        any_change = False
        for gid, edit in edits.items():
            old_output = state.base_output(gid)
            new_output = self._edited_output(plan, state, gid, edit)
            if old_output != new_output:
                any_change = True
            if old_output is not None:
                old_bag[old_output] += 1
            if new_output is not None:
                new_bag[new_output] += 1
        if old_bag != new_bag:
            return True
        if ordered_groups:
            # GROUP BY output rows are emitted in group *insertion* order
            # (first contribution position in the source output), which
            # breaks ORDER BY ties; a bag-preserving swap of visible rows,
            # of group memberships, or — on joins — of partner positions
            # can reorder a tie block. Undecidable here — re-execute.
            if not stable:
                return None
            old_key_sequence = [key for key, _, _ in old_items]
            new_key_sequence = [key for key, _, _ in new_items]
            if any_change or old_key_sequence != new_key_sequence:
                return None
        return False

    def _edited_output(self, plan, state, gid, edit: "_GroupEdit") -> tuple | None:
        new_count = state.counts[gid] + edit.dcount
        if new_count <= 0 and plan.has_groups:
            return None
        values = []
        for index, spec in enumerate(plan.agg_specs):
            slot = edit.aggs[index]
            if spec.kind == "count_star":
                values.append(max(new_count, 0))
                continue
            new_valid = state.valid[index][gid] + slot.dvalid
            if spec.kind == "count":
                values.append(new_valid)
                continue
            if new_valid <= 0:
                values.append(None)
                continue
            if spec.kind in ("int_sum", "int_avg"):
                total = state.sums[index][gid] + slot.dsum
                values.append(total if spec.kind == "int_sum" else total / new_valid)
            elif spec.kind == "minmax":
                values.append(
                    _extreme(
                        state.sorted_values[index][gid],
                        Counter(slot.removed),
                        slot.added,
                        want_max=spec.func == "max",
                    )
                )
            else:  # float_sum / float_avg: exact in-order segment recompute
                values.append(
                    self._float_recompute(state, gid, index, spec, slot, new_valid)
                )
        return _project_output(plan, state.keys[gid], values)

    def _float_recompute(self, state, gid, index, spec, slot, new_valid):
        """Recompute a float SUM/AVG in base row order (naive-exact).

        ``slot.removed``/``slot.added`` are (base row, value) pairs of the
        instance's valid old/new contributions to this group,
        ``slot.rows_removed``/``slot.rows_added`` its membership rows
        regardless of NULLs; when both are unchanged the base output is
        reused (the common case: a patch to a *different* column).
        Otherwise the group's new value sequence is the base segment with
        the old membership rows dropped and the new valid pairs merged back
        at their base positions, summed left to right — the exact order
        full re-execution would use.
        """
        if sorted(slot.removed) == sorted(slot.added) and sorted(
            slot.rows_removed
        ) == sorted(slot.rows_added):
            return state.base_output_value(gid, index)
        vector = state.vectors[index]
        dropped = set(slot.rows_removed)
        merged = [
            (position, vector.value_at(position))
            for position in state.segments[gid]
            if position not in dropped and not vector.null[position]
        ]
        merged.extend(slot.added)
        merged.sort(key=lambda pair: pair[0])
        total = sum(value for _, value in merged)
        return total if spec.kind == "float_sum" else total / new_valid


def _projected_tuples(project_evals, batch: ColumnarBatch) -> list[tuple]:
    """All projected rows of a batch as Python tuples (None at NULLs)."""
    if batch.num_rows == 0:
        return []
    return key_tuples([evaluate(batch) for evaluate in project_evals])


def _instance_stable(chunk: _Chunk, instance_id: int) -> bool:
    """Whether all of an instance's pairs keep their contribution positions."""
    if chunk.pair_stable is None:
        return True
    lo = int(np.searchsorted(chunk.pair_instances, instance_id, side="left"))
    hi = int(np.searchsorted(chunk.pair_instances, instance_id, side="right"))
    return bool(chunk.pair_stable[lo:hi].all())


def _instance_slices(chunk: _Chunk):
    """Iterate (instance id, old slice, new slice) over a chunk's instances."""
    old = chunk.old_instances
    new = chunk.new_instances
    for instance_id in np.union1d(old, new):
        o_lo = int(np.searchsorted(old, instance_id, side="left"))
        o_hi = int(np.searchsorted(old, instance_id, side="right"))
        n_lo = int(np.searchsorted(new, instance_id, side="left"))
        n_hi = int(np.searchsorted(new, instance_id, side="right"))
        yield int(instance_id), (o_lo, o_hi), (n_lo, n_hi)


def _contribution_bag(projected, passing, positions) -> Counter:
    """Multiset of projected tuples contributed by the given pair positions."""
    bag: Counter = Counter()
    for position in positions:
        if not passing[position]:
            continue
        bag[tuple(column.value_at(position) for column in projected)] += 1
    return bag


class AutoBackend(ConflictBackend):
    """Per-query choice: batch evaluation when it can win, checkers otherwise.

    Dispatch consults the unified shape matcher (through
    :func:`compile_batch_query`): a query is only routed to the batch path
    when it actually compiled, so the reported backend in
    :class:`ConflictComputation` is the one that decided. The batch path
    pays fixed costs (candidate gather, patch application) that only
    amortize across enough candidates; below the threshold the incremental
    checker's per-instance work is cheaper.
    """

    name = "auto"

    def __init__(self, support: SupportSet, min_batch_candidates: int = 48):
        super().__init__(support)
        self.min_batch_candidates = min_batch_candidates
        self._incremental = IncrementalBackend(support)
        self._vectorized = VectorizedBackend(support, fallback=self._incremental)

    def prepare(self, queries) -> None:
        self._vectorized.prepare(queries)

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        if self._vectorized.batch_plan(query) is None:
            return self._incremental.compute(query, candidates)
        if candidates is None:
            candidates = self.candidate_instances(query)
        if len(candidates) >= self.min_batch_candidates:
            return self._vectorized.compute(query, candidates)
        return self._incremental.compute(query, candidates)


register_backend(VectorizedBackend.name, VectorizedBackend)
register_backend(AutoBackend.name, AutoBackend)
