"""Tokenizer for the supported SQL fragment."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SQLSyntaxError

KEYWORDS = frozenset(
    {
        "select", "distinct", "from", "where", "group", "by", "having",
        "order", "limit", "and", "or", "not", "like", "between", "in", "is",
        "null", "as", "asc", "desc",
    }
)

_PUNCTUATION = {",", "(", ")", "*", "+", "-", "/", ".", "%"}
_COMPARISON_START = {"=", "<", ">", "!"}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"       # = != < <= > >=
    PUNCTUATION = "punctuation"  # , ( ) * + - / .
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.value}, {self.text!r}@{self.position})"


def tokenize(sql: str) -> list[Token]:
    """Split SQL text into tokens, normalizing keywords to lowercase."""
    tokens: list[Token] = []
    index = 0
    length = len(sql)
    while index < length:
        char = sql[index]
        if char.isspace():
            index += 1
            continue
        if char == "'" or char == '"':
            end = sql.find(char, index + 1)
            if end == -1:
                raise SQLSyntaxError(f"unterminated string literal at {index}")
            tokens.append(Token(TokenType.STRING, sql[index + 1 : end], index))
            index = end + 1
            continue
        if char.isdigit() or (char == "." and index + 1 < length and sql[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (sql[end].isdigit() or (sql[end] == "." and not seen_dot)):
                if sql[end] == ".":
                    # A dot not followed by a digit is a qualifier separator.
                    if end + 1 >= length or not sql[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, sql[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[index:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, index))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, index))
            index = end
            continue
        if char in _COMPARISON_START:
            two = sql[index : index + 2]
            if two in ("<=", ">=", "!=", "<>"):
                text = "!=" if two == "<>" else two
                tokens.append(Token(TokenType.OPERATOR, text, index))
                index += 2
                continue
            if char == "!":
                raise SQLSyntaxError(f"unexpected character {char!r} at {index}")
            tokens.append(Token(TokenType.OPERATOR, char, index))
            index += 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue
        raise SQLSyntaxError(f"unexpected character {char!r} at {index}")
    tokens.append(Token(TokenType.END, "", length))
    return tokens
