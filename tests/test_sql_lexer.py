"""Unit tests for the SQL tokenizer."""

import pytest

from repro.db.sql.lexer import Token, TokenType, tokenize
from repro.exceptions import SQLSyntaxError


def kinds(sql):
    return [(t.type, t.text) for t in tokenize(sql) if t.type is not TokenType.END]


class TestTokenize:
    def test_keywords_lowercased(self):
        assert kinds("SELECT FROM")[0] == (TokenType.KEYWORD, "select")

    def test_identifier_preserves_case(self):
        assert kinds("Population")[0] == (TokenType.IDENTIFIER, "Population")

    def test_integer(self):
        assert kinds("42")[0] == (TokenType.NUMBER, "42")

    def test_float(self):
        assert kinds("3.14")[0] == (TokenType.NUMBER, "3.14")

    def test_qualified_name_splits_on_dot(self):
        tokens = kinds("C.Name")
        assert tokens == [
            (TokenType.IDENTIFIER, "C"),
            (TokenType.PUNCTUATION, "."),
            (TokenType.IDENTIFIER, "Name"),
        ]

    def test_single_quoted_string(self):
        assert kinds("'Asia'")[0] == (TokenType.STRING, "Asia")

    def test_double_quoted_string(self):
        assert kinds('"Asia"')[0] == (TokenType.STRING, "Asia")

    def test_string_with_spaces(self):
        assert kinds("'MIDDLE EAST'")[0] == (TokenType.STRING, "MIDDLE EAST")

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_operators(self):
        assert [k[1] for k in kinds("= != <> <= >= < >")] == [
            "=", "!=", "!=", "<=", ">=", "<", ">",
        ]

    def test_arithmetic_punctuation(self):
        assert [k[1] for k in kinds("a * b + c / d - e")] == [
            "a", "*", "b", "+", "c", "/", "d", "-", "e",
        ]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize("select ? from t")

    def test_end_token_present(self):
        assert tokenize("x")[-1].type is TokenType.END

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "select", 0)
        assert token.is_keyword("select")
        assert not token.is_keyword("from")

    def test_underscored_identifier(self):
        assert kinds("l_shipyear")[0] == (TokenType.IDENTIFIER, "l_shipyear")

    def test_number_then_dot_identifier(self):
        # "1 and T.x" style: the dot after a digit boundary is punctuation
        tokens = kinds("T2.x")
        assert tokens[0] == (TokenType.IDENTIFIER, "T2")
