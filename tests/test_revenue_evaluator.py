"""Unit tests for the revenue-strategy registry and evaluator facade."""

import numpy as np
import pytest

from repro.core.evaluator import (
    RevenueEvaluator,
    ScalarRevenueStrategy,
    available_revenue_strategies,
    default_evaluator,
    get_revenue_strategy,
    register_revenue_strategy,
    use_strategy,
)
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import ItemPricing, UniformBundlePricing
from repro.core.revenue import compute_revenue
from repro.exceptions import PricingError


@pytest.fixture
def instance():
    hypergraph = Hypergraph(3, [{0, 1}, {1, 2}, {2}, set()])
    return PricingInstance(hypergraph, [5.0, 4.0, 3.0, 1.0])


class TestRegistry:
    def test_builtins_registered(self):
        assert available_revenue_strategies() == ["scalar", "vectorized"]

    def test_unknown_strategy_errors_with_known_list(self):
        with pytest.raises(PricingError, match="scalar"):
            get_revenue_strategy("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(PricingError, match="already registered"):
            register_revenue_strategy("scalar", ScalarRevenueStrategy)

    def test_custom_strategy_pluggable(self, instance):
        class Doubling(ScalarRevenueStrategy):
            name = "doubling-test"

            def edge_prices(self, pricing, inst):
                return 2.0 * super().edge_prices(pricing, inst)

        register_revenue_strategy("doubling-test", Doubling)
        try:
            evaluator = RevenueEvaluator("doubling-test")
            report = evaluator.evaluate(UniformBundlePricing(2.0), instance)
            assert report.prices.tolist() == [4.0, 4.0, 4.0, 4.0]
        finally:
            from repro.core import evaluator as module

            module._REGISTRY.pop("doubling-test")


class TestFacade:
    def test_strategy_name_exposed(self):
        assert RevenueEvaluator("scalar").strategy_name == "scalar"
        assert RevenueEvaluator().strategy_name == "vectorized"

    def test_accepts_strategy_instance(self, instance):
        evaluator = RevenueEvaluator(ScalarRevenueStrategy())
        report = evaluator.evaluate(ItemPricing([1.0, 2.0, 3.0]), instance)
        assert report.prices.tolist() == [3.0, 5.0, 3.0, 0.0]

    def test_kernel_counters(self, instance):
        evaluator = RevenueEvaluator("vectorized")
        evaluator.evaluate(UniformBundlePricing(1.0), instance)
        evaluator.line_search_gains(
            np.array([1.0]), np.array([2.0]), np.array([0.0, 2.0])
        )
        evaluator.grid_revenues(
            np.array([2.0, 1.0]), np.array([1.0, 2.0]), np.array([3.0, 3.0])
        )
        record = evaluator.diagnostics["vectorized"]
        assert record["evaluations"] == 1
        assert record["line_searches"] == 1
        assert record["grid_sweeps"] == 1
        assert record["wall_time_seconds"] >= 0.0


class TestDefaultSelection:
    def test_default_is_vectorized(self):
        assert default_evaluator().strategy_name == "vectorized"

    def test_use_strategy_scopes_and_restores(self, instance):
        before = default_evaluator()
        with use_strategy("scalar") as evaluator:
            assert default_evaluator() is evaluator
            compute_revenue(UniformBundlePricing(1.0), instance)
            assert evaluator.diagnostics["scalar"]["evaluations"] == 1
        assert default_evaluator() is before

    def test_use_strategy_restores_on_error(self):
        before = default_evaluator()
        with pytest.raises(RuntimeError):
            with use_strategy("scalar"):
                raise RuntimeError("boom")
        assert default_evaluator() is before

    def test_explicit_evaluator_argument_wins(self, instance):
        evaluator = RevenueEvaluator("scalar")
        compute_revenue(UniformBundlePricing(1.0), instance, evaluator=evaluator)
        assert evaluator.diagnostics["scalar"]["evaluations"] == 1
