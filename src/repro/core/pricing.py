"""Succinct pricing functions (Section 3.4 of the paper).

Three families, all monotone and subadditive (hence arbitrage-free by
Theorem 1 of [Deep & Koutris 2017]):

- :class:`UniformBundlePricing` — one price for every bundle,
- :class:`ItemPricing` — additive over per-item weights,
- :class:`XOSPricing` — max over several additive components
  (fractionally subadditive).

A pricing function maps bundles (sets of item indices) to non-negative
prices. The classes are deliberately tiny — algorithms construct them and
:func:`repro.core.revenue.compute_revenue` evaluates them over an instance.

Every family also has a **matrix form**: :meth:`PricingFunction.
price_edges_arrays` prices a whole CSR edge-member block (see
:meth:`repro.core.hypergraph.Hypergraph.edge_member_matrix`) in one shot —
segment sums for the additive families, a component-by-edge matrix max for
XOS. The vectorized revenue engine evaluates pricings exclusively through
this entry point; the base-class fallback reconstructs bundles and calls
:meth:`price`, so third-party pricing functions stay compatible.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import PricingError

Bundle = frozenset[int] | set[int]


def segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` under a CSR ``indptr`` (empty-safe).

    ``values`` may be 1-D (one sum per segment) or 2-D with the segmented
    axis last (one row of sums per leading row, e.g. XOS components).
    ``np.add.reduceat`` cannot express empty segments directly, so the
    reduction runs over the non-empty rows only and empty segments stay 0.
    """
    segments = len(indptr) - 1
    shape = values.shape[:-1] + (segments,)
    out = np.zeros(shape, dtype=np.float64)
    starts = indptr[:-1]
    nonempty = starts < indptr[1:]
    if np.any(nonempty):
        out[..., nonempty] = np.add.reduceat(values, starts[nonempty], axis=-1)
    return out


def bundles_to_csr(
    edges: Sequence[Bundle],
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a bundle list into a CSR ``(indptr, items)`` block.

    Items are ascending within each row (matching
    :meth:`~repro.core.hypergraph.Hypergraph.edge_member_matrix`), so float
    segment sums are canonical: a set's own iteration order depends on its
    insertion history and must never leak into prices.
    """
    sizes = np.fromiter(
        (len(edge) for edge in edges), dtype=np.int64, count=len(edges)
    )
    indptr = np.zeros(len(edges) + 1, dtype=np.int64)
    np.cumsum(sizes, out=indptr[1:])
    items = np.fromiter(
        (item for edge in edges for item in sorted(edge)),
        dtype=np.int64,
        count=int(indptr[-1]),
    )
    return indptr, items


class PricingFunction:
    """Base class: a monotone subadditive set function over items."""

    #: Human-readable family name.
    family = "abstract"

    def price(self, bundle: Bundle) -> float:
        """Price of a bundle of items."""
        raise NotImplementedError

    def price_edges(self, edges: Sequence[Bundle]) -> np.ndarray:
        """Vector of prices for a list of bundles."""
        return np.array([self.price(edge) for edge in edges], dtype=np.float64)

    def price_edges_arrays(
        self, indptr: np.ndarray, items: np.ndarray
    ) -> np.ndarray:
        """Matrix form: price every row of a CSR edge-member block.

        The generic fallback reconstructs each bundle and calls
        :meth:`price`; the built-in families override this with pure array
        ops (the vectorized revenue engine's hot path).
        """
        return np.array(
            [
                self.price(frozenset(items[indptr[row]:indptr[row + 1]].tolist()))
                for row in range(len(indptr) - 1)
            ],
            dtype=np.float64,
        )

    def description(self) -> str:
        """Short description used in reports."""
        return self.family


class UniformBundlePricing(PricingFunction):
    """Every bundle costs the same fixed price ``P``.

    This is the "whole dataset at a flat fee" scheme most data markets use.
    Note it charges ``P`` even for the empty bundle, which is still monotone
    and subadditive (and models a flat access fee).
    """

    family = "uniform-bundle"

    def __init__(self, bundle_price: float):
        if bundle_price < 0 or not np.isfinite(bundle_price):
            raise PricingError("bundle price must be finite and non-negative")
        self.bundle_price = float(bundle_price)

    def price(self, bundle: Bundle) -> float:
        return self.bundle_price

    def price_edges(self, edges: Sequence[Bundle]) -> np.ndarray:
        return np.full(len(edges), self.bundle_price)

    def price_edges_arrays(
        self, indptr: np.ndarray, items: np.ndarray
    ) -> np.ndarray:
        return np.full(len(indptr) - 1, self.bundle_price)

    def description(self) -> str:
        return f"uniform-bundle(P={self.bundle_price:g})"


class ItemPricing(PricingFunction):
    """Additive pricing: ``p(e) = sum_{j in e} w_j`` with weights ``w >= 0``."""

    family = "item"

    def __init__(self, weights: Sequence[float] | np.ndarray | dict[int, float],
                 num_items: int | None = None):
        if isinstance(weights, dict):
            if num_items is None:
                num_items = (max(weights) + 1) if weights else 0
            dense = np.zeros(num_items, dtype=np.float64)
            for item, weight in weights.items():
                dense[item] = weight
            weights = dense
        else:
            weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise PricingError("item weights must be a vector")
        if not np.all(np.isfinite(weights)) or np.any(weights < 0):
            raise PricingError("item weights must be finite and non-negative")
        self.weights = weights

    @classmethod
    def uniform(cls, num_items: int, weight: float) -> "ItemPricing":
        """All items share the same weight (the UIP family)."""
        return cls(np.full(num_items, float(weight)))

    @property
    def num_items(self) -> int:
        return len(self.weights)

    def price(self, bundle: Bundle) -> float:
        # Sum in ascending item order: equal bundles must price
        # bit-identically however their set was built (set iteration order
        # depends on insertion history — a scatter/gathered union and a
        # directly computed conflict set are equal but iterate differently),
        # and ascending is what the CSR matrix form sums too.
        weights = self.weights
        return float(sum(weights[item] for item in sorted(bundle)))

    def price_edges(self, edges: Sequence[Bundle]) -> np.ndarray:
        return self.price_edges_arrays(*bundles_to_csr(edges))

    def price_edges_arrays(
        self, indptr: np.ndarray, items: np.ndarray
    ) -> np.ndarray:
        return segment_sums(self.weights[items], indptr)

    def support_size(self) -> int:
        """Number of items with strictly positive weight."""
        return int(np.count_nonzero(self.weights))

    def description(self) -> str:
        return f"item(nnz={self.support_size()}/{self.num_items})"


class XOSPricing(PricingFunction):
    """Fractionally subadditive pricing: max over additive components.

    ``p(e) = max_i sum_{j in e} w^i_j`` — strictly more expressive than both
    item pricing (1 component) and uniform bundle pricing (cannot be expressed
    exactly, but approximated with a constant component on every item).
    """

    family = "xos"

    def __init__(self, components: Iterable[ItemPricing | Sequence[float] | np.ndarray]):
        parsed: list[ItemPricing] = []
        for component in components:
            if isinstance(component, ItemPricing):
                parsed.append(component)
            else:
                parsed.append(ItemPricing(component))
        if not parsed:
            raise PricingError("XOS pricing needs at least one component")
        sizes = {component.num_items for component in parsed}
        if len(sizes) != 1:
            raise PricingError("XOS components must share the item universe")
        self.components = parsed
        self._weight_matrix: np.ndarray | None = None

    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def num_items(self) -> int:
        return self.components[0].num_items

    def weight_matrix(self) -> np.ndarray:
        """Component weights stacked as a ``(num_components, n)`` matrix."""
        if self._weight_matrix is None:
            self._weight_matrix = np.stack(
                [component.weights for component in self.components]
            )
        return self._weight_matrix

    def price(self, bundle: Bundle) -> float:
        return max(component.price(bundle) for component in self.components)

    def price_edges(self, edges: Sequence[Bundle]) -> np.ndarray:
        return self.price_edges_arrays(*bundles_to_csr(edges))

    def price_edges_arrays(
        self, indptr: np.ndarray, items: np.ndarray
    ) -> np.ndarray:
        return segment_sums(self.weight_matrix()[:, items], indptr).max(axis=0)

    def description(self) -> str:
        return f"xos(k={self.num_components})"


def zero_pricing(num_items: int) -> ItemPricing:
    """The all-zero item pricing (sells everything, revenue zero)."""
    return ItemPricing(np.zeros(num_items))


def extend_pricing(
    pricing: PricingFunction,
    num_items: int,
    new_item_weight: float | None = None,
) -> PricingFunction:
    """Extend a pricing function's item universe to ``num_items`` items.

    Used by the online-delta path when support instances are added: weights
    of existing items are untouched, so every bundle without new items keeps
    a bit-identical price. New items default to the mean existing weight
    (a neutral prior until the seller re-optimizes); bundle-uniform pricing
    is item-agnostic and passes through unchanged. Tabular set pricings are
    explicit functions of a fixed universe and cannot be extended.
    """
    if isinstance(pricing, UniformBundlePricing):
        return pricing
    if isinstance(pricing, ItemPricing):
        current = len(pricing.weights)
        if current >= num_items:
            return pricing
        if new_item_weight is None:
            fill = float(pricing.weights.mean()) if current else 0.0
        else:
            fill = float(new_item_weight)
        extended = np.concatenate(
            [pricing.weights, np.full(num_items - current, fill)]
        )
        return ItemPricing(extended)
    if isinstance(pricing, XOSPricing):
        return XOSPricing(
            [
                extend_pricing(component, num_items, new_item_weight)
                for component in pricing.components
            ]
        )
    raise PricingError(
        f"pricing family {type(pricing).__name__!r} cannot extend to new "
        f"items; re-optimize instead"
    )
