"""CSV export of experiment artifacts.

Every :class:`~repro.experiments.figures.FigureData` can be dumped to a CSV
file so the paper's plots can be regenerated with any plotting tool (the
offline environment has no matplotlib; the benchmark suite prints text tables
and these CSVs are the machine-readable twin).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.figures import FigureData
from repro.exceptions import ExperimentError


def export_series_csv(artifact: FigureData, path: str | Path) -> Path:
    """Write a sweep-style artifact (``data['series']``) as CSV.

    Layout: one row per algorithm, one column per parameter value — the same
    orientation as :func:`~repro.experiments.report.format_series_table`.
    """
    series = artifact.data.get("series")
    parameters = artifact.data.get("parameters")
    if series is None:
        raise ExperimentError(
            f"artifact {artifact.figure_id!r} has no series data to export"
        )
    if parameters is None:
        lengths = {len(values) for values in series.values()}
        if len(lengths) != 1:
            raise ExperimentError("series have inconsistent lengths")
        parameters = list(range(lengths.pop()))

    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series"] + [str(p) for p in parameters])
        for name, values in series.items():
            writer.writerow([name] + [f"{v:.6f}" for v in values])
    return path


def export_runtimes_csv(artifact: FigureData, path: str | Path) -> Path:
    """Write a runtime-table artifact (``data['runtimes']``) as CSV."""
    runtimes = artifact.data.get("runtimes")
    if runtimes is None:
        raise ExperimentError(
            f"artifact {artifact.figure_id!r} has no runtime data to export"
        )
    path = Path(path)
    keys = sorted({name for row in runtimes.values() for name in row})
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["row"] + keys)
        for row_label, row in runtimes.items():
            writer.writerow(
                [str(row_label)] + [f"{row.get(key, float('nan')):.6f}" for key in keys]
            )
    return path


def export_histogram_csv(artifact: FigureData, path: str | Path) -> Path:
    """Write a Figure-4-style histogram artifact as CSV."""
    counts = artifact.data.get("counts")
    edges = artifact.data.get("bin_edges")
    if counts is None or edges is None:
        raise ExperimentError(
            f"artifact {artifact.figure_id!r} has no histogram data to export"
        )
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["bin_low", "bin_high", "count"])
        for i, count in enumerate(counts):
            writer.writerow([f"{edges[i]:.1f}", f"{edges[i + 1]:.1f}", int(count)])
    return path
