"""Tests for conflict-set computation (semantics + pruning)."""

import pytest

from repro.db.query import sql_query
from repro.qirana.conflict import ConflictSetEngine, referenced_columns
from repro.support.delta import CellDelta, SupportInstance
from repro.support.generator import SupportSet


def manual_conflict_set(query, support):
    """Definition-level conflict set: run the query on every instance."""
    baseline = query.run(support.base)
    return frozenset(
        instance.instance_id
        for instance in support
        if query.run(instance.materialize(support.base)) != baseline
    )


@pytest.fixture
def engine(mini_support):
    return ConflictSetEngine(mini_support)


class TestReferencedColumns:
    def test_simple_selection(self, mini_db):
        query = sql_query(
            "select Name from Country where Continent = 'Asia'", mini_db
        )
        assert referenced_columns(query, mini_db) == {
            ("country", "name"),
            ("country", "continent"),
        }

    def test_star_references_all_columns(self, mini_db):
        query = sql_query("select * from City", mini_db)
        pairs = referenced_columns(query, mini_db)
        assert ("city", "population") in pairs
        assert len([p for p in pairs if p[0] == "city"]) == 4

    def test_join_references_both_tables(self, mini_db):
        query = sql_query(
            "select Name from Country , CountryLanguage where Code = CountryCode",
            mini_db,
        )
        pairs = referenced_columns(query, mini_db)
        assert ("country", "code") in pairs
        assert ("countrylanguage", "countrycode") in pairs

    def test_aggregate_arguments_referenced(self, mini_db):
        query = sql_query(
            "select Continent, max(Population) from Country group by Continent",
            mini_db,
        )
        pairs = referenced_columns(query, mini_db)
        assert ("country", "population") in pairs
        assert ("country", "continent") in pairs

    def test_ambiguous_unqualified_column_matches_all_tables(self, mini_db):
        # Both Country and City have a Name column. The SQL planner rejects
        # the ambiguity outright, but programmatic plans can carry an
        # unqualified reference; it must conservatively reference *both*
        # tables (a sound over-approximation for pruning).
        from repro.db.expr import ColumnRef, Comparison, Literal
        from repro.db.plan import (
            CrossJoin,
            Filter,
            Project,
            ProjectItem,
            TableScan,
        )
        from repro.db.query import Query

        plan = Project(
            Filter(
                CrossJoin(TableScan("Country"), TableScan("City")),
                Comparison("!=", ColumnRef("Name"), Literal("x")),
            ),
            [ProjectItem(ColumnRef("Code", "country"), "code")],
        )
        pairs = referenced_columns(Query("manual", plan), mini_db)
        assert ("country", "name") in pairs
        assert ("city", "name") in pairs

    def test_derived_scope_qualifier_skipped(self, mini_db):
        # ORDER BY over an aggregate alias references a derived column; only
        # the aggregate's *inputs* count as referenced cells.
        query = sql_query(
            "select Continent, count(Code) as c from Country "
            "group by Continent order by c",
            mini_db,
        )
        pairs = referenced_columns(query, mini_db)
        assert pairs == {("country", "continent"), ("country", "code")}

    def test_aggregate_only_plan_references_nothing(self, mini_db):
        # COUNT(*) depends on the row count only; support deltas never
        # insert or delete rows, so no cell is referenced and no instance
        # can conflict.
        query = sql_query("select count(*) from City", mini_db)
        assert referenced_columns(query, mini_db) == set()

    def test_aggregate_only_plan_has_empty_conflict_set(self, mini_db, mini_support):
        query = sql_query("select count(*) from City", mini_db)
        for backend in ("naive", "incremental", "vectorized", "auto"):
            engine = ConflictSetEngine(mini_support, backend=backend)
            assert engine.conflict_set(query) == frozenset(), backend

    def test_count_star_with_filter_references_predicate_columns(self, mini_db):
        query = sql_query(
            "select count(*) from City where Population > 1000000", mini_db
        )
        assert referenced_columns(query, mini_db) == {("city", "population")}


class TestConflictSets:
    def test_matches_definition(self, engine, mini_support, mini_db):
        queries = [
            "select count(Name) from Country where Continent = 'Asia'",
            "select * from City where Population >= 1000000",
            "select Continent, max(Population) from Country group by Continent",
            "select Name from Country , CountryLanguage where Code = CountryCode "
            "and Language = 'Greek'",
            "select avg(LifeExpectancy) from Country",
            "select distinct Continent from Country",
            "select Name from Country order by Population desc limit 2",
        ]
        for sql in queries:
            query = sql_query(sql, mini_db)
            assert engine.conflict_set(query) == manual_conflict_set(
                query, mini_support
            ), sql

    def test_unreferenced_table_never_conflicts(self, engine, mini_db, mini_support):
        query = sql_query("select Language from CountryLanguage", mini_db)
        conflict = engine.conflict_set(query)
        for instance_id in conflict:
            instance = mini_support.instance(instance_id)
            assert "countrylanguage" in instance.touched_tables

    def test_diagnostics(self, engine, mini_db, mini_support):
        query = sql_query("select Name from Country", mini_db)
        computation = engine.compute(query)
        assert computation.num_candidates + computation.num_pruned == len(mini_support)
        assert computation.conflict_set <= set(range(len(mini_support)))

    def test_incremental_flag_set(self, engine, mini_db):
        query = sql_query("select Name from Country", mini_db)
        assert engine.compute(query).incremental

    def test_build_hypergraph(self, engine, mini_db):
        queries = [
            sql_query("select Name from Country", mini_db),
            sql_query("select Language from CountryLanguage", mini_db),
        ]
        hypergraph = engine.build_hypergraph(queries)
        assert hypergraph.num_edges == 2
        assert hypergraph.num_items == len(engine.support)
        assert hypergraph.labels[0] == "select Name from Country"

    def test_disabled_incremental_same_result(self, mini_support, mini_db):
        fast = ConflictSetEngine(mini_support, use_incremental=True)
        slow = ConflictSetEngine(mini_support, use_incremental=False)
        query = sql_query(
            "select Continent, count(Code) from Country group by Continent", mini_db
        )
        assert fast.conflict_set(query) == slow.conflict_set(query)


class TestHandPickedDeltas:
    """Conflict semantics on hand-constructed instances (no sampling)."""

    def _support(self, mini_db, deltas_list):
        instances = [
            SupportInstance(i, tuple(deltas)) for i, deltas in enumerate(deltas_list)
        ]
        return SupportSet(mini_db, instances)

    def test_count_conflicts_only_when_predicate_flips(self, mini_db):
        support = self._support(
            mini_db,
            [
                # Moves Greece to Asia: count(Asia) changes.
                [CellDelta("Country", 1, "Continent", "Asia")],
                # Renames a city: irrelevant to the count.
                [CellDelta("City", 0, "Name", "Sparta")],
                # Changes a European population: count unchanged.
                [CellDelta("Country", 2, "Population", 1)],
            ],
        )
        query = sql_query(
            "select count(Name) from Country where Continent = 'Asia'", mini_db
        )
        assert ConflictSetEngine(support).conflict_set(query) == {0}

    def test_projection_hides_changes(self, mini_db):
        support = self._support(
            mini_db,
            [
                [CellDelta("Country", 0, "LifeExpectancy", 1.0)],  # not projected
                [CellDelta("Country", 0, "Name", "Renamed")],      # projected
            ],
        )
        query = sql_query("select Name from Country", mini_db)
        assert ConflictSetEngine(support).conflict_set(query) == {1}

    def test_max_insensitive_to_non_extremal_change(self, mini_db):
        support = self._support(
            mini_db,
            [
                # Bump a small population: max unchanged.
                [CellDelta("Country", 1, "Population", 10545701)],
                # Beat the maximum: answer changes.
                [CellDelta("Country", 1, "Population", 2000000000)],
            ],
        )
        query = sql_query("select max(Population) from Country", mini_db)
        assert ConflictSetEngine(support).conflict_set(query) == {1}

    def test_join_conflict_via_dimension_change(self, mini_db):
        support = self._support(
            mini_db,
            [
                # Re-label Greek speakers as German: join result changes.
                [CellDelta("CountryLanguage", 0, "Language", "German")],
                # Change percentage (not selected, not filtered): no change.
                [CellDelta("CountryLanguage", 1, "Percentage", 50.0)],
            ],
        )
        query = sql_query(
            "select Name from Country , CountryLanguage "
            "where Code = CountryCode and Language = 'Greek'",
            mini_db,
        )
        assert ConflictSetEngine(support).conflict_set(query) == {0}

    def test_multi_cell_instance(self, mini_db):
        support = self._support(
            mini_db,
            [
                # Two changes that cancel in count but not in sum.
                [
                    CellDelta("City", 0, "Population", 745515),
                    CellDelta("City", 1, "Population", 2125245),
                ],
            ],
        )
        count_query = sql_query("select count(ID) from City", mini_db)
        sum_query = sql_query("select sum(Population) from City", mini_db)
        assert ConflictSetEngine(support).conflict_set(count_query) == set()
        # +1 and -1 cancel exactly in the sum as well: still no conflict.
        assert ConflictSetEngine(support).conflict_set(sum_query) == set()

    def test_multi_cell_sum_changes(self, mini_db):
        support = self._support(
            mini_db,
            [[CellDelta("City", 0, "Population", 745520)]],
        )
        sum_query = sql_query("select sum(Population) from City", mini_db)
        assert ConflictSetEngine(support).conflict_set(sum_query) == {0}
