"""End-to-end SQL tests: parse + plan + execute on the mini database.

Includes every query shape from the paper's Table 7 workload.
"""

import pytest

from repro.db.plan import CrossJoin, HashJoin
from repro.db.query import sql_query
from repro.exceptions import QueryError


def run(sql, db):
    return sql_query(sql, db).run(db)


class TestSelections:
    def test_count_with_filter(self, mini_db):
        result = run("select count(Name) from Country where Continent = 'Asia'", mini_db)
        assert result.scalar() == 1

    def test_count_distinct(self, mini_db):
        assert run("select count(distinct Continent) from Country", mini_db).scalar() == 3

    def test_avg(self, mini_db):
        result = run("select avg(LifeExpectancy) from Country", mini_db)
        assert result.scalar() == pytest.approx((77.1 + 78.4 + 78.8 + 62.5) / 4)

    def test_max_min(self, mini_db):
        assert run("select max(Population) from Country", mini_db).scalar() == 1013662000
        assert run("select min(LifeExpectancy) from Country", mini_db).scalar() == 62.5

    def test_like(self, mini_db):
        result = run("select Name from Country where Name like 'F%'", mini_db)
        assert result.rows == [("France",)]

    def test_between(self, mini_db):
        result = run(
            "select Name from Country where Population between 10000000 and 60000000",
            mini_db,
        )
        assert sorted(result.rows) == [("France",), ("Greece",)]

    def test_star(self, mini_db):
        result = run("select * from Country", mini_db)
        assert result.num_rows == 4
        assert result.columns[0] == "Code"

    def test_conjunction(self, mini_db):
        result = run(
            "select * from Country where Continent='Europe' and Population > 20000000",
            mini_db,
        )
        assert result.num_rows == 1

    def test_limit(self, mini_db):
        result = run("select * from Country where Continent='Europe' limit 1", mini_db)
        assert result.num_rows == 1

    def test_select_constant(self, mini_db):
        result = run(
            "select distinct 1 from City where CountryCode = 'USA' and Population > 10000000",
            mini_db,
        )
        assert result.num_rows == 0

    def test_select_constant_nonempty(self, mini_db):
        result = run(
            "select distinct 1 from City where CountryCode = 'IND' and Population > 10000000",
            mini_db,
        )
        assert result.rows == [(1,)]


class TestGroupBy:
    def test_group_count(self, mini_db):
        result = run(
            "select Continent, count(Code) from Country group by Continent", mini_db
        )
        as_dict = dict(result.rows)
        assert as_dict["Europe"] == 2

    def test_group_max(self, mini_db):
        result = run(
            "select Continent, max(Population) from Country group by Continent",
            mini_db,
        )
        assert dict(result.rows)["Asia"] == 1013662000

    def test_group_sum_over_join_table(self, mini_db):
        result = run(
            "select CountryCode, sum(Population) from City group by CountryCode",
            mini_db,
        )
        assert dict(result.rows)["GRC"] == 745514

    def test_select_order_differs_from_group_order(self, mini_db):
        result = run(
            "select count(Code), Continent from Country group by Continent", mini_db
        )
        assert result.columns == ["count(Code)", "Continent"]
        assert (2, "Europe") in result.rows

    def test_non_grouped_column_rejected(self, mini_db):
        with pytest.raises(QueryError, match="GROUP BY"):
            sql_query("select Name, count(*) from Country group by Continent", mini_db)


class TestJoins:
    def test_implicit_join_uses_hash_join(self, mini_db):
        query = sql_query(
            "select Name, Language from Country , CountryLanguage "
            "where Code = CountryCode",
            mini_db,
        )
        # Project(HashJoin) — no cross join anywhere in the plan.
        nodes = [query.plan]
        found_hash = found_cross = False
        while nodes:
            node = nodes.pop()
            found_hash |= isinstance(node, HashJoin)
            found_cross |= isinstance(node, CrossJoin)
            nodes.extend(node.children())
        assert found_hash and not found_cross

    def test_join_with_selection(self, mini_db):
        result = run(
            "select Name from Country , CountryLanguage "
            "where Code = CountryCode and Language = 'Greek'",
            mini_db,
        )
        assert result.rows == [("Greece",)]

    def test_aliased_join(self, mini_db):
        result = run(
            "select C.Name from Country C, CountryLanguage L "
            "where C.Code = L.CountryCode and L.Percentage >= 90",
            mini_db,
        )
        assert sorted(result.rows) == [("France",), ("Greece",)]

    def test_join_star(self, mini_db):
        result = run(
            "select * from Country , CountryLanguage where Code = CountryCode",
            mini_db,
        )
        assert result.num_rows == 3
        assert len(result.columns) == 6 + 3

    def test_three_way_join(self, mini_db):
        result = run(
            "select C.Name, T.Name, L.Language from Country C, City T, CountryLanguage L "
            "where C.Code = T.CountryCode and C.Code = L.CountryCode "
            "and L.Language = 'Greek'",
            mini_db,
        )
        assert result.rows == [("Greece", "Athens", "Greek")]

    def test_join_on_constant_lookup(self, mini_db):
        result = run(
            "select T.Name from Country C, City T "
            "where C.Code = 'USA' and C.Code = T.CountryCode",
            mini_db,
        )
        assert result.rows == [("New York",)]


class TestOrderBy:
    def test_order_by_projected_column(self, mini_db):
        result = run("select Name from Country order by Name", mini_db)
        assert result.rows[0] == ("France",)
        assert result.ordered

    def test_order_by_unprojected_column(self, mini_db):
        result = run("select Name from Country order by Population desc", mini_db)
        assert result.rows[0] == ("India",)

    def test_order_by_then_limit(self, mini_db):
        result = run("select Name from Country order by Population desc limit 2", mini_db)
        assert result.rows == [("India",), ("United States",)]


class TestErrors:
    def test_unknown_table(self, mini_db):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            sql_query("select * from Nowhere", mini_db)

    def test_unknown_column(self, mini_db):
        with pytest.raises(QueryError, match="unknown column"):
            sql_query("select Nope from Country", mini_db)

    def test_ambiguous_column(self, mini_db):
        with pytest.raises(QueryError, match="ambiguous"):
            sql_query(
                "select Name from Country, City where Code = CountryCode", mini_db
            )

    def test_duplicate_alias(self, mini_db):
        with pytest.raises(QueryError, match="duplicate"):
            sql_query("select * from Country X, City X", mini_db)

    def test_unknown_alias(self, mini_db):
        with pytest.raises(QueryError):
            sql_query("select Z.Name from Country C", mini_db)


class TestDeterminism:
    def test_same_query_same_answer(self, mini_db):
        sql = "select Continent, count(Code) from Country group by Continent"
        assert run(sql, mini_db) == run(sql, mini_db)

    def test_referenced_tables(self, mini_db):
        query = sql_query(
            "select Name from Country , CountryLanguage where Code = CountryCode",
            mini_db,
        )
        assert query.referenced_tables == {"country", "countrylanguage"}
