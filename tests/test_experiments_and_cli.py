"""Tests for the experiment harness, report rendering and the CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.algorithms import UBP, UIP
from repro.experiments.report import format_series_table, format_table
from repro.experiments.runner import (
    run_algorithms,
    run_parameter_sweep,
    sweep_series,
)
from repro.valuations import UniformValuations
from repro.workloads.synthetic import random_instance


@pytest.fixture
def instance():
    return random_instance(25, 15, rng=2)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_floats(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.123" in text

    def test_series_table(self):
        text = format_series_table(
            "k", [1, 2], {"ubp": [0.5, 0.25], "uip": [0.75, 0.5]}
        )
        assert "ubp" in text and "0.250" in text


class TestRunner:
    def test_run_algorithms_collects_results(self, instance):
        outcome = run_algorithms(instance, [UBP(), UIP()], compute_bound=True)
        assert set(outcome.results) == {"ubp", "uip"}
        assert outcome.subadditive_bound is not None
        assert 0 <= outcome.normalized("ubp") <= 1.0 + 1e-9

    def test_normalized_series_includes_bound(self, instance):
        outcome = run_algorithms(instance, [UBP()], compute_bound=True)
        series = outcome.normalized_series()
        assert "subadditive bound" in series

    def test_skip_bound(self, instance):
        outcome = run_algorithms(instance, [UBP()], compute_bound=False)
        assert outcome.subadditive_bound is None

    def test_parameter_sweep_shape(self, instance):
        models = [(k, UniformValuations(k)) for k in (10, 100)]
        points = run_parameter_sweep(
            instance.hypergraph, models, [UBP(), UIP()], compute_bound=False
        )
        assert [point.parameter for point in points] == [10, 100]
        parameters, series = sweep_series(points)
        assert parameters == [10, 100]
        assert len(series["ubp"]) == 2

    def test_sweep_repetitions_average(self, instance):
        models = [(100, UniformValuations(100))]
        single = run_parameter_sweep(
            instance.hypergraph, models, [UBP()], compute_bound=False, repetitions=1
        )[0]
        averaged = run_parameter_sweep(
            instance.hypergraph, models, [UBP()], compute_bound=False, repetitions=4
        )[0]
        assert averaged.result.results["ubp"].revenue > 0
        # Averaged value differs from any single run in general but stays in range.
        assert (
            0.5 * single.result.results["ubp"].revenue
            < averaged.result.results["ubp"].revenue
            < 2.0 * single.result.results["ubp"].revenue
        )

    def test_runtimes_reported(self, instance):
        outcome = run_algorithms(instance, [UBP()], compute_bound=False)
        assert outcome.runtimes()["ubp"] >= 0.0


class TestCLI:
    def test_algorithms_lists(self, capsys):
        assert cli_main(["algorithms"]) == 0
        output = capsys.readouterr().out
        assert "lpip" in output and "layering" in output

    def test_price_command_small(self, capsys):
        code = cli_main(
            [
                "price", "--workload", "skewed", "--algorithm", "ubp",
                "--support", "40", "--scale", "0.1",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "revenue" in output and "normalized" in output

    def test_unknown_figure_id(self, capsys):
        assert cli_main(["figure", "fig99-bogus"]) == 2

    def test_loadgen_command_small(self, capsys):
        code = cli_main(
            [
                "loadgen", "--workload", "uniform", "--scale", "0.1",
                "--support", "60", "--queries", "20", "--requests", "100",
                "--clients", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "req/s" in output and "quote cache" in output

    def test_serve_bench_command_small(self, capsys, tmp_path):
        json_path = tmp_path / "BENCH_service.json"
        code = cli_main(
            [
                "serve-bench", "--workload", "uniform", "--scale", "0.1",
                "--support", "60", "--queries", "20", "--requests", "300",
                "--clients", "2", "--json", str(json_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "service-throughput-uniform" in output
        payload = json.loads(json_path.read_text())
        assert "speedups" in payload and "latency" in payload
        assert payload["diagnostics"]["service"]["quote_cache"]["hits"] > 0
