"""The staged delta log: accept → validate → apply / cancel.

A :class:`DeltaLog` is the market's mutation inbox. ``accept`` stages a
typed op and returns a delta id; the serving tier later ``apply``-ies it
(validating first) or the submitter ``cancel``-s it. Every applied delta is
stamped with a monotonically increasing ``data_version`` — the high-water
mark persisted in snapshots so a warm restore can refuse state older than
the live log.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.delta.types import DeltaOp
from repro.exceptions import DeltaError

STAGED = "staged"
APPLIED = "applied"
CANCELLED = "cancelled"
REJECTED = "rejected"


@dataclass
class DeltaRecord:
    """One staged mutation and its lifecycle state."""

    delta_id: int
    op: DeltaOp
    status: str = STAGED
    data_version: int | None = None  #: stamp assigned when applied
    error: str | None = None  #: validation message when rejected


@dataclass
class DeltaLogCounters:
    """Lifetime counters, exported through service stats and ``/metrics``."""

    accepted: int = 0
    applied: int = 0
    cancelled: int = 0
    rejected: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "accepted": self.accepted,
            "applied": self.applied,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
        }


@dataclass
class DeltaLog:
    """Thread-safe staged mutation log with monotone version stamps."""

    start_version: int = 0
    _records: dict[int, DeltaRecord] = field(default_factory=dict, repr=False)
    _next_id: int = field(default=1, repr=False)
    _applied_version: int = field(init=False, repr=False)
    _counters: DeltaLogCounters = field(
        default_factory=DeltaLogCounters, repr=False
    )
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        self._applied_version = self.start_version

    @property
    def applied_version(self) -> int:
        """The data version of the most recently applied delta."""
        return self._applied_version

    @property
    def counters(self) -> DeltaLogCounters:
        return self._counters

    def accept(self, op: DeltaOp) -> int:
        """Stage a delta, returning its id."""
        with self._lock:
            delta_id = self._next_id
            self._next_id += 1
            self._records[delta_id] = DeltaRecord(delta_id=delta_id, op=op)
            self._counters.accepted += 1
            return delta_id

    def get(self, delta_id: int) -> DeltaRecord:
        with self._lock:
            record = self._records.get(delta_id)
        if record is None:
            raise DeltaError(f"unknown delta id {delta_id}")
        return record

    def staged_op(self, delta_id: int) -> DeltaOp:
        """The op of a still-staged delta (typed error otherwise)."""
        record = self.get(delta_id)
        if record.status != STAGED:
            raise DeltaError(
                f"delta {delta_id} is {record.status}, not {STAGED}"
            )
        return record.op

    def cancel(self, delta_id: int) -> DeltaRecord:
        """Cancel a staged delta; applied/cancelled deltas cannot be."""
        with self._lock:
            record = self._records.get(delta_id)
            if record is None:
                raise DeltaError(f"unknown delta id {delta_id}")
            if record.status != STAGED:
                raise DeltaError(
                    f"cannot cancel delta {delta_id}: it is {record.status}"
                )
            record.status = CANCELLED
            self._counters.cancelled += 1
            return record

    def mark_applied(self, delta_id: int) -> int:
        """Stamp a staged delta as applied; returns its data version."""
        with self._lock:
            record = self._records.get(delta_id)
            if record is None:
                raise DeltaError(f"unknown delta id {delta_id}")
            if record.status != STAGED:
                raise DeltaError(
                    f"cannot apply delta {delta_id}: it is {record.status}"
                )
            self._applied_version += 1
            record.status = APPLIED
            record.data_version = self._applied_version
            self._counters.applied += 1
            return self._applied_version

    def mark_rejected(self, delta_id: int, error: str) -> None:
        """Record a validation failure; the delta stays in the log."""
        with self._lock:
            record = self._records.get(delta_id)
            if record is None:
                raise DeltaError(f"unknown delta id {delta_id}")
            if record.status != STAGED:
                raise DeltaError(
                    f"cannot reject delta {delta_id}: it is {record.status}"
                )
            record.status = REJECTED
            record.error = error
            self._counters.rejected += 1
