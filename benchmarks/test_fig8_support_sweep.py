"""Figure 8: revenue as a function of support-set size (skewed + SSB).

Paper findings: UBP is insensitive to |S| (it never looks at the items);
item-pricing algorithms improve as the support grows (finer price
granularity, fewer empty conflict sets).
"""

import pytest

from repro.experiments.figures import figure8_support_sweep

from benchmarks.conftest import save_artifact

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow


SIZES = (100, 200, 400, 800)


@pytest.mark.parametrize("workload_name", ["skewed", "ssb"])
def test_fig8_revenue_vs_support_size(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure8_support_sweep,
        args=(workload_name,),
        kwargs={"support_sizes": SIZES},
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]

    # UBP ignores the support: its normalized revenue is flat across sizes.
    ubp = series["ubp"]
    assert max(ubp) - min(ubp) < 0.02

    # Item pricing gains from a larger support: the best item-pricing
    # algorithm at the largest size beats the one at the smallest size.
    lpip = series["lpip"]
    assert lpip[-1] >= lpip[0] - 1e-9
    assert max(lpip) == pytest.approx(lpip[-1], abs=0.1)
