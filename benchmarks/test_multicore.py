"""Process-shard scaling benchmark: true multi-core conflict computation.

The claim: with caches big enough to never evict and an open-loop stream
fast enough that compute is the bottleneck, the process-per-shard tier
(:class:`~repro.service.multicore.ProcessShardedPricingService`) scales
with cores in a way the GIL-bound thread tier cannot — ``>= 1.8x`` wall
time at 4 worker processes vs 1 on a 4-core runner. Prices stay bit-equal
to the in-process :class:`~repro.service.sharding.ShardedPricingService`
oracle and home-shard routing is identical (both asserted inside the
figure at every shard count).

The speedup assertion is gated on ``os.cpu_count() >= 4``: on a 1-core
box the processes time-slice one core and the wall times are flat, but
the parity, zero-shed, zero-restart, and worker-counter proofs still run
everywhere, and ``BENCH_multicore.json`` is still written so the
dedicated ``multicore-scaling`` CI job can gate it with
``repro-pricing bench-check --pattern BENCH_multicore.json``.
"""

import os

import pytest

from repro.experiments.figures import multicore_throughput
from repro.service.multicore import fork_available

from benchmarks.conftest import save_bench_json

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="needs the fork start method (POSIX only)"
)

#: The lowest acceptable 4-process/1-process speedup on a >= 4-core host.
#: ~2.2x measured on the 4-core CI runner at these parameters; 1.8 leaves
#: margin for runner noise while still catching a tier that serializes
#: its workers (a broken scatter would measure ~1.0x).
MIN_SPEEDUP_AT_4 = 1.8

#: Deliberately miss-heavy: 600 distinct queries under near-uniform zipf
#: (s=0.1) over 720 requests touch ~414 distinct queries, each paying one
#: conflict-set computation over |S|=12000; per-shard caches never evict
#: at capacity 1024. The 2400 req/s offered rate keeps the open-loop
#: schedule ahead of compute, so wall time measures compute throughput.
CI_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.2,
    "support_size": 12000,
    "num_queries": 600,
    "num_requests": 720,
    "zipf_s": 0.1,
    "num_clients": 12,
    "arrival_rate": 2400.0,
    "process_shard_counts": (1, 2, 4),
    "cache_capacity": 1024,
}

FULL_KWARGS = {**CI_KWARGS, "process_shard_counts": (1, 2, 4, 8)}


def _check(artifact, shard_counts: tuple[int, ...]) -> None:
    top = shard_counts[-1]
    speedups = artifact.data["speedups"]
    # The hard scaling gate needs real cores; the figure already asserted
    # bit-equal prices, identical routing, zero sheds, and zero restarts
    # at every count, so everything below is host-independent.
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4 and top >= 4:
        assert speedups["process_shards=4"] >= MIN_SPEEDUP_AT_4, speedups
    for count in shard_counts:
        tier = artifact.data["diagnostics"][f"process_shards={count}"]["service"]
        assert tier["worker_restarts"] == 0, tier
        assert tier["requests_shed"] == 0, tier
        assert tier["requests_accepted"] > 0, tier
        # Misses were computed *in the worker processes*: every shard's
        # coordinator-side scheduler flushed batches, and its worker's
        # own counters saw them arrive over the pipe.
        assert len(tier["shards"]) == count, tier
        for shard in tier["shards"]:
            assert shard["pid"] > 0, shard
            assert shard["restarts"] == 0, shard
            assert shard["batcher"]["batches"] >= 1, shard
            assert shard["worker"] is not None, shard
            assert shard["worker"]["batches"] >= 1, shard
            assert shard["worker"]["batched_requests"] >= 1, shard
        # The quote cache was consulted (repeats in the zipf stream hit).
        cache = tier["quote_cache"]
        assert cache["hits"] + cache["misses"] > 0, cache
    report = artifact.data["diagnostics"][f"process_shards={top}"]
    assert report["errors"] == 0, report
    assert "per_shard_latency" in report, sorted(report)


def test_multicore_throughput_uniform(benchmark):
    artifact = benchmark.pedantic(
        multicore_throughput, kwargs=CI_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_multicore.json")
    _check(artifact, CI_KWARGS["process_shard_counts"])


@pytest.mark.slow
def test_multicore_throughput_uniform_full(benchmark):
    """1/2/4/8-worker variant, part of the workflow_dispatch --runslow job."""
    artifact = benchmark.pedantic(
        multicore_throughput, kwargs=FULL_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_multicore_full.json")
    _check(artifact, FULL_KWARGS["process_shard_counts"])
