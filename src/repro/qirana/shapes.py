"""Shared plan-shape matching for the conflict backends.

Both the incremental checkers (:mod:`repro.qirana.incremental`) and the
vectorized batch engine (:mod:`repro.qirana.vectorized`) decide conflicts
only for plans of the canonical shape::

    [Sort] Project [Filter(HAVING)] [Aggregate] [Filter] <source>
    <source> ::= TableScan | Filter(TableScan)
               | HashJoin(<side>, <side>) ...     (left-deep, distinct tables)
    <side>   ::= TableScan | Filter(TableScan)

Historically each backend carried its own matcher and the two drifted; this
module is the single source of truth. :func:`match_shape` performs the purely
*structural* decomposition (no database access), returning a
:class:`QueryShape` that both backends — and the ``auto`` dispatch heuristic —
consume. Orderedness rules live here too: a ``Sort`` node makes the answer a
sequence rather than a bag, which changes what the checkers may decide (the
query's own ``ordered`` flag must still be OR-ed in by the caller, since
programmatic plans can declare orderedness without a Sort node).

Backends remain free to reject a *matched* shape for their own reasons (the
vectorized engine does not batch DISTINCT aggregates or TEXT sums); the
point is that the structural rules — what counts as a source, a residual
filter, a HAVING filter, a left-deep join tree — are written once.
:func:`resolve_shape` memoizes the decomposition per plan object so the
canonicalizer, the template compiler, and the dispatch heuristic share one
structural walk per miss instead of re-matching the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.plan import (
    Aggregate,
    Filter,
    HashJoin,
    PlanNode,
    Project,
    Sort,
    TableScan,
)

#: Aggregate functions the conflict checkers know how to maintain.
SUPPORTED_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})


@dataclass(frozen=True)
class SourceSide:
    """One side of the source: a scan with an optional pushed-down filter."""

    scan: TableScan
    predicate: Filter | None

    @property
    def table(self) -> str:
        return self.scan.table.lower()


@dataclass(frozen=True)
class JoinLevel:
    """One HashJoin level of a left-deep join tree plus its right side."""

    join: HashJoin
    right: SourceSide


@dataclass
class QueryShape:
    """The canonical decomposition of a supported plan.

    Exactly one of ``single`` / (``leftmost`` + ``levels``) describes the
    source: ``single`` for one-table plans, otherwise the leftmost side plus
    one :class:`JoinLevel` per HashJoin, bottom-up.
    """

    project: Project
    aggregate: Aggregate | None = None
    having: Filter | None = None
    residual: Filter | None = None  # filter above the join, below any Aggregate
    single: SourceSide | None = None
    leftmost: SourceSide | None = None
    levels: list[JoinLevel] = field(default_factory=list)
    ordered: bool = False  # a Sort node tops the plan

    @property
    def is_join(self) -> bool:
        return self.leftmost is not None

    @property
    def tables(self) -> tuple[str, ...]:
        """Lowercased source tables, leftmost first (length 1 when single)."""
        if self.single is not None:
            return (self.single.table,)
        return (self.leftmost.table,) + tuple(
            level.right.table for level in self.levels
        )

    @property
    def grouped(self) -> bool:
        return self.aggregate is not None and bool(self.aggregate.group_items)


#: Plans pinned alongside their decomposition so ``id()`` stays unambiguous.
_SHAPE_MEMO: dict[int, tuple[PlanNode, "QueryShape | None"]] = {}
_SHAPE_MEMO_CAP = 4096


def resolve_shape(plan: PlanNode) -> QueryShape | None:
    """Memoized :func:`match_shape` keyed on plan identity.

    The canonicalizer, the template compiler, and the conflict backends all
    decompose the same planned query on a cache miss; this memo makes the
    structural walk happen once per plan object. Entries pin the plan so a
    recycled ``id()`` can never alias a dead plan; callers must treat the
    returned :class:`QueryShape` as immutable.
    """
    cached = _SHAPE_MEMO.get(id(plan))
    if cached is not None and cached[0] is plan:
        return cached[1]
    shape = match_shape(plan)
    if len(_SHAPE_MEMO) >= _SHAPE_MEMO_CAP:
        _SHAPE_MEMO.clear()
    _SHAPE_MEMO[id(plan)] = (plan, shape)
    return shape


def unwrap_side(node: PlanNode) -> SourceSide | None:
    """Match ``TableScan`` or ``Filter(TableScan)``."""
    if isinstance(node, TableScan):
        return SourceSide(node, None)
    if isinstance(node, Filter) and isinstance(node.child, TableScan):
        return SourceSide(node.child, node)
    return None


def decompose_left_deep(
    node: PlanNode,
) -> tuple[SourceSide | None, list[JoinLevel]]:
    """Split a left-deep HashJoin tree into (leftmost side, join levels)."""
    levels: list[JoinLevel] = []
    while isinstance(node, HashJoin):
        right = unwrap_side(node.right)
        if right is None:
            return None, []
        levels.append(JoinLevel(node, right))
        node = node.left
    leftmost = unwrap_side(node)
    if leftmost is None:
        return None, []
    levels.reverse()
    return leftmost, levels


def match_shape(plan: PlanNode) -> QueryShape | None:
    """Structurally decompose ``plan``, or ``None`` when unsupported.

    Unsupported shapes include DISTINCT, LIMIT, cross joins, bushy or
    self-joins, and aggregate functions outside :data:`SUPPORTED_AGGREGATES`.
    """
    node = plan
    ordered = False
    if isinstance(node, Sort):
        # With ORDER BY the answer is a sequence, not a bag: a single row's
        # contribution changing still decides exactly (the sequence changes
        # iff the bag changes), but *multi-row* patches can reorder tie
        # groups while preserving the bag — checkers must treat those as
        # undecidable (full re-execution).
        ordered = True
        node = node.child
    if not isinstance(node, Project):
        return None
    project = node
    node = node.child

    having: Filter | None = None
    if isinstance(node, Filter) and isinstance(node.child, Aggregate):
        # HAVING: a filter over the aggregate's output rows. A group's
        # output is *visible* only when the predicate passes; visibility is
        # recomputed per group before and after the patch.
        having = node
        node = node.child

    aggregate: Aggregate | None = None
    if isinstance(node, Aggregate):
        aggregate = node
        if not {
            spec.func.lower() for spec in aggregate.aggregates
        } <= SUPPORTED_AGGREGATES:
            return None
        node = node.child

    residual: Filter | None = None
    if isinstance(node, Filter) and isinstance(node.child, HashJoin):
        residual = node
        node = node.child

    if isinstance(node, HashJoin):
        leftmost, levels = decompose_left_deep(node)
        if leftmost is None:
            return None
        tables = {leftmost.table}
        for level in levels:
            if level.right.table in tables:
                return None  # self-join: one patch hits two source slots
            tables.add(level.right.table)
        return QueryShape(
            project=project,
            aggregate=aggregate,
            having=having,
            residual=residual,
            leftmost=leftmost,
            levels=levels,
            ordered=ordered,
        )

    single = unwrap_side(node)
    if single is None:
        return None
    return QueryShape(
        project=project,
        aggregate=aggregate,
        having=having,
        single=single,
        ordered=ordered,
    )
