"""Logical query plans and their executor.

Plans are trees of :class:`PlanNode`. Each node knows the :class:`Scope`
(column layout) of the rows it produces for a given database and can execute
itself bottom-up. The planner (:mod:`repro.db.sql.planner`) chooses hash joins
for equality predicates so the TPC-H/SSB style star joins never materialize a
cartesian product.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.aggregates import compute_aggregate
from repro.db.database import Database
from repro.db.expr import Expr, Scope
from repro.db.result import QueryResult, _row_key, _sort_key
from repro.db.schema import Value
from repro.exceptions import QueryError


class PlanNode:
    """Base class for logical plan operators."""

    def output_scope(self, db: Database) -> Scope:
        """Column layout of the rows produced against ``db``."""
        raise NotImplementedError

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        """Produce all output rows against ``db``."""
        raise NotImplementedError

    def execute_batch(self, db: Database, source=None):
        """Columnar execution, producing a :class:`~repro.db.columnar.ColumnarBatch`.

        ``source`` (a ColumnarBatch over the scan scope) substitutes the base
        rows at the TableScan leaf, letting columnar consumers evaluate a
        plan fragment over externally supplied rows. (The vectorized
        conflict backend composes :meth:`Expr.eval_batch` pieces directly
        instead — it needs the filter *mask* over position-aligned old/new
        row pairs, which Filter's row compaction here would destroy.)
        Raises :class:`QueryError` for operators without a columnar
        implementation (joins, aggregates, sorts); callers fall back to the
        scalar path per query.
        """
        raise QueryError(
            f"{type(self).__name__} has no columnar execution path"
        )

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def referenced_tables(self) -> set[str]:
        """Lowercased names of every base table referenced in the subtree."""
        tables: set[str] = set()
        stack: list[PlanNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, TableScan):
                tables.add(node.table.lower())
            stack.extend(node.children())
        return tables


@dataclass
class TableScan(PlanNode):
    """Scan a base table, exposing its columns under ``alias``."""

    table: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return (self.alias or self.table).lower()

    def output_scope(self, db: Database) -> Scope:
        schema = db.table(self.table).schema
        return Scope([(self.effective_alias, name) for name in schema.column_names])

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        return db.table(self.table).rows

    def execute_batch(self, db: Database, source=None):
        if source is not None:
            return source
        from repro.db.columnar import table_batch

        return table_batch(db.table(self.table), self.output_scope(db))


@dataclass
class Filter(PlanNode):
    """Keep rows where ``predicate`` evaluates truthy."""

    child: PlanNode
    predicate: Expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_scope(self, db: Database) -> Scope:
        return self.child.output_scope(db)

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        test = self.predicate.bind(self.child.output_scope(db))
        return [row for row in self.child.execute(db) if test(row)]

    def execute_batch(self, db: Database, source=None):
        from repro.db.columnar import truth

        batch = self.child.execute_batch(db, source)
        evaluate = self.predicate.eval_batch(self.child.output_scope(db))
        return batch.compress(truth(evaluate(batch)))


@dataclass
class CrossJoin(PlanNode):
    """Cartesian product; the planner only uses this when no equi-key exists."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def output_scope(self, db: Database) -> Scope:
        return self.left.output_scope(db).concat(self.right.output_scope(db))

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        right_rows = self.right.execute(db)
        return [
            left_row + right_row
            for left_row in self.left.execute(db)
            for right_row in right_rows
        ]


@dataclass
class HashJoin(PlanNode):
    """Equi-join: build a hash table on the right input, probe with the left.

    Join keys are expressions over the respective inputs; rows whose key
    contains NULL never match (SQL equality semantics).
    """

    left: PlanNode
    right: PlanNode
    left_keys: list[Expr]
    right_keys: list[Expr]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def output_scope(self, db: Database) -> Scope:
        return self.left.output_scope(db).concat(self.right.output_scope(db))

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        if len(self.left_keys) != len(self.right_keys) or not self.left_keys:
            raise QueryError("hash join requires matching, non-empty key lists")
        left_scope = self.left.output_scope(db)
        right_scope = self.right.output_scope(db)
        left_eval = [key.bind(left_scope) for key in self.left_keys]
        right_eval = [key.bind(right_scope) for key in self.right_keys]

        table: dict[tuple, list[tuple[Value, ...]]] = {}
        for row in self.right.execute(db):
            key = tuple(evaluate(row) for evaluate in right_eval)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(row)

        output: list[tuple[Value, ...]] = []
        for row in self.left.execute(db):
            key = tuple(evaluate(row) for evaluate in left_eval)
            if any(part is None for part in key):
                continue
            for match in table.get(key, ()):
                output.append(row + match)
        return output

    def execute_batch(self, db: Database, source=None):
        from repro.db.columnar import (
            ColumnarBatch,
            build_key_index,
            hash_join_indices,
            key_tuples,
        )

        if source is not None:
            # With two scan leaves there is no unambiguous substitution point.
            raise QueryError("HashJoin cannot substitute an external source batch")
        if len(self.left_keys) != len(self.right_keys) or not self.left_keys:
            raise QueryError("hash join requires matching, non-empty key lists")
        left_batch = self.left.execute_batch(db)
        right_batch = self.right.execute_batch(db)
        left_scope = self.left.output_scope(db)
        right_scope = self.right.output_scope(db)
        left_keys = key_tuples(
            [key.eval_batch(left_scope)(left_batch) for key in self.left_keys]
        )
        right_keys = key_tuples(
            [key.eval_batch(right_scope)(right_batch) for key in self.right_keys]
        )
        index = build_key_index(right_keys)
        left_rows, right_rows = hash_join_indices(left_keys, index)
        left_taken = left_batch.take(left_rows)
        right_taken = right_batch.take(right_rows)
        return ColumnarBatch(
            left_scope.concat(right_scope),
            left_taken.columns + right_taken.columns,
            left_taken.num_rows,
        )


@dataclass
class ProjectItem:
    """One output column of a projection."""

    expr: Expr
    name: str


@dataclass
class Project(PlanNode):
    """Compute a list of named output expressions per input row."""

    child: PlanNode
    items: list[ProjectItem]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_scope(self, db: Database) -> Scope:
        return Scope([(None, item.name) for item in self.items])

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        scope = self.child.output_scope(db)
        evaluators = [item.expr.bind(scope) for item in self.items]
        return [
            tuple(evaluate(row) for evaluate in evaluators)
            for row in self.child.execute(db)
        ]

    def execute_batch(self, db: Database, source=None):
        from repro.db.columnar import ColumnarBatch

        batch = self.child.execute_batch(db, source)
        scope = self.child.output_scope(db)
        columns = [item.expr.eval_batch(scope)(batch) for item in self.items]
        return ColumnarBatch(self.output_scope(db), columns, batch.num_rows)


@dataclass
class AggregateSpec:
    """One aggregate output column: ``func([DISTINCT] arg)`` AS ``name``."""

    func: str
    arg: Expr | None  # None encodes COUNT(*)
    name: str
    distinct: bool = False


@dataclass
class Aggregate(PlanNode):
    """GROUP BY + aggregate evaluation.

    Output columns are the group expressions (in order) followed by the
    aggregates. With no group expressions the input forms a single group, and
    an empty input still yields one output row (SQL scalar-aggregate rule).
    """

    child: PlanNode
    group_items: list[ProjectItem] = field(default_factory=list)
    aggregates: list[AggregateSpec] = field(default_factory=list)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_scope(self, db: Database) -> Scope:
        slots: list[tuple[str | None, str]] = [
            (None, item.name) for item in self.group_items
        ]
        slots.extend((None, spec.name) for spec in self.aggregates)
        return Scope(slots)

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        scope = self.child.output_scope(db)
        group_eval = [item.expr.bind(scope) for item in self.group_items]
        arg_eval = [
            spec.arg.bind(scope) if spec.arg is not None else None
            for spec in self.aggregates
        ]

        groups: dict[tuple, list[tuple[Value, ...]]] = {}
        for row in self.child.execute(db):
            key = tuple(evaluate(row) for evaluate in group_eval)
            groups.setdefault(key, []).append(row)

        if not groups and not self.group_items:
            groups[()] = []

        output: list[tuple[Value, ...]] = []
        for key, rows in groups.items():
            aggregated: list[Value] = []
            for spec, evaluate in zip(self.aggregates, arg_eval):
                if evaluate is None:
                    if spec.func.lower() != "count":
                        raise QueryError(f"{spec.func}(*) is not a valid aggregate")
                    value = len(rows)
                else:
                    value = compute_aggregate(
                        spec.func,
                        (evaluate(row) for row in rows),
                        distinct=spec.distinct,
                    )
                aggregated.append(value)
            output.append(key + tuple(aggregated))
        return output

    def execute_batch(self, db: Database, source=None):
        from repro.db.columnar import ColumnarBatch, key_tuples, vector_from_values

        batch = self.child.execute_batch(db, source)
        scope = self.child.output_scope(db)
        key_vectors = [
            item.expr.eval_batch(scope)(batch) for item in self.group_items
        ]
        arg_vectors = [
            spec.arg.eval_batch(scope)(batch) if spec.arg is not None else None
            for spec in self.aggregates
        ]
        keys = (
            key_tuples(key_vectors)
            if key_vectors
            else [()] * batch.num_rows
        )
        groups: dict[tuple, list[int]] = {}
        for position, key in enumerate(keys):
            groups.setdefault(key, []).append(position)
        if not groups and not self.group_items:
            groups[()] = []

        output_rows: list[tuple[Value, ...]] = []
        for key, positions in groups.items():
            aggregated: list[Value] = []
            for spec, vector in zip(self.aggregates, arg_vectors):
                if vector is None:
                    if spec.func.lower() != "count":
                        raise QueryError(f"{spec.func}(*) is not a valid aggregate")
                    value = len(positions)
                else:
                    value = compute_aggregate(
                        spec.func,
                        (vector.value_at(position) for position in positions),
                        distinct=spec.distinct,
                    )
                aggregated.append(value)
            output_rows.append(key + tuple(aggregated))

        transposed = (
            list(zip(*output_rows))
            if output_rows
            else [() for _ in range(len(self.group_items) + len(self.aggregates))]
        )
        columns = [vector_from_values(list(values)) for values in transposed]
        return ColumnarBatch(self.output_scope(db), columns, len(output_rows))


@dataclass
class Distinct(PlanNode):
    """Remove duplicate rows, keeping first occurrence order."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_scope(self, db: Database) -> Scope:
        return self.child.output_scope(db)

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        return list(dict.fromkeys(self.child.execute(db)))


@dataclass
class SortKey:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass
class Sort(PlanNode):
    """Sort rows by one or more keys (NULLs first, SQL-ish)."""

    child: PlanNode
    keys: list[SortKey]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_scope(self, db: Database) -> Scope:
        return self.child.output_scope(db)

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        scope = self.child.output_scope(db)
        evaluators = [(key.expr.bind(scope), key.ascending) for key in self.keys]
        rows = list(self.child.execute(db))
        # Stable multi-key sort: apply keys right-to-left.
        for evaluate, ascending in reversed(evaluators):
            rows.sort(key=lambda row: _sort_key(evaluate(row)), reverse=not ascending)
        return rows


@dataclass
class Limit(PlanNode):
    """Keep the first ``count`` rows."""

    child: PlanNode
    count: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def output_scope(self, db: Database) -> Scope:
        return self.child.output_scope(db)

    def execute(self, db: Database) -> list[tuple[Value, ...]]:
        if self.count < 0:
            raise QueryError("LIMIT count must be non-negative")
        return self.child.execute(db)[: self.count]


def run_plan(root: PlanNode, db: Database, ordered: bool = False) -> QueryResult:
    """Execute a plan and wrap the rows in a :class:`QueryResult`."""
    scope = root.output_scope(db)
    rows = root.execute(db)
    return QueryResult(scope.column_names(), rows, ordered=ordered)


__all__ = [
    "Aggregate",
    "AggregateSpec",
    "CrossJoin",
    "Distinct",
    "Filter",
    "HashJoin",
    "Limit",
    "PlanNode",
    "Project",
    "ProjectItem",
    "Sort",
    "SortKey",
    "TableScan",
    "run_plan",
    "_row_key",
]
