"""The serving tier: concurrent, cached, micro-batched query pricing.

Where :mod:`repro.qirana` optimizes and prices a *workload*,
:mod:`repro.service` serves a *request stream*:

- :mod:`repro.service.canonical` — plan-level fingerprints so textual
  variants of one query share a cache entry,
- :mod:`repro.service.cache` — bounded, generation-invalidated LRU caching,
- :mod:`repro.service.batching` — :class:`MicroBatcher`, the bounded-queue
  micro-batch scheduler with shed-instead-of-queue admission control,
- :mod:`repro.service.server` — :class:`PricingService`, the thread-safe
  micro-batching facade over :class:`~repro.qirana.broker.QueryMarket`,
- :mod:`repro.service.sharding` — :class:`ShardedPricingService`, the
  support-partitioned tier: one market + scheduler per shard,
  consistent-hash routing, scatter/gather quoting, and warm-start
  snapshots,
- :mod:`repro.service.loadgen` / :mod:`repro.service.metrics` — synthetic
  open/closed-loop traffic and (per-shard) latency accounting for
  benchmarks.
"""

from repro.service.batching import BatcherStats, BatchRequest, MicroBatcher
from repro.service.cache import CacheStats, LRUCache, QuoteCache
from repro.service.canonical import canonical_form, canonical_key
from repro.service.loadgen import LoadProfile, LoadReport, run_load, zipf_schedule
from repro.service.metrics import (
    LatencyRecorder,
    LatencySummary,
    ShardLatencyRecorder,
)
from repro.service.server import BuyerSession, PricingService, ServiceStats
from repro.service.sharding import (
    ConsistentHashRouter,
    ShardedPricingService,
    ShardedServiceStats,
    ShardPartition,
    ShardStats,
    partition_support,
)

__all__ = [
    "BatchRequest",
    "BatcherStats",
    "BuyerSession",
    "CacheStats",
    "ConsistentHashRouter",
    "LRUCache",
    "LatencyRecorder",
    "LatencySummary",
    "LoadProfile",
    "LoadReport",
    "MicroBatcher",
    "PricingService",
    "QuoteCache",
    "ServiceStats",
    "ShardLatencyRecorder",
    "ShardPartition",
    "ShardStats",
    "ShardedPricingService",
    "ShardedServiceStats",
    "canonical_form",
    "canonical_key",
    "partition_support",
    "run_load",
    "zipf_schedule",
]
