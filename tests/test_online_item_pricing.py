"""Tests for online per-item price learning."""

import numpy as np
import pytest

from repro.core.pricing import ItemPricing
from repro.exceptions import PricingError
from repro.online import (
    BuyerStream,
    OnlineItemPricingPolicy,
    simulate_item_pricing,
)
from repro.workloads.synthetic import random_instance


@pytest.fixture
def instance():
    return random_instance(30, 20, valuation_high=60.0, rng=2)


class TestPolicy:
    def test_price_is_additive(self):
        policy = OnlineItemPricingPolicy(4, initial_weight=2.0)
        assert policy.price(frozenset({0, 2})) == 4.0
        assert policy.price(frozenset()) == 0.0

    def test_accept_raises_prices(self):
        policy = OnlineItemPricingPolicy(3, initial_weight=1.0, step_up=1.5)
        policy.update(frozenset({0, 1}), accepted=True)
        assert policy.weights[0] == pytest.approx(1.5)
        assert policy.weights[2] == 1.0

    def test_reject_lowers_prices(self):
        policy = OnlineItemPricingPolicy(3, initial_weight=1.0, step_down=0.5)
        policy.update(frozenset({2}), accepted=False)
        assert policy.weights[2] == pytest.approx(0.5)

    def test_floor_respected(self):
        policy = OnlineItemPricingPolicy(
            2, initial_weight=1.0, step_down=0.1, floor=0.05
        )
        for _ in range(10):
            policy.update(frozenset({0}), accepted=False)
        assert policy.weights[0] >= 0.05

    def test_empty_bundle_update_noop(self):
        policy = OnlineItemPricingPolicy(2)
        before = policy.weights.copy()
        policy.update(frozenset(), accepted=True)
        assert np.array_equal(policy.weights, before)

    def test_snapshot_is_valid_pricing(self):
        policy = OnlineItemPricingPolicy(5, initial_weight=3.0)
        snapshot = policy.as_pricing()
        assert isinstance(snapshot, ItemPricing)
        assert snapshot.price(frozenset({0, 1})) == 6.0

    def test_parameter_validation(self):
        with pytest.raises(PricingError):
            OnlineItemPricingPolicy(0)
        with pytest.raises(PricingError):
            OnlineItemPricingPolicy(3, step_up=0.9)
        with pytest.raises(PricingError):
            OnlineItemPricingPolicy(3, step_down=1.1)
        with pytest.raises(PricingError):
            OnlineItemPricingPolicy(3, initial_weight=0.0)


class TestSimulation:
    def test_earns_meaningful_revenue(self, instance):
        stream = BuyerStream(instance, horizon=4000, rng=3)
        policy = OnlineItemPricingPolicy(
            instance.num_items, initial_weight=0.5
        )
        result = simulate_item_pricing(stream, policy)
        assert result.revenue > 0
        assert result.competitive_ratio > 0.2

    def test_revenue_curve_cumulative(self, instance):
        stream = BuyerStream(instance, horizon=500, rng=4)
        policy = OnlineItemPricingPolicy(instance.num_items)
        result = simulate_item_pricing(stream, policy)
        assert np.all(np.diff(result.revenue_curve) >= -1e-9)
        assert result.revenue_curve[-1] == pytest.approx(result.revenue)

    def test_final_pricing_arbitrage_free(self, instance):
        from repro.qirana.validation import verify_arbitrage_freeness

        stream = BuyerStream(instance, horizon=1000, rng=5)
        policy = OnlineItemPricingPolicy(instance.num_items)
        result = simulate_item_pricing(stream, policy)
        violations = verify_arbitrage_freeness(
            result.final_pricing, instance.num_items, trials=100, rng=6
        )
        assert violations == []

    def test_learning_beats_static_overpricing(self, instance):
        # Start absurdly high: the learner must walk prices down to sell.
        stream = BuyerStream(instance, horizon=3000, rng=7)
        policy = OnlineItemPricingPolicy(
            instance.num_items, initial_weight=1000.0, step_down=0.5
        )
        result = simulate_item_pricing(stream, policy)
        assert result.sales > 0
        assert result.revenue > 0
