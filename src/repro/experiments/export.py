"""CSV/JSON export of experiment artifacts.

Every :class:`~repro.experiments.figures.FigureData` can be dumped to a CSV
file so the paper's plots can be regenerated with any plotting tool (the
offline environment has no matplotlib; the benchmark suite prints text tables
and these CSVs are the machine-readable twin). Benchmark-style artifacts
additionally export as JSON (:func:`export_bench_json`) — the
``BENCH_backends.json`` / ``BENCH_pricing.json`` / ``BENCH_service.json``
files the CLI and CI publish so the wall-time/speedup/throughput trajectory
is tracked across PRs instead of living only in pytest asserts.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.experiments.figures import FigureData
from repro.exceptions import ExperimentError

#: data keys included in the benchmark JSON (everything scalar/dict-shaped;
#: bulky arrays like sweep points stay CSV-only).
_BENCH_KEYS = (
    "algorithm",
    "seconds",
    "speedups",
    "speedup_reference",
    "revenues",
    "edges",
    "stats",
    "diagnostics",
    "throughput",
    "latency",
)


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays so ``json`` accepts them."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(item) for item in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value


def export_bench_json(artifact: FigureData, path: str | Path) -> Path:
    """Write a benchmark artifact's machine-readable summary as JSON.

    The payload carries the identifying info plus wall times, speedup
    ratios, revenues, and the n/m/k/B hypergraph stats — enough to diff the
    perf trajectory across PRs without re-parsing text tables.
    """
    payload = {
        "figure_id": artifact.figure_id,
        "title": artifact.title,
    }
    for key in _BENCH_KEYS:
        if key in artifact.data:
            payload[key] = _jsonable(artifact.data[key])
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def export_series_csv(artifact: FigureData, path: str | Path) -> Path:
    """Write a sweep-style artifact (``data['series']``) as CSV.

    Layout: one row per algorithm, one column per parameter value — the same
    orientation as :func:`~repro.experiments.report.format_series_table`.
    """
    series = artifact.data.get("series")
    parameters = artifact.data.get("parameters")
    if series is None:
        raise ExperimentError(
            f"artifact {artifact.figure_id!r} has no series data to export"
        )
    if parameters is None:
        lengths = {len(values) for values in series.values()}
        if len(lengths) != 1:
            raise ExperimentError("series have inconsistent lengths")
        parameters = list(range(lengths.pop()))

    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series"] + [str(p) for p in parameters])
        for name, values in series.items():
            writer.writerow([name] + [f"{v:.6f}" for v in values])
    return path


def export_runtimes_csv(artifact: FigureData, path: str | Path) -> Path:
    """Write a runtime-table artifact (``data['runtimes']``) as CSV."""
    runtimes = artifact.data.get("runtimes")
    if runtimes is None:
        raise ExperimentError(
            f"artifact {artifact.figure_id!r} has no runtime data to export"
        )
    path = Path(path)
    keys = sorted({name for row in runtimes.values() for name in row})
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["row"] + keys)
        for row_label, row in runtimes.items():
            writer.writerow(
                [str(row_label)] + [f"{row.get(key, float('nan')):.6f}" for key in keys]
            )
    return path


def export_histogram_csv(artifact: FigureData, path: str | Path) -> Path:
    """Write a Figure-4-style histogram artifact as CSV."""
    counts = artifact.data.get("counts")
    edges = artifact.data.get("bin_edges")
    if counts is None or edges is None:
        raise ExperimentError(
            f"artifact {artifact.figure_id!r} has no histogram data to export"
        )
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["bin_low", "bin_high", "count"])
        for i, count in enumerate(counts):
            writer.writerow([f"{edges[i]:.1f}", f"{edges[i + 1]:.1f}", int(count)])
    return path
