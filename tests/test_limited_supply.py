"""Limited-supply envy-free pricing: allocation, welfare, algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import ItemPricing
from repro.core.revenue import compute_revenue
from repro.exceptions import PricingError
from repro.limited import (
    LimitedCIP,
    LimitedSupplyInstance,
    LimitedUniformPricing,
    allocate,
    fractional_max_welfare,
    greedy_integral_welfare,
    is_envy_free_feasible,
)


def make_market(num_items, edges, valuations, capacities):
    instance = PricingInstance(Hypergraph(num_items, edges), valuations)
    if isinstance(capacities, int):
        return LimitedSupplyInstance.uniform(instance, capacities)
    return LimitedSupplyInstance(instance, np.asarray(capacities))


@st.composite
def small_markets(draw):
    num_items = draw(st.integers(1, 6))
    num_edges = draw(st.integers(1, 8))
    edges = [
        draw(st.sets(st.integers(0, num_items - 1), min_size=1, max_size=num_items))
        for _ in range(num_edges)
    ]
    valuations = [
        draw(st.floats(0, 50, allow_nan=False, width=32)) for _ in range(num_edges)
    ]
    capacities = [draw(st.integers(0, 4)) for _ in range(num_items)]
    return make_market(num_items, edges, valuations, capacities)


class TestMarketValidation:
    def test_capacity_shape_and_sign(self):
        instance = PricingInstance(Hypergraph(2, [{0}]), [1.0])
        with pytest.raises(PricingError, match="capacities"):
            LimitedSupplyInstance(instance, np.array([1]))
        with pytest.raises(PricingError, match="non-negative"):
            LimitedSupplyInstance(instance, np.array([1, -1]))

    def test_effectively_unlimited(self):
        market = make_market(2, [{0}, {0}, {1}], [1.0, 2.0, 3.0], 2)
        assert market.is_effectively_unlimited()
        tight = make_market(2, [{0}, {0}, {1}], [1.0, 2.0, 3.0], 1)
        assert not tight.is_effectively_unlimited()


class TestAllocation:
    def test_forced_winners_must_fit(self):
        # Two buyers want the single copy of item 0 at a price both can
        # strictly afford: any allocation leaves one envious.
        market = make_market(1, [{0}, {0}], [10.0, 8.0], 1)
        pricing = ItemPricing([5.0])
        report = allocate(pricing, market)
        assert not report.feasible
        assert report.revenue == 0.0
        assert report.overdemanded_items == (0,)
        assert not is_envy_free_feasible(pricing, market)

    def test_price_separates_buyers(self):
        # Price 9: only the v=10 buyer strictly affords; feasible, sells one.
        market = make_market(1, [{0}, {0}], [10.0, 8.0], 1)
        report = allocate(ItemPricing([9.0]), market)
        assert report.feasible
        assert report.num_served == 1
        assert report.revenue == pytest.approx(9.0)

    def test_indifferent_buyers_are_rationed(self):
        # Both buyers indifferent at price 10; one copy: serve exactly one.
        market = make_market(1, [{0}, {0}], [10.0, 10.0], 1)
        report = allocate(ItemPricing([10.0]), market)
        assert report.feasible
        assert report.num_served == 1
        assert report.revenue == pytest.approx(10.0)
        assert int(report.rationed.sum()) == 1

    def test_rationing_prefers_expensive_bundles(self):
        # Item 0 has one copy; bundle {0,1} at price 3 and {0} at price 2,
        # both indifferent. Greedy should serve the pricier bundle.
        market = make_market(2, [{0, 1}, {0}], [3.0, 2.0], [1, 1])
        report = allocate(ItemPricing([2.0, 1.0]), market)
        assert report.feasible
        assert report.revenue == pytest.approx(3.0)

    def test_unlimited_capacity_matches_unlimited_supply_revenue(self):
        market = make_market(
            3, [{0}, {0, 1}, {1, 2}, {2}], [4.0, 6.0, 5.0, 2.0], 10
        )
        pricing = ItemPricing([3.0, 2.0, 1.5])
        report = allocate(pricing, market)
        unlimited = compute_revenue(pricing, market.instance)
        assert report.feasible
        assert report.revenue == pytest.approx(unlimited.revenue)
        assert report.num_served == unlimited.num_sold

    def test_zero_capacity_blocks_strict_winners(self):
        market = make_market(1, [{0}], [5.0], 0)
        report = allocate(ItemPricing([1.0]), market)
        assert not report.feasible
        # Pricing the buyer out restores feasibility (nothing sells).
        report = allocate(ItemPricing([6.0]), market)
        assert report.feasible
        assert report.revenue == 0.0

    @settings(max_examples=40, deadline=None)
    @given(market=small_markets(), scale=st.floats(0.1, 5.0, allow_nan=False))
    def test_feasible_allocations_respect_capacities(self, market, scale):
        weights = scale * np.linspace(0.5, 2.0, market.num_items)
        report = allocate(ItemPricing(weights), market)
        if not report.feasible:
            return
        usage = np.zeros(market.num_items, dtype=int)
        for index in np.flatnonzero(report.served):
            for item in market.instance.edges[index]:
                usage[item] += 1
        assert np.all(usage <= market.capacities)
        # Forced winners are always served.
        assert np.all(report.served[report.forced_winners])


class TestWelfare:
    def test_fractional_at_least_integral(self):
        market = make_market(
            2, [{0}, {0}, {1}, {0, 1}], [5.0, 4.0, 3.0, 6.0], [1, 1]
        )
        fractional = fractional_max_welfare(market)
        integral = greedy_integral_welfare(market)
        assert fractional.welfare >= integral.welfare - 1e-6

    def test_integral_respects_capacities(self):
        market = make_market(1, [{0}, {0}, {0}], [3.0, 2.0, 1.0], 2)
        result = greedy_integral_welfare(market)
        assert result.welfare == pytest.approx(5.0)  # top two buyers
        assert result.num_allocated == 2

    def test_fractional_saturates_capacity(self):
        market = make_market(1, [{0}, {0}], [3.0, 2.0], 1)
        result = fractional_max_welfare(market)
        assert result.welfare == pytest.approx(3.0)

    @settings(max_examples=30, deadline=None)
    @given(market=small_markets())
    def test_welfare_sandwich(self, market):
        fractional = fractional_max_welfare(market)
        integral = greedy_integral_welfare(market)
        total = market.instance.total_valuation()
        assert integral.welfare <= fractional.welfare + 1e-6
        assert fractional.welfare <= total + 1e-6


class TestAlgorithms:
    def test_limited_cip_extracts_scarcity_rent(self):
        # One copy, two buyers at 10 and 8: the dual prices item 0 at 8
        # (the marginal displaced value); scaling finds ~10 if better.
        market = make_market(1, [{0}, {0}], [10.0, 8.0], 1)
        result = LimitedCIP().run(market)
        assert result.report.feasible
        assert result.revenue >= 8.0 - 1e-6

    def test_limited_uip_on_scarce_item(self):
        market = make_market(1, [{0}, {0}], [10.0, 8.0], 1)
        result = LimitedUniformPricing().run(market)
        assert result.report.feasible
        # Candidates are 10 and 8; 8 is infeasible (both strictly... at 8
        # the v=10 buyer strictly affords, v=8 is indifferent: feasible,
        # serves one at 8). 10 serves the indifferent top buyer at 10.
        assert result.revenue == pytest.approx(10.0)

    def test_parameter_validation(self):
        with pytest.raises(PricingError):
            LimitedCIP(epsilon=0.0)
        with pytest.raises(PricingError):
            LimitedCIP(scale_range=-1)

    @settings(max_examples=25, deadline=None)
    @given(market=small_markets())
    def test_algorithms_feasible_and_below_welfare(self, market):
        bound = fractional_max_welfare(market).welfare
        for algorithm in (LimitedCIP(scale_range=8), LimitedUniformPricing()):
            result = algorithm.run(market)
            assert result.report.feasible
            assert result.revenue <= bound + 1e-6 + 1e-6 * bound

    def test_unlimited_capacities_recover_unlimited_behavior(self):
        # With slack capacity, limited-UIP should match classic UIP revenue.
        from repro.core.algorithms import UIP

        instance = PricingInstance(
            Hypergraph(3, [{0}, {0, 1}, {1, 2}, {2}]), [4.0, 6.0, 5.0, 2.0]
        )
        market = LimitedSupplyInstance.uniform(instance, 10)
        limited = LimitedUniformPricing().run(market)
        classic = UIP().run(instance)
        assert limited.revenue == pytest.approx(classic.revenue)
