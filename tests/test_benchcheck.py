"""bench-check tests: the BENCH_*.json regression gate and its CLI."""

import json

import pytest

from repro.cli import main
from repro.exceptions import ExperimentError
from repro.experiments.benchcheck import (
    check_bench_dirs,
    compare_payloads,
    render_report,
)


def payload(speedups, throughput=None):
    data = {"figure_id": "x", "speedups": speedups}
    if throughput is not None:
        data["throughput"] = throughput
    return data


class TestComparePayloads:
    def test_within_tolerance_passes(self):
        comparisons = compare_payloads(
            payload({"vectorized": 10.0}),
            payload({"vectorized": 6.0}),
            file="BENCH_x.json",
            tolerance=0.5,
        )
        assert len(comparisons) == 1
        assert not comparisons[0].regressed
        assert comparisons[0].floor == pytest.approx(5.0)

    def test_injected_regression_fails(self):
        comparisons = compare_payloads(
            payload({"vectorized": 10.0}),
            payload({"vectorized": 4.0}),
            file="BENCH_x.json",
            tolerance=0.5,
        )
        assert comparisons[0].regressed

    def test_dropped_metric_counts_as_regression(self):
        comparisons = compare_payloads(
            payload({"vectorized": 10.0, "shards=4": 2.0}),
            payload({"vectorized": 10.0}),
            file="BENCH_x.json",
            tolerance=0.5,
        )
        dropped = {c.metric: c for c in comparisons}["speedups.shards=4"]
        assert dropped.current == 0.0 and dropped.regressed

    def test_improvement_never_fails(self):
        comparisons = compare_payloads(
            payload({"service": 3.0}),
            payload({"service": 30.0}),
            file="BENCH_x.json",
            tolerance=0.1,
        )
        assert not comparisons[0].regressed

    def test_throughput_compared_only_when_opted_in(self):
        baseline = payload({"s": 2.0}, throughput={"shards=4": 9000.0})
        current = payload({"s": 2.0}, throughput={"shards=4": 100.0})
        default = compare_payloads(
            baseline, current, file="f", tolerance=0.5
        )
        assert [c.metric for c in default] == ["speedups.s"]
        opted = compare_payloads(
            baseline, current, file="f", tolerance=0.5, throughput_tolerance=0.9
        )
        assert any(c.metric == "throughput.shards=4" and c.regressed for c in opted)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ExperimentError, match="tolerance"):
            compare_payloads(payload({}), payload({}), file="f", tolerance=1.5)


class TestCheckBenchDirs:
    def _write(self, directory, name, data):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(data))

    def test_green_run(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_a.json", payload({"v": 8.0}))
        self._write(tmp_path / "cur", "BENCH_a.json", payload({"v": 7.5}))
        comparisons, missing = check_bench_dirs(
            tmp_path / "base", tmp_path / "cur", tolerance=0.5
        )
        report, ok = render_report(comparisons, missing)
        assert ok and not missing
        assert "no regressions" in report

    def test_missing_current_file_fails(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_a.json", payload({"v": 8.0}))
        (tmp_path / "cur").mkdir()
        comparisons, missing = check_bench_dirs(
            tmp_path / "base", tmp_path / "cur"
        )
        report, ok = render_report(comparisons, missing)
        assert missing == ["BENCH_a.json"] and not ok
        assert "stopped emitting" in report

    def test_allow_missing_skips_named_file_only(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_a.json", payload({"v": 8.0}))
        self._write(tmp_path / "base", "BENCH_http.json", payload({"w": 0.4}))
        self._write(tmp_path / "cur", "BENCH_a.json", payload({"v": 7.5}))
        # BENCH_http.json is absent but exempted (a leg without sockets);
        # BENCH_a.json is still fully compared.
        comparisons, missing = check_bench_dirs(
            tmp_path / "base",
            tmp_path / "cur",
            allow_missing=["BENCH_http.json"],
        )
        report, ok = render_report(comparisons, missing)
        assert ok and not missing
        assert [c.file for c in comparisons] == ["BENCH_a.json"]
        # An *unlisted* absence still fails the gate.
        comparisons, missing = check_bench_dirs(
            tmp_path / "base", tmp_path / "cur"
        )
        assert missing == ["BENCH_http.json"]

    def test_allow_missing_still_compares_when_present(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_http.json", payload({"w": 0.8}))
        self._write(tmp_path / "cur", "BENCH_http.json", payload({"w": 0.1}))
        comparisons, missing = check_bench_dirs(
            tmp_path / "base",
            tmp_path / "cur",
            allow_missing=["BENCH_http.json"],
        )
        # The exemption covers absence, never a regression in a file that
        # did get produced.
        _, ok = render_report(comparisons, missing)
        assert not ok

    def test_allow_missing_typo_is_an_error(self, tmp_path):
        self._write(tmp_path / "base", "BENCH_a.json", payload({"v": 8.0}))
        (tmp_path / "cur").mkdir()
        with pytest.raises(ExperimentError, match="no baseline"):
            check_bench_dirs(
                tmp_path / "base",
                tmp_path / "cur",
                allow_missing=["BENCH_htpp.json"],
            )

    def test_allow_missing_cli_flag(self, tmp_path, capsys):
        self._write(tmp_path / "base", "BENCH_a.json", payload({"v": 8.0}))
        self._write(tmp_path / "base", "BENCH_http.json", payload({"w": 0.4}))
        self._write(tmp_path / "cur", "BENCH_a.json", payload({"v": 7.5}))
        code = main(
            [
                "bench-check",
                "--baselines", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
                "--allow-missing", "BENCH_http.json",
            ]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

    def test_no_baselines_is_an_error(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        with pytest.raises(ExperimentError, match="baselines"):
            check_bench_dirs(tmp_path / "base", tmp_path / "cur")

    def test_cli_exit_codes(self, tmp_path, capsys):
        self._write(tmp_path / "base", "BENCH_a.json", payload({"v": 8.0}))
        self._write(tmp_path / "cur", "BENCH_a.json", payload({"v": 7.0}))
        code = main(
            [
                "bench-check",
                "--baselines", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
            ]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

        # Inject a regression: the same gate must now fail.
        self._write(tmp_path / "cur", "BENCH_a.json", payload({"v": 1.0}))
        code = main(
            [
                "bench-check",
                "--baselines", str(tmp_path / "base"),
                "--current", str(tmp_path / "cur"),
            ]
        )
        assert code == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_committed_baselines_exist_for_tier1_benchmarks(self):
        """The repo ships baselines for every tier-1 BENCH json."""
        from pathlib import Path

        baseline_dir = Path(__file__).resolve().parents[1] / "benchmarks" / "baselines"
        names = {path.name for path in baseline_dir.glob("BENCH_*.json")}
        assert {
            "BENCH_backends.json",
            "BENCH_backends_join.json",
            "BENCH_http.json",
            "BENCH_pricing.json",
            "BENCH_service.json",
            "BENCH_service_batching.json",
        } <= names
        for path in baseline_dir.glob("BENCH_*.json"):
            data = json.loads(path.read_text())
            assert data.get("speedups"), f"{path.name} has no speedups block"
