"""Tests for the Section 7.2 support-set designer."""

import numpy as np
import pytest

from repro.core.algorithms import Layering, LPIP
from repro.db.query import sql_query
from repro.qirana.conflict import ConflictSetEngine
from repro.support.designer import designed_support
from repro.core.hypergraph import PricingInstance

QUERIES = [
    "select count(Name) from Country where Continent = 'Asia'",
    "select LifeExpectancy from Country where Continent='Europe'",
    "select max(Population) from City",
    "select Percentage from CountryLanguage where CountryCode='GRC'",
]


@pytest.fixture
def planned(mini_db):
    return [sql_query(sql, mini_db) for sql in QUERIES]


class TestDesign:
    def test_separation_property(self, mini_db, planned):
        """Each dedicated item flips its query and no other (Section 7.2)."""
        report = designed_support(mini_db, planned, rng=0)
        engine = ConflictSetEngine(report.support)
        edges = [engine.conflict_set(query) for query in planned]
        for query_index, item in report.dedicated_items.items():
            assert item in edges[query_index]
            for other_index, edge in enumerate(edges):
                if other_index != query_index:
                    assert item not in edge

    def test_every_separable_query_gets_an_item(self, mini_db, planned):
        report = designed_support(mini_db, planned, rng=1)
        assert report.num_dedicated + len(report.unseparated_queries) == len(planned)
        # These four queries touch distinct columns: all separable.
        assert report.num_dedicated == len(planned)

    def test_unseparable_duplicate_queries(self, mini_db):
        """Two identical queries can never be separated."""
        duplicated = [
            sql_query(QUERIES[0], mini_db),
            sql_query(QUERIES[0], mini_db),
        ]
        report = designed_support(mini_db, duplicated, rng=2)
        assert report.num_dedicated <= 1
        assert len(report.unseparated_queries) >= 1

    def test_padding_appends_random_neighbors(self, mini_db, planned):
        report = designed_support(mini_db, planned, rng=3, padding=10)
        assert len(report.support) == report.num_dedicated + 10

    def test_deterministic_given_seed(self, mini_db, planned):
        a = designed_support(mini_db, planned, rng=7)
        b = designed_support(mini_db, planned, rng=7)
        assert a.dedicated_items == b.dedicated_items

    def test_full_revenue_extraction_on_designed_support(self, mini_db, planned):
        """The motivating claim: unique items => full revenue for item pricing."""
        report = designed_support(mini_db, planned, rng=4)
        engine = ConflictSetEngine(report.support)
        hypergraph = engine.build_hypergraph(planned)
        valuations = np.array([10.0, 20.0, 30.0, 40.0])
        instance = PricingInstance(hypergraph, valuations)
        for algorithm in (LPIP(), Layering()):
            result = algorithm.run(instance)
            assert result.revenue == pytest.approx(
                instance.total_valuation(), rel=1e-6
            ), algorithm.name

    def test_designer_beats_random_support_for_layering(self, mini_db, planned):
        rng = np.random.default_rng(5)
        designed = designed_support(mini_db, planned, rng=5)
        engine = ConflictSetEngine(designed.support)
        hypergraph = engine.build_hypergraph(planned)
        valuations = rng.uniform(1, 100, size=len(planned))
        designed_revenue = Layering().run(
            PricingInstance(hypergraph, valuations)
        ).revenue
        assert designed_revenue == pytest.approx(valuations.sum(), rel=1e-6)
