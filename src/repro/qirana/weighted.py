"""Qirana's calibrated weighted item pricing (the pre-revenue-max baseline).

Before this paper, Qirana priced queries by assigning a *weight* to every
support instance and charging ``p(Q) = sum of weights of CS(Q, D)``, with the
weights calibrated so that the entire dataset — a query revealing everything,
whose conflict set is all of ``S`` — costs exactly the seller's asking price
``P_full``. That is an additive (item) pricing with uniform weights
``P_full / |S|`` in the simplest scheme, or importance-weighted variants.

This module provides those baselines; the revenue-maximization algorithms of
the paper can then be read as *replacing* the calibrated weights with
optimized ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph import Hypergraph
from repro.core.pricing import ItemPricing
from repro.exceptions import PricingError
from repro.support.generator import SupportSet


def uniform_calibrated_pricing(
    support: SupportSet | int, full_price: float
) -> ItemPricing:
    """Uniform weights summing to ``full_price`` over the support.

    The whole dataset (conflict set = all of S) costs exactly
    ``full_price``; a query conflicting with a fraction ``f`` of the support
    costs ``f * full_price`` — Qirana's default proportional scheme.
    """
    size = support if isinstance(support, int) else len(support)
    if size <= 0:
        raise PricingError("support must be non-empty to calibrate prices")
    if full_price < 0:
        raise PricingError("full dataset price must be non-negative")
    return ItemPricing(np.full(size, full_price / size))


def degree_weighted_pricing(
    hypergraph: Hypergraph, full_price: float, smoothing: float = 1.0
) -> ItemPricing:
    """Demand-aware calibration: weight items by their workload degree.

    Items contained in many buyers' bundles carry more of the dataset price
    (they distinguish more queries). Weights are proportional to
    ``degree + smoothing`` and normalized so the full bundle costs
    ``full_price``.
    """
    if hypergraph.num_items <= 0:
        raise PricingError("hypergraph has no items to price")
    if full_price < 0:
        raise PricingError("full dataset price must be non-negative")
    if smoothing < 0:
        raise PricingError("smoothing must be non-negative")
    raw = hypergraph.degrees.astype(np.float64) + smoothing
    total = raw.sum()
    if total <= 0:
        raise PricingError("all items have zero weight; increase smoothing")
    return ItemPricing(raw * (full_price / total))
