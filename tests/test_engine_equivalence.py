"""Differential tests: the query engine vs a brute-force reference evaluator.

Random single-table selections/projections/aggregations over random data are
executed both by the planner+executor and by a direct Python reference
implementation; answers must agree. This is the strongest guard against
planner rewrites (pushdown, hash joins, aggregate normalization) changing
semantics.
"""

import numpy as np
import pytest

from repro.db.database import Database
from repro.db.query import sql_query
from repro.db.relation import Relation
from repro.db.result import QueryResult
from repro.db.schema import Column, ColumnType, TableSchema

COLORS = ["red", "green", "blue", "teal"]


def make_database(seed: int, num_rows: int = 60) -> Database:
    rng = np.random.default_rng(seed)
    table = Relation(
        TableSchema(
            "T",
            (
                Column("id", ColumnType.INT),
                Column("grp", ColumnType.TEXT),
                Column("val", ColumnType.INT),
                Column("score", ColumnType.FLOAT),
            ),
            primary_key=("id",),
        )
    )
    for i in range(num_rows):
        table.insert(
            (
                i,
                COLORS[int(rng.integers(len(COLORS)))],
                int(rng.integers(0, 50)),
                float(np.round(rng.uniform(0, 10), 2)),
            )
        )
    other = Relation(
        TableSchema(
            "U",
            (Column("grp", ColumnType.TEXT), Column("weight", ColumnType.INT)),
        )
    )
    for position, color in enumerate(COLORS[:3]):
        other.insert((color, position + 1))
    return Database("diff", [table, other])


@pytest.fixture(params=[0, 1, 2])
def db(request):
    return make_database(request.param)


def rows_of(db):
    return db.table("T").rows


class TestSelectionEquivalence:
    @pytest.mark.parametrize("low,high", [(0, 10), (10, 30), (45, 49), (50, 99)])
    def test_between(self, db, low, high):
        got = sql_query(
            f"select id from T where val between {low} and {high}", db
        ).run(db)
        expected = [(r[0],) for r in rows_of(db) if low <= r[2] <= high]
        assert got == QueryResult(["id"], expected)

    @pytest.mark.parametrize("color", COLORS)
    def test_equality(self, db, color):
        got = sql_query(f"select id, val from T where grp = '{color}'", db).run(db)
        expected = [(r[0], r[2]) for r in rows_of(db) if r[1] == color]
        assert got == QueryResult(["id", "val"], expected)

    def test_disjunction(self, db):
        got = sql_query(
            "select id from T where grp = 'red' or val > 40", db
        ).run(db)
        expected = [(r[0],) for r in rows_of(db) if r[1] == "red" or r[2] > 40]
        assert got == QueryResult(["id"], expected)

    def test_negation(self, db):
        got = sql_query("select id from T where not grp = 'red'", db).run(db)
        expected = [(r[0],) for r in rows_of(db) if not r[1] == "red"]
        assert got == QueryResult(["id"], expected)

    def test_arithmetic_predicate(self, db):
        got = sql_query("select id from T where val * 2 + 1 > 60", db).run(db)
        expected = [(r[0],) for r in rows_of(db) if r[2] * 2 + 1 > 60]
        assert got == QueryResult(["id"], expected)


class TestAggregateEquivalence:
    def test_scalar_aggregates(self, db):
        got = sql_query(
            "select count(*), sum(val), min(score), max(score), avg(val) from T",
            db,
        ).run(db)
        rows = rows_of(db)
        vals = [r[2] for r in rows]
        scores = [r[3] for r in rows]
        expected = (
            len(rows), sum(vals), min(scores), max(scores), sum(vals) / len(vals),
        )
        assert got.rows[0] == pytest.approx(expected)

    def test_group_by_equivalence(self, db):
        got = sql_query(
            "select grp, count(*), sum(val) from T group by grp", db
        ).run(db)
        expected: dict[str, list[int]] = {}
        for r in rows_of(db):
            expected.setdefault(r[1], []).append(r[2])
        expected_rows = [
            (grp, len(vals), sum(vals)) for grp, vals in expected.items()
        ]
        assert got == QueryResult(["grp", "n", "s"], expected_rows)

    def test_filtered_group_by(self, db):
        got = sql_query(
            "select grp, max(val) from T where score > 5 group by grp", db
        ).run(db)
        expected: dict[str, list[int]] = {}
        for r in rows_of(db):
            if r[3] > 5:
                expected.setdefault(r[1], []).append(r[2])
        expected_rows = [(g, max(v)) for g, v in expected.items()]
        assert got == QueryResult(["grp", "m"], expected_rows)

    def test_count_distinct(self, db):
        got = sql_query("select count(distinct grp) from T", db).run(db)
        assert got.scalar() == len({r[1] for r in rows_of(db)})


class TestJoinEquivalence:
    def test_equi_join(self, db):
        got = sql_query(
            "select T.id, U.weight from T, U where T.grp = U.grp", db
        ).run(db)
        weights = dict(db.table("U").rows)
        expected = [
            (r[0], weights[r[1]]) for r in rows_of(db) if r[1] in weights
        ]
        assert got == QueryResult(["id", "weight"], expected)

    def test_join_with_filters_both_sides(self, db):
        got = sql_query(
            "select T.id from T, U where T.grp = U.grp "
            "and T.val > 25 and U.weight >= 2",
            db,
        ).run(db)
        weights = dict(db.table("U").rows)
        expected = [
            (r[0],)
            for r in rows_of(db)
            if r[2] > 25 and weights.get(r[1], 0) >= 2
        ]
        assert got == QueryResult(["id"], expected)

    def test_join_aggregate(self, db):
        got = sql_query(
            "select U.weight, count(T.id) from T, U where T.grp = U.grp "
            "group by U.weight",
            db,
        ).run(db)
        weights = dict(db.table("U").rows)
        counts: dict[int, int] = {}
        for r in rows_of(db):
            if r[1] in weights:
                counts[weights[r[1]]] = counts.get(weights[r[1]], 0) + 1
        assert got == QueryResult(["w", "n"], list(counts.items()))


class TestDistinctAndLimitEquivalence:
    def test_distinct(self, db):
        got = sql_query("select distinct grp from T", db).run(db)
        assert got == QueryResult(["grp"], [(g,) for g in {r[1] for r in rows_of(db)}])

    def test_order_limit(self, db):
        got = sql_query("select id from T order by val desc limit 5", db).run(db)
        ordered = sorted(rows_of(db), key=lambda r: -r[2])
        # ties make the exact id set ambiguous; compare val multiset instead
        got_vals = sorted(
            next(r[2] for r in rows_of(db) if r[0] == row[0]) for row in got.rows
        )
        expected_vals = sorted(r[2] for r in ordered[:5])
        assert got_vals == expected_vals
