"""Pricing algorithms for the limited-supply, envy-free setting.

Two algorithms, both returning a :class:`LimitedPricingResult`:

- :class:`LimitedCIP` — Cheung–Swamy in its native habitat: solve the
  capacitated welfare LP once with the *true* capacities, read item prices
  off the capacity duals, then sweep a geometric scaling of the price
  vector and keep the best feasible revenue. Scaling up prices thins demand
  (restoring feasibility when LP degeneracy overcommits); scaling down
  trades margin for volume.
- :class:`LimitedUniformPricing` — the UIP idea under capacities: try the
  candidate uniform prices ``v_e / |e|`` and keep the best feasible one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.algorithms.cip import solve_capacity_duals
from repro.core.pricing import ItemPricing
from repro.exceptions import PricingError
from repro.limited.market import (
    AllocationReport,
    LimitedSupplyInstance,
    allocate,
    priced_out_pricing,
)


@dataclass
class LimitedPricingResult:
    """A pricing, its allocation, and bookkeeping."""

    algorithm: str
    pricing: ItemPricing
    report: AllocationReport
    runtime_seconds: float
    metadata: dict

    @property
    def revenue(self) -> float:
        return self.report.revenue


class LimitedCIP:
    """Cheung–Swamy capacity duals, generalized to per-item capacities.

    Classic CIP sweeps a synthetic capacity ``k`` because in unlimited
    supply nothing else makes the welfare LP bind. Here the true capacities
    may bind — but when they are slack (capacity >= degree) the duals
    vanish and the LP says nothing about prices. The sweep therefore solves
    the welfare LP with caps ``min(k, c_j)`` for ``k = 1, (1+eps), ...``:
    tight ``k`` recovers classic CIP behaviour, large ``k`` recovers the
    true-capacity duals. Each dual vector is additionally scaled across a
    small geometric range (LP degeneracy can leave duals a notch too low to
    be feasible, or a notch too high to be profitable).
    """

    name = "limited-cip"

    def __init__(self, epsilon: float = 0.25, scale_range: int = 6):
        if epsilon <= 0:
            raise PricingError("epsilon must be positive")
        if scale_range < 0:
            raise PricingError("scale_range must be non-negative")
        self.epsilon = epsilon
        self.scale_range = scale_range

    def run(self, market: LimitedSupplyInstance) -> LimitedPricingResult:
        start = time.perf_counter()
        best_pricing, best_report = _feasible_baseline(market)
        best_scale: float | None = None
        best_sweep_capacity: float | None = None
        programs = 0

        max_degree = market.instance.hypergraph.max_degree
        for sweep_capacity in _capacity_schedule(max_degree, self.epsilon):
            duals = self._capacity_duals(market, sweep_capacity)
            if duals is None or not np.any(duals > 0):
                continue
            programs += 1
            for power in range(-self.scale_range, self.scale_range + 1):
                scale = (1.0 + self.epsilon) ** power
                pricing = ItemPricing(duals * scale)
                report = allocate(pricing, market)
                if report.feasible and report.revenue > best_report.revenue:
                    best_pricing = pricing
                    best_report = report
                    best_scale = scale
                    best_sweep_capacity = sweep_capacity

        elapsed = time.perf_counter() - start
        return LimitedPricingResult(
            algorithm=self.name,
            pricing=best_pricing,
            report=best_report,
            runtime_seconds=elapsed,
            metadata={
                "num_programs": programs,
                "best_scale": best_scale,
                "best_sweep_capacity": best_sweep_capacity,
                "epsilon": self.epsilon,
            },
        )

    def _capacity_duals(
        self, market: LimitedSupplyInstance, sweep_capacity: float
    ) -> np.ndarray | None:
        # The welfare LP with caps min(k, c_j), assembled in bulk from the
        # item -> edge CSR block (shared with classic CIP).
        return solve_capacity_duals(
            market.instance,
            np.minimum(sweep_capacity, market.capacities.astype(np.float64)),
            name=f"limited-cip-k{sweep_capacity:g}",
        )


def _capacity_schedule(max_degree: int, epsilon: float) -> list[float]:
    """Geometric sweep ``1, (1+eps), ..., >= B`` (classic CIP's schedule)."""
    if max_degree <= 0:
        return [1.0]
    schedule: list[float] = []
    value = 1.0
    while value < max_degree:
        schedule.append(value)
        value *= 1.0 + epsilon
    schedule.append(float(max_degree))
    return schedule


def _feasible_baseline(
    market: LimitedSupplyInstance,
) -> tuple[ItemPricing, AllocationReport]:
    """Zero pricing when feasible (sell everything free), else price out."""
    zero = ItemPricing(np.zeros(market.num_items))
    report = allocate(zero, market)
    if report.feasible:
        return zero, report
    fallback = priced_out_pricing(market)
    return fallback, allocate(fallback, market)


class LimitedUniformPricing:
    """Best feasible uniform item price under capacities."""

    name = "limited-uip"

    def run(self, market: LimitedSupplyInstance) -> LimitedPricingResult:
        start = time.perf_counter()
        instance = market.instance
        candidates = sorted(
            {
                float(instance.valuations[index]) / len(instance.edges[index])
                for index in range(instance.num_edges)
                if instance.edges[index] and instance.valuations[index] > 0
            },
            reverse=True,
        )
        best_pricing, best_report = _feasible_baseline(market)
        best_weight: float | None = None
        infeasible = 0
        for weight in candidates:
            pricing = ItemPricing.uniform(market.num_items, weight)
            report = allocate(pricing, market)
            if not report.feasible:
                infeasible += 1
                continue
            if report.revenue > best_report.revenue:
                best_pricing = pricing
                best_report = report
                best_weight = weight
        elapsed = time.perf_counter() - start
        return LimitedPricingResult(
            algorithm=self.name,
            pricing=best_pricing,
            report=best_report,
            runtime_seconds=elapsed,
            metadata={
                "best_weight": best_weight,
                "num_candidates": len(candidates),
                "num_infeasible": infeasible,
            },
        )
