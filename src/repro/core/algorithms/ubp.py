"""Uniform bundle pricing (UBP) and its LP refinement.

UBP is the folklore ``O(log m)``-approximation (Lemma 1): the optimal uniform
price is one of the valuations, so sort the valuations descending and sweep
(the sweep itself is a single vectorized pass). ``UBPRefine`` implements the
post-processing observation from Section 6.3: take the buyers sold by the
best uniform price and solve an LP for the revenue-maximizing *item* pricing
that still sells all of them — the LP is assembled in bulk from the
hypergraph's CSR edge-member block (:meth:`LPModel.from_arrays`), one
constraint row per sold edge, no per-row expression objects.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction, UniformBundlePricing
from repro.exceptions import LPError
from repro.lp import LPModel, Sense


def best_uniform_bundle_price(valuations: np.ndarray) -> tuple[float, float]:
    """Return ``(price, revenue)`` of the optimal uniform bundle price.

    With valuations sorted descending, setting the price to the ``i``-th
    largest valuation sells exactly the top ``i`` buyers (ties included,
    which only helps), for revenue ``(i + 1) * v_(i)``.
    """
    if len(valuations) == 0:
        return 0.0, 0.0
    ordered = np.sort(valuations)[::-1]
    counts = np.arange(1, len(ordered) + 1)
    revenues = ordered * counts
    best = int(np.argmax(revenues))
    return float(ordered[best]), float(revenues[best])


def solve_frontier_item_lp(
    instance: PricingInstance, frontier: np.ndarray, name: str
) -> tuple[np.ndarray, float] | None:
    """Revenue-maximizing item weights forced to sell every frontier edge.

    Solves ``max sum_{e in frontier} sum_{j in e} w_j`` subject to
    ``sum_{j in e} w_j <= v_e`` for each frontier edge, ``w >= 0`` — the LP
    shared by LPIP's thresholds and UBP's refinement. The constraint matrix
    is exactly the frontier's rows of the hypergraph's CSR edge-member
    block; the objective coefficient of an item is its frontier degree.
    Returns ``(weights, lp_objective)`` with a full-length weight vector,
    or ``None`` on solver trouble.
    """
    sub_indptr, sub_items = instance.hypergraph.edge_submatrix(frontier)
    used_items, columns = np.unique(sub_items, return_inverse=True)
    objective = np.bincount(columns, minlength=len(used_items)).astype(np.float64)
    model = LPModel.from_arrays(
        num_variables=len(used_items),
        objective=objective,
        indptr=sub_indptr,
        indices=columns,
        rhs=instance.valuations[frontier],
        name=name,
        sense=Sense.MAXIMIZE,
        variable_prefix="w",
    )
    try:
        solution = model.solve()
    except LPError:
        return None
    weights = np.zeros(instance.num_items)
    weights[used_items] = np.maximum(0.0, np.array(solution.values(model.variables)))
    return weights, float(solution.objective)


class UBP(PricingAlgorithm):
    """Optimal uniform bundle price via the sort-and-sweep algorithm."""

    name = "ubp"

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        price, sweep_revenue = best_uniform_bundle_price(instance.valuations)
        return UniformBundlePricing(price), {"sweep_revenue": sweep_revenue}


class UBPRefine(PricingAlgorithm):
    """UBP followed by the LP item-pricing refinement (Section 6.3).

    Let ``E*`` be the buyers sold by the optimal uniform bundle price. Solve::

        maximize   sum_{e in E*} sum_{j in e} w_j
        subject to sum_{j in e} w_j <= v_e   for every e in E*,  w >= 0

    Every constraint is satisfiable (w = 0), the refined pricing still sells
    all of ``E*``, and it may additionally extract more from each of them and
    sell further cheap edges. The paper reports this step lifting TPC-H
    revenue from 0.78 to 0.99 normalized.
    """

    name = "ubp+lp"

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        price, _ = best_uniform_bundle_price(instance.valuations)
        sold = np.flatnonzero(
            (instance.valuations >= price)
            & (instance.hypergraph.edge_sizes() > 0)
        )
        if len(sold) == 0:
            return UniformBundlePricing(price), {"refined": False}

        solved = solve_frontier_item_lp(instance, sold, name="ubp-refine")
        if solved is None:
            # Solver trouble costs us the refinement, not the pricing: fall
            # back to the uniform bundle price the LP was refining.
            return UniformBundlePricing(price), {"refined": False}
        weights, lp_objective = solved
        return ItemPricing(weights), {
            "refined": True,
            "uniform_price": price,
            "lp_objective": lp_objective,
        }
