"""Workload-level conflict-set integration: incremental == full everywhere.

Small-scale versions of the real workloads, sampling a slice of each query
set and checking the whole hypergraph agrees between the incremental engine
and brute-force re-execution (the strongest end-to-end exactness check).
"""

import random

import pytest

from repro.qirana.conflict import ConflictSetEngine
from repro.workloads import get_workload


@pytest.mark.parametrize("name,count", [("skewed", 60), ("tpch", 60), ("ssb", 60)])
def test_hypergraph_incremental_matches_full(name, count):
    workload = get_workload(name, scale=0.1)
    support = workload.support(size=80, seed=9, mode="row")
    random.seed(3)
    queries = random.sample(workload.queries, min(count, workload.num_queries))

    fast = ConflictSetEngine(support, use_incremental=True)
    slow = ConflictSetEngine(support, use_incremental=False)
    for query in queries:
        assert fast.conflict_set(query) == slow.conflict_set(query), query.text


@pytest.mark.parametrize("name", ["skewed", "tpch", "ssb", "uniform"])
def test_hypergraph_deterministic(name):
    workload = get_workload(name, scale=0.1)
    support = workload.support(size=50, seed=4)
    engine = ConflictSetEngine(support)
    queries = workload.queries[:25]
    first = [engine.conflict_set(q) for q in queries]
    second = [engine.conflict_set(q) for q in queries]
    assert first == second


def test_cell_mode_also_consistent():
    workload = get_workload("skewed", scale=0.1)
    support = workload.support(size=60, seed=5, mode="cell", cells_per_instance=3)
    fast = ConflictSetEngine(support, use_incremental=True)
    slow = ConflictSetEngine(support, use_incremental=False)
    random.seed(6)
    for query in random.sample(workload.queries, 40):
        assert fast.conflict_set(query) == slow.conflict_set(query), query.text
