"""Tests for EXPLAIN output and planner rewrites it makes visible."""


from repro.db.explain import explain, format_expr
from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.db.query import sql_query


class TestFormatExpr:
    def test_comparison(self):
        expr = Comparison("<=", ColumnRef("a", "t"), Literal(5))
        assert format_expr(expr) == "t.a <= 5"

    def test_string_literal_quoted(self):
        assert format_expr(Literal("x")) == "'x'"

    def test_between(self):
        expr = Between(ColumnRef("a"), Literal(1), Literal(2))
        assert format_expr(expr) == "a BETWEEN 1 AND 2"

    def test_like(self):
        assert format_expr(Like(ColumnRef("n"), "A%")) == "n LIKE 'A%'"
        assert "NOT LIKE" in format_expr(Like(ColumnRef("n"), "A%", negated=True))

    def test_in_list(self):
        assert format_expr(InList(ColumnRef("a"), (1, 2))) == "a IN (1, 2)"

    def test_is_null(self):
        assert format_expr(IsNull(ColumnRef("a"))) == "a IS NULL"
        assert format_expr(IsNull(ColumnRef("a"), negated=True)) == "a IS NOT NULL"

    def test_boolean_combinators(self):
        a = Comparison("=", ColumnRef("x"), Literal(1))
        b = Comparison("=", ColumnRef("y"), Literal(2))
        assert format_expr(And(a, b)) == "(x = 1 AND y = 2)"
        assert format_expr(Or(a, b)) == "(x = 1 OR y = 2)"
        assert format_expr(Not(a)) == "NOT x = 1"

    def test_arithmetic(self):
        expr = Arithmetic("*", ColumnRef("a"), Literal(2))
        assert format_expr(expr) == "(a * 2)"


class TestExplainShowsRewrites:
    def test_predicate_pushdown_visible(self, mini_db):
        query = sql_query(
            "select C.Name from Country C, CountryLanguage L "
            "where C.Code = L.CountryCode and L.Language = 'Greek'",
            mini_db,
        )
        text = explain(query.plan)
        lines = text.splitlines()
        # The language filter sits directly above the CountryLanguage scan,
        # below the join.
        join_line = next(i for i, l in enumerate(lines) if "HashJoin" in l)
        filter_line = next(i for i, l in enumerate(lines) if "Greek" in l)
        assert filter_line > join_line
        assert "Scan CountryLanguage" in lines[filter_line + 1]

    def test_hash_join_keys_rendered(self, mini_db):
        query = sql_query(
            "select Name, Language from Country , CountryLanguage "
            "where Code = CountryCode",
            mini_db,
        )
        assert "HashJoin [country.Code = countrylanguage.CountryCode]" in explain(
            query.plan
        )

    def test_aggregate_rendered(self, mini_db):
        query = sql_query(
            "select Continent, count(distinct Region) from Country "
            "group by Continent",
            mini_db,
        )
        text = explain(query.plan)
        assert "Aggregate group by [Continent]" in text
        assert "count(DISTINCT Region)" in text

    def test_sort_and_limit_rendered(self, mini_db):
        query = sql_query(
            "select Name from Country order by Population desc limit 2", mini_db
        )
        text = explain(query.plan)
        assert "Limit 2" in text
        assert "Sort [Population DESC]" in text

    def test_distinct_rendered(self, mini_db):
        query = sql_query("select distinct Continent from Country", mini_db)
        assert explain(query.plan).startswith("Distinct")

    def test_cross_join_only_without_equi_predicate(self, mini_db):
        query = sql_query(
            "select C.Name from Country C, City T where T.Population > 1000000",
            mini_db,
        )
        assert "CrossJoin" in explain(query.plan)

    def test_count_star_rendered(self, mini_db):
        query = sql_query("select count(*) from City", mini_db)
        assert "count(*)" in explain(query.plan)
