"""Synthetic hypergraph constructions.

The three lower-bound families from Section 4 / Appendix A — each exhibits an
``Omega(log m)`` revenue gap for one or both succinct pricing families while a
subadditive pricing extracts full value:

- :func:`harmonic_instance` (Lemma 2) — additive valuations where *uniform
  bundle* pricing loses a log factor,
- :func:`partition_instance` (Lemma 3) — uniform valuations where *item*
  pricing loses a log factor,
- :func:`laminar_instance` (Lemma 4) — submodular valuations where both lose
  a log factor,

plus random hypergraph generators used by tests and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.exceptions import WorkloadError


def harmonic_instance(m: int) -> PricingInstance:
    """Lemma 2: buyer ``i`` wants item ``i`` alone at value ``1/(i+1)``.

    Optimal revenue is the harmonic sum ``H_m = Theta(log m)`` (item pricing
    at ``w_i = 1/(i+1)`` extracts it all); any uniform bundle price earns
    ``O(1)``.
    """
    if m < 1:
        raise WorkloadError("m must be >= 1")
    edges = [frozenset({i}) for i in range(m)]
    valuations = np.array([1.0 / (i + 1) for i in range(m)])
    return PricingInstance(Hypergraph(m, edges), valuations, name=f"harmonic(m={m})")


def partition_instance(n: int) -> PricingInstance:
    """Lemma 3: customer class ``C_i`` holds ``floor(n/i)`` buyers, each
    wanting a fresh block of ``i`` items; every valuation is 1.

    Uniform bundle price 1 sells everything (revenue ``Theta(n log n)``);
    any item pricing earns ``O(n)``.
    """
    if n < 1:
        raise WorkloadError("n must be >= 1")
    edges: list[frozenset[int]] = []
    for class_size in range(1, n + 1):
        num_customers = n // class_size
        if num_customers == 0:
            break
        # Every class partitions the SAME universe [0, n) — the sharing of
        # items across classes is exactly what defeats additive pricing.
        next_item = 0
        for _ in range(num_customers):
            edges.append(
                frozenset(range(next_item, next_item + class_size))
            )
            next_item += class_size
    return _compact(edges, name=f"partition(n={n})")


def _compact(edges: list[frozenset[int]], name: str) -> PricingInstance:
    """Renumber items consecutively and attach unit valuations."""
    mapping: dict[int, int] = {}
    remapped: list[frozenset[int]] = []
    for edge in edges:
        remapped.append(
            frozenset(mapping.setdefault(item, len(mapping)) for item in edge)
        )
    hypergraph = Hypergraph(len(mapping), remapped)
    return PricingInstance(hypergraph, np.ones(len(remapped)), name=name)


def laminar_instance(t: int, copy_cap: int | None = None) -> PricingInstance:
    """Lemma 4: the laminar (binary-tree) family over ``n = 2^t`` items.

    Depth-``l`` sets have value ``(3/4)^l`` and ``c_l = (2/3)^l * 3^t``
    copies. Copy counts grow as ``3^t``; ``copy_cap`` truncates the number of
    copies per set (keeping at least one) so moderate depths stay tractable
    while preserving the gap structure.

    Optimal subadditive revenue is ``(t+1) * 3^t`` (uncapped); both uniform
    bundle pricing and item pricing are stuck at ``O(3^t)``.
    """
    if t < 0:
        raise WorkloadError("t must be >= 0")
    n = 2**t
    edges: list[frozenset[int]] = []
    valuations: list[float] = []
    for depth in range(t + 1):
        num_sets = 2**depth
        set_size = n // num_sets
        value = (3.0 / 4.0) ** depth
        copies = int(round((2.0 / 3.0) ** depth * 3**t))
        copies = max(1, copies)
        if copy_cap is not None:
            copies = min(copies, copy_cap)
        for block in range(num_sets):
            items = frozenset(range(block * set_size, (block + 1) * set_size))
            for _ in range(copies):
                edges.append(items)
                valuations.append(value)
    hypergraph = Hypergraph(n, edges)
    return PricingInstance(
        hypergraph, np.array(valuations), name=f"laminar(t={t})"
    )


def laminar_optimal_revenue(t: int, copy_cap: int | None = None) -> float:
    """Full value of the laminar instance (selling every copy at its value)."""
    total = 0.0
    for depth in range(t + 1):
        copies = max(1, int(round((2.0 / 3.0) ** depth * 3**t)))
        if copy_cap is not None:
            copies = min(copies, copy_cap)
        total += 2**depth * copies * (3.0 / 4.0) ** depth
    return total


def random_instance(
    num_items: int,
    num_edges: int,
    min_edge_size: int = 1,
    max_edge_size: int = 8,
    valuation_high: float = 100.0,
    rng: np.random.Generator | int | None = None,
) -> PricingInstance:
    """A random hypergraph with uniform random valuations (test fodder)."""
    if max_edge_size < min_edge_size or min_edge_size < 0:
        raise WorkloadError("invalid edge size bounds")
    if max_edge_size > num_items:
        raise WorkloadError("max_edge_size exceeds the item count")
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    edges = []
    for _ in range(num_edges):
        size = int(rng.integers(min_edge_size, max_edge_size + 1))
        edges.append(frozenset(int(x) for x in rng.choice(num_items, size=size, replace=False)))
    hypergraph = Hypergraph(num_items, edges)
    valuations = rng.uniform(1.0, valuation_high, size=num_edges)
    return PricingInstance(hypergraph, valuations, name="random")
