"""Figure 6b: size-scaled valuations on SSB and TPC-H."""

import pytest

from repro.experiments.figures import figure5b_exponential, figure5b_normal

from benchmarks.conftest import save_artifact

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



@pytest.mark.parametrize("workload_name", ["ssb", "tpch"])
def test_fig6b_exponential(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure5b_exponential, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]
    # Better of the LP pricings vs the uniform sweep (see fig5b module).
    for lpip_val, cip_val, uip_val in zip(
        series["lpip"], series["cip"], series["uip"]
    ):
        assert max(lpip_val, cip_val) >= uip_val - 0.05


@pytest.mark.parametrize("workload_name", ["ssb", "tpch"])
def test_fig6b_normal(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure5b_normal, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]
    # At k=2 (first parameter) revenue is concentrated in big edges: most
    # algorithms do well, and LPIP leads or ties.
    top = max(
        values[0] for name, values in series.items() if name != "subadditive bound"
    )
    assert series["lpip"][0] >= top - 0.1
