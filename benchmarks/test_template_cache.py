"""Template-cache miss-path speedup on a Zipf-repeated query stream.

A pricing service plans every arriving *text* fresh — the per-Query-object
plan memo never serves repeats, only the fingerprint-keyed template cache
can. Replaying a Zipf stream of SSB query variants through two vectorized
backends (cache enabled vs capacity 0) isolates the miss-path win: the Nth
literal variant of a template binds its literal vector into the cached
compiled plan instead of re-matching the shape and recompiling closures.
The acceptance bar is a 2x plan-resolution speedup with hit-counter proof.
"""

from repro.experiments.figures import template_cache_speedup

from benchmarks.conftest import save_artifact, save_bench_json


def test_template_cache_speedup(benchmark):
    artifact = benchmark.pedantic(
        template_cache_speedup,
        kwargs={
            "workload_name": "ssb",
            "scale": 0.15,
            "support_size": 300,
            "num_requests": 700,
            "zipf_s": 1.1,
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    save_bench_json(artifact, "BENCH_template_cache.json")
    speedups = artifact.data["speedups"]
    assert speedups["cached"] >= 2.0, speedups
    counters = artifact.data["diagnostics"]["template_cache"]
    # The cached run must have been served by template hits; the uncached
    # control (capacity 0) must never hit.
    assert counters["cached"]["hits"] > counters["cached"]["misses"], counters
    assert counters["uncached"]["hits"] == 0, counters
