"""Property-based tests (hypothesis) for core invariants.

Four families of properties:

1. Arbitrage-freeness of the three pricing families on arbitrary bundles.
2. Algorithm sanity on random instances (revenue bounds, buyer rationality).
3. LinExpr algebra vs. direct evaluation.
4. Canonical answer equality is permutation-invariant.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import ItemPricing, UniformBundlePricing, XOSPricing
from repro.core.revenue import compute_revenue
from repro.db.result import QueryResult
from repro.lp import LinExpr, LPModel

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

NUM_ITEMS = 12

bundles = st.sets(st.integers(0, NUM_ITEMS - 1), max_size=NUM_ITEMS).map(frozenset)
weight_vectors = st.lists(
    st.floats(0, 100, allow_nan=False), min_size=NUM_ITEMS, max_size=NUM_ITEMS
)


@st.composite
def instances(draw):
    num_edges = draw(st.integers(1, 12))
    edges = [draw(bundles) for _ in range(num_edges)]
    valuations = [
        draw(st.floats(0, 1000, allow_nan=False)) for _ in range(num_edges)
    ]
    return PricingInstance(Hypergraph(NUM_ITEMS, edges), valuations)


@st.composite
def xos_pricings(draw):
    num_components = draw(st.integers(1, 4))
    return XOSPricing([draw(weight_vectors) for _ in range(num_components)])


# ---------------------------------------------------------------------------
# 1. Arbitrage-freeness
# ---------------------------------------------------------------------------


class TestPricingFamilyProperties:
    @given(weights=weight_vectors, a=bundles, b=bundles)
    def test_item_pricing_monotone_and_subadditive(self, weights, a, b):
        pricing = ItemPricing(weights)
        assert pricing.price(a) <= pricing.price(a | b) + 1e-9
        assert pricing.price(a | b) <= pricing.price(a) + pricing.price(b) + 1e-9

    @given(pricing=xos_pricings(), a=bundles, b=bundles)
    def test_xos_pricing_monotone_and_subadditive(self, pricing, a, b):
        assert pricing.price(a) <= pricing.price(a | b) + 1e-9
        assert pricing.price(a | b) <= pricing.price(a) + pricing.price(b) + 1e-9

    @given(price=st.floats(0, 1000, allow_nan=False), a=bundles, b=bundles)
    def test_uniform_bundle_monotone_and_subadditive(self, price, a, b):
        pricing = UniformBundlePricing(price)
        assert pricing.price(a) <= pricing.price(a | b)
        assert pricing.price(a | b) <= pricing.price(a) + pricing.price(b)

    @given(pricing=xos_pricings(), bundle=bundles)
    def test_xos_dominates_components(self, pricing, bundle):
        for component in pricing.components:
            assert pricing.price(bundle) >= component.price(bundle) - 1e-12


# ---------------------------------------------------------------------------
# 2. Algorithm sanity on random instances
# ---------------------------------------------------------------------------


class TestAlgorithmProperties:
    @given(instance=instances())
    @settings(max_examples=25, deadline=None)
    def test_ubp_revenue_bounds(self, instance):
        from repro.core.algorithms import UBP

        result = UBP().run(instance)
        assert 0 <= result.revenue <= instance.total_valuation() + 1e-6

    @given(instance=instances())
    @settings(max_examples=25, deadline=None)
    def test_uip_buyers_rational(self, instance):
        from repro.core.algorithms import UIP

        result = UIP().run(instance)
        sold = result.report.sold
        tolerance = instance.valuations[sold] * 1e-6 + 1e-6
        assert np.all(
            result.report.prices[sold] <= instance.valuations[sold] + tolerance
        )

    @given(instance=instances())
    @settings(max_examples=15, deadline=None)
    def test_layering_revenue_bounds(self, instance):
        from repro.core.algorithms import Layering

        result = Layering().run(instance)
        assert 0 <= result.revenue <= instance.total_valuation() + 1e-6

    @given(instance=instances())
    @settings(max_examples=10, deadline=None)
    def test_lpip_revenue_bounds(self, instance):
        # NOTE: LPIP >= UIP is *not* a theorem (LP tie-breaking and the
        # forced-frontier constraints can lose to the uniform sweep on
        # subset-heavy instances), so only the safety bounds are properties.
        from repro.core.algorithms import LPIP

        result = LPIP().run(instance)
        assert 0 <= result.revenue <= instance.total_valuation() + 1e-6

    @given(instance=instances(), price=st.floats(0, 500, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_revenue_equals_manual_sum(self, instance, price):
        report = compute_revenue(UniformBundlePricing(price), instance)
        manual = sum(
            price for v in instance.valuations if price <= v * (1 + 1e-9) + 1e-9
        )
        assert abs(report.revenue - manual) <= 1e-9 * max(1.0, abs(manual))


# ---------------------------------------------------------------------------
# 3. LinExpr algebra
# ---------------------------------------------------------------------------


class TestLinExprProperties:
    @given(
        coeffs=st.lists(st.floats(-50, 50, allow_nan=False), min_size=3, max_size=3),
        values=st.lists(st.floats(-50, 50, allow_nan=False), min_size=3, max_size=3),
        scale=st.floats(-10, 10, allow_nan=False),
    )
    def test_linear_combination_evaluates_correctly(self, coeffs, values, scale):
        model = LPModel()
        variables = model.add_variables(3)
        expr = LinExpr.weighted_sum(zip(variables, coeffs)) * scale
        assignment = {i: v for i, v in enumerate(values)}
        expected = scale * sum(c * v for c, v in zip(coeffs, values))
        assert abs(expr.evaluate(assignment) - expected) < 1e-6

    @given(values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=2, max_size=2))
    def test_addition_commutes(self, values):
        model = LPModel()
        x, y = model.add_variables(2)
        assignment = {0: values[0], 1: values[1]}
        assert (x + y).evaluate(assignment) == (y + x).evaluate(assignment)

    @given(constant=st.floats(-100, 100, allow_nan=False))
    def test_constant_folding(self, constant):
        model = LPModel()
        x = model.add_variable()
        expr = x + constant - constant
        assert abs(expr.constant) < 1e-9


# ---------------------------------------------------------------------------
# 4. Canonical answers
# ---------------------------------------------------------------------------

row_values = st.one_of(
    st.none(), st.integers(-100, 100), st.text(max_size=4),
    st.floats(-100, 100, allow_nan=False),
)
rows = st.lists(st.tuples(row_values, row_values), max_size=8)


class TestQueryResultProperties:
    @given(rows=rows, seed=st.integers(0, 10_000))
    def test_equality_is_permutation_invariant(self, rows, seed):
        rng = np.random.default_rng(seed)
        shuffled = list(rows)
        rng.shuffle(shuffled)
        assert QueryResult(["a", "b"], rows) == QueryResult(["a", "b"], shuffled)

    @given(rows=rows)
    def test_dropping_a_row_changes_equality(self, rows):
        if not rows:
            return
        assert QueryResult(["a", "b"], rows) != QueryResult(["a", "b"], rows[1:])

    @given(rows=rows)
    def test_hash_consistent_with_equality(self, rows):
        a = QueryResult(["a", "b"], rows)
        b = QueryResult(["a", "b"], list(reversed(rows)))
        assert a == b and hash(a) == hash(b)
