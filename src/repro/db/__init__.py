"""In-memory relational database substrate.

The paper runs its query workloads on MySQL; pricing only needs deterministic
query answers over the seller's database and over each support instance, so
this package provides a compact pure-Python relational engine:

- :mod:`repro.db.schema` / :mod:`repro.db.relation` / :mod:`repro.db.database`
  — tables, rows, and databases (with cheap copy-on-write patching used by the
  support machinery),
- :mod:`repro.db.expr` — scalar expression language (comparisons, boolean
  logic, LIKE/BETWEEN/IN, arithmetic) shared by the SQL front-end and plans,
- :mod:`repro.db.plan` — logical operators (scan, filter, hash join, project,
  aggregate, distinct, sort, limit) with a straightforward executor,
- :mod:`repro.db.sql` — a recursive-descent parser for the SELECT fragment
  used by the paper's four workloads, plus a planner compiling to plans,
- :mod:`repro.db.result` — canonical, order-insensitive query answers (the
  objects compared when computing conflict sets).
"""

from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.result import QueryResult
from repro.db.schema import Column, ColumnType, TableSchema
from repro.db.query import Query, sql_query

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "Query",
    "QueryResult",
    "Relation",
    "TableSchema",
    "sql_query",
]
