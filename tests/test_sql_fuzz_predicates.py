"""Differential fuzzing of WHERE/HAVING evaluation.

Hypothesis builds random predicate trees over the star schema's fact table,
renders them to SQL, and compares the engine's filtered row set against an
*independent* interpreter implemented here in plain Python (so a shared bug
in the engine's expression evaluator cannot vouch for itself).

SQL three-valued logic is deliberately out of scope — the generated rows
contain no NULLs — so the reference semantics are ordinary booleans.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.db.query import sql_query
from repro.db.testing import random_star_database

DB = random_star_database(np.random.default_rng(3), fact_rows=30)
FACT = DB.table("F")
COLUMNS = {name: index for index, name in enumerate(FACT.schema.column_names)}
ROWS = list(FACT.rows)


# ---------------------------------------------------------------------------
# Predicate AST (test-local, independent of repro.db.expr)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Cmp:
    column: str
    op: str
    value: object


@dataclass(frozen=True)
class Rng:  # BETWEEN
    column: str
    low: float
    high: float
    negated: bool


@dataclass(frozen=True)
class Member:  # IN
    column: str
    values: tuple
    negated: bool


@dataclass(frozen=True)
class Pattern:  # LIKE on the g column
    text: str
    negated: bool


@dataclass(frozen=True)
class Bool:
    op: str  # "and" | "or"
    left: object
    right: object


@dataclass(frozen=True)
class Neg:
    child: object


def render(node) -> str:
    if isinstance(node, Cmp):
        value = f"'{node.value}'" if isinstance(node.value, str) else f"{node.value}"
        return f"{node.column} {node.op} {value}"
    if isinstance(node, Rng):
        body = f"{node.column} between {node.low} and {node.high}"
        return f"{node.column} not between {node.low} and {node.high}" if node.negated else body
    if isinstance(node, Member):
        rendered = ", ".join(
            f"'{v}'" if isinstance(v, str) else str(v) for v in node.values
        )
        keyword = "not in" if node.negated else "in"
        return f"{node.column} {keyword} ({rendered})"
    if isinstance(node, Pattern):
        keyword = "not like" if node.negated else "like"
        return f"g {keyword} '{node.text}'"
    if isinstance(node, Bool):
        return f"({render(node.left)}) {node.op} ({render(node.right)})"
    if isinstance(node, Neg):
        return f"not ({render(node.child)})"
    raise TypeError(type(node))


def holds(node, row) -> bool:
    """Reference semantics, written independently of the engine."""
    if isinstance(node, Cmp):
        cell = row[COLUMNS[node.column]]
        ops = {
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }
        return ops[node.op](cell, node.value)
    if isinstance(node, Rng):
        cell = row[COLUMNS[node.column]]
        inside = node.low <= cell <= node.high
        return not inside if node.negated else inside
    if isinstance(node, Member):
        cell = row[COLUMNS[node.column]]
        inside = cell in node.values
        return not inside if node.negated else inside
    if isinstance(node, Pattern):
        cell = row[COLUMNS["g"]]
        regex = "^" + re.escape(node.text).replace("%", ".*").replace("_", ".") + "$"
        # re.escape escapes % and _ literally; undo for the wildcard chars.
        regex = regex.replace(re.escape("%"), ".*").replace(re.escape("_"), ".")
        matched = re.match(regex, str(cell)) is not None
        return not matched if node.negated else matched
    if isinstance(node, Bool):
        if node.op == "and":
            return holds(node.left, row) and holds(node.right, row)
        return holds(node.left, row) or holds(node.right, row)
    if isinstance(node, Neg):
        return not holds(node.child, row)
    raise TypeError(type(node))


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

numeric_columns = st.sampled_from(["fid", "x", "y"])
operators = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
group_values = st.sampled_from(["a", "b", "c", "z"])


@st.composite
def comparisons(draw):
    if draw(st.booleans()):
        column = draw(numeric_columns)
        value = draw(st.integers(-2, 25))
        return Cmp(column, draw(operators), value)
    return Cmp("g", draw(st.sampled_from(["=", "!="])), draw(group_values))


@st.composite
def leaves(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(comparisons())
    if kind == 1:
        low = draw(st.integers(-2, 20))
        return Rng(
            draw(numeric_columns),
            low,
            low + draw(st.integers(0, 10)),
            draw(st.booleans()),
        )
    if kind == 2:
        values = tuple(
            sorted(draw(st.sets(st.integers(0, 20), min_size=1, max_size=4)))
        )
        return Member(draw(st.sampled_from(["fid", "x"])), values, draw(st.booleans()))
    pattern = draw(st.sampled_from(["a", "b%", "%", "_", "a%b", "%a%"]))
    return Pattern(pattern, draw(st.booleans()))


predicates = st.recursive(
    leaves(),
    lambda children: st.one_of(
        st.builds(Bool, st.sampled_from(["and", "or"]), children, children),
        st.builds(Neg, children),
    ),
    max_leaves=6,
)


# ---------------------------------------------------------------------------
# The differential test
# ---------------------------------------------------------------------------


class TestPredicateFuzz:
    @settings(max_examples=150, deadline=None)
    @given(predicate=predicates)
    def test_engine_matches_reference_filter(self, predicate):
        sql = f"select fid from F where {render(predicate)}"
        result = sql_query(sql, DB).run(DB)
        engine_ids = sorted(row[0] for row in result.rows)
        expected_ids = sorted(
            row[COLUMNS["fid"]] for row in ROWS if holds(predicate, row)
        )
        assert engine_ids == expected_ids, sql

    @settings(max_examples=60, deadline=None)
    @given(predicate=predicates)
    def test_where_and_count_agree(self, predicate):
        """COUNT(*) under the same predicate equals the filtered row count."""
        sql = f"select count(*) from F where {render(predicate)}"
        result = sql_query(sql, DB).run(DB)
        expected = sum(1 for row in ROWS if holds(predicate, row))
        assert result.rows[0][0] == expected, sql

    @settings(max_examples=40, deadline=None)
    @given(
        threshold=st.integers(0, 15),
        op=st.sampled_from([">", ">=", "<", "<=", "=", "!="]),
    )
    def test_having_count_matches_reference(self, threshold, op):
        sql = (
            "select g, count(*) from F group by g "
            f"having count(*) {op} {threshold}"
        )
        result = sql_query(sql, DB).run(DB)
        from collections import Counter

        counts = Counter(row[COLUMNS["g"]] for row in ROWS)
        ops = {
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            "=": lambda a, b: a == b,
            "!=": lambda a, b: a != b,
        }
        expected = sorted(
            (g, c) for g, c in counts.items() if ops[op](c, threshold)
        )
        assert sorted(result.rows) == expected, sql
