"""The ``world`` dataset and the skewed query workload (Table 7).

The paper uses MySQL's sample ``world`` database: 3 tables, 21 attributes,
~5000 tuples. This module generates a deterministic synthetic database with
the same schema and value distributions chosen so that every query in the
workload is meaningful (selective predicates select something, LIKE 'A%'
matches a fraction of names, joins have matches, and so on).

The skewed workload is the 34 base queries of Table 7 expanded exactly as
Appendix B prescribes: one query per country for Q17/Q27/Q31, one per
continent for Q1/Q12, one per language for Q29/Q30. With 238 countries,
7 continents, and 112 languages this yields

    34 + 3*238 + 2*7 + 2*112 = 986 queries,

matching the paper's m = 986.
"""

from __future__ import annotations

import numpy as np

from repro.db.database import Database
from repro.db.query import Query, sql_query
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.workloads.base import Workload

#: Cardinalities chosen to match the paper's world database description.
NUM_COUNTRIES = 238
NUM_CONTINENTS = 7
NUM_LANGUAGES = 112
NUM_REGIONS = 25
NUM_GOVERNMENT_FORMS = 10

CONTINENTS = (
    "Asia", "Europe", "Africa", "North America",
    "South America", "Oceania", "Antarctica",
)

#: Codes embedded verbatim in the Table 7 queries.
SPECIAL_CODES = ("USA", "GRC", "FRA", "IND", "CHN", "BRA", "DEU", "JPN")

#: Languages embedded verbatim in the Table 7 queries.
SPECIAL_LANGUAGES = ("Greek", "English", "Spanish")


def _country_code(index: int) -> str:
    if index < len(SPECIAL_CODES):
        return SPECIAL_CODES[index]
    return f"C{index:03d}"


def _country_name(index: int, rng: np.random.Generator) -> str:
    # First letter cycles the alphabet so LIKE 'A%' matches ~1/26 of names.
    first = chr(ord("A") + index % 26)
    suffix = int(rng.integers(100, 999))
    return f"{first}land{suffix}"


def _language_name(index: int) -> str:
    if index < len(SPECIAL_LANGUAGES):
        return SPECIAL_LANGUAGES[index]
    return f"Lang{index:03d}"


def world_database(scale: float = 1.0, seed: int = 42) -> Database:
    """Deterministic synthetic ``world`` database.

    ``scale`` multiplies the City/CountryLanguage row counts (Country stays
    at 238 so the query-template expansion always yields 986 queries).
    """
    rng = np.random.default_rng(seed)
    num_cities = max(NUM_COUNTRIES, int(3000 * scale))
    num_language_rows = max(NUM_LANGUAGES, int(1000 * scale))

    country_schema = TableSchema(
        "Country",
        (
            Column("Code", ColumnType.TEXT),
            Column("Name", ColumnType.TEXT),
            Column("Continent", ColumnType.TEXT),
            Column("Region", ColumnType.TEXT),
            Column("SurfaceArea", ColumnType.FLOAT),
            Column("IndepYear", ColumnType.INT),
            Column("Population", ColumnType.INT),
            Column("LifeExpectancy", ColumnType.FLOAT),
            Column("GNP", ColumnType.FLOAT),
            Column("GovernmentForm", ColumnType.TEXT),
            Column("HeadOfState", ColumnType.TEXT),
            Column("Capital", ColumnType.INT),
        ),
        primary_key=("Code",),
    )
    city_schema = TableSchema(
        "City",
        (
            Column("ID", ColumnType.INT),
            Column("Name", ColumnType.TEXT),
            Column("CountryCode", ColumnType.TEXT),
            Column("District", ColumnType.TEXT),
            Column("Population", ColumnType.INT),
        ),
        primary_key=("ID",),
    )
    language_schema = TableSchema(
        "CountryLanguage",
        (
            Column("CountryCode", ColumnType.TEXT),
            Column("Language", ColumnType.TEXT),
            Column("IsOfficial", ColumnType.TEXT),
            Column("Percentage", ColumnType.FLOAT),
        ),
        primary_key=("CountryCode", "Language"),
    )

    regions = [f"Region{i:02d}" for i in range(NUM_REGIONS)]
    regions[0] = "Caribbean"  # referenced verbatim by Q13/Q14
    government_forms = [f"Form{i}" for i in range(NUM_GOVERNMENT_FORMS)]
    government_forms[0] = "Republic"

    # Cities first (capitals reference city ids).
    city = Relation(city_schema)
    cities_per_country = max(1, num_cities // NUM_COUNTRIES)
    city_rows: list[tuple] = []
    for country_index in range(NUM_COUNTRIES):
        code = _country_code(country_index)
        for local in range(cities_per_country):
            city_id = country_index * cities_per_country + local + 1
            population = int(rng.lognormal(mean=11.5, sigma=1.2))
            city_rows.append(
                (
                    city_id,
                    f"{_country_name(country_index, rng)}City{local}",
                    code,
                    f"District{int(rng.integers(0, 40)):02d}",
                    population,
                )
            )
    # A couple of megacities so Q20/Q28-style predicates are non-trivial.
    for offset, code in enumerate(("USA", "CHN", "IND", "BRA")):
        row_index = offset * cities_per_country
        row = list(city_rows[row_index])
        row[2] = code
        row[4] = int(rng.integers(8_000_000, 20_000_000))
        city_rows[row_index] = tuple(row)
    city.insert_many(city_rows)

    country = Relation(country_schema)
    for index in range(NUM_COUNTRIES):
        capital_id = index * cities_per_country + 1
        country.insert(
            (
                _country_code(index),
                _country_name(index, rng),
                CONTINENTS[index % NUM_CONTINENTS],
                regions[index % NUM_REGIONS],
                float(np.round(rng.uniform(1_000, 17_000_000), 1)),
                int(rng.integers(1200, 2000)),
                int(rng.lognormal(mean=15.5, sigma=1.5)),
                float(np.round(rng.uniform(40, 85), 1)),
                float(np.round(rng.uniform(100, 1_000_000), 2)),
                government_forms[index % NUM_GOVERNMENT_FORMS],
                f"Head{index:03d}",
                capital_id,
            )
        )

    language = Relation(language_schema)
    rows_per_language = max(1, num_language_rows // NUM_LANGUAGES)
    seen: set[tuple[str, str]] = set()
    for lang_index in range(NUM_LANGUAGES):
        lang = _language_name(lang_index)
        for _ in range(rows_per_language):
            code = _country_code(int(rng.integers(NUM_COUNTRIES)))
            if (code, lang) in seen:
                continue
            seen.add((code, lang))
            language.insert(
                (
                    code,
                    lang,
                    "T" if rng.random() < 0.3 else "F",
                    float(np.round(rng.uniform(0.5, 100.0), 1)),
                )
            )
    # Guarantee the specific joins in Q29/Q30/Q32 have matches.
    for code, lang in (("GRC", "Greek"), ("USA", "English"), ("USA", "Spanish")):
        if (code, lang) not in seen:
            seen.add((code, lang))
            language.insert((code, lang, "T", 80.0))

    return Database("world", [country, city, language])


def base_queries() -> list[str]:
    """The 34 queries of Table 7 (with the paper's obvious typos fixed)."""
    return [
        "select count(Name) from Country where Continent = 'Asia'",
        "select count(distinct Continent) from Country",
        "select avg(Population) from Country",
        "select max(Population) from Country",
        "select min(LifeExpectancy) from Country",
        "select count(Name) from Country where Name like 'A%'",
        "select Region, max(SurfaceArea) from Country group by Region",
        "select Continent, max(Population) from Country group by Continent",
        "select Continent, count(Code) from Country group by Continent",
        "select * from Country",
        "select Name from Country where Name like 'A%'",
        "select * from Country where Continent='Europe' and Population > 5000000",
        "select * from Country where Region='Caribbean'",
        "select Name from Country where Region='Caribbean'",
        "select Name from Country where Population between 10000000 and 20000000",
        "select * from Country where Continent='Europe' limit 2",
        "select Population from Country where Code = 'USA'",
        "select GovernmentForm from Country",
        "select distinct GovernmentForm from Country",
        "select * from City where Population >= 1000000 and CountryCode = 'USA'",
        "select distinct Language from CountryLanguage where CountryCode='USA'",
        "select * from CountryLanguage where IsOfficial = 'T'",
        "select Language, count(CountryCode) from CountryLanguage group by Language",
        "select count(Language) from CountryLanguage where CountryCode = 'USA'",
        "select CountryCode, sum(Population) from City group by CountryCode",
        "select CountryCode, count(ID) from City group by CountryCode",
        "select * from City where CountryCode = 'GRC'",
        "select distinct 1 from City where CountryCode = 'USA' and Population > 10000000",
        "select Name from Country , CountryLanguage where Code = CountryCode and Language = 'Greek'",
        "select C.Name from Country C, CountryLanguage L where C.Code = L.CountryCode and L.Language = 'English' and L.Percentage >= 50",
        "select T.District from Country C, City T where C.Code = 'USA' and C.Capital = T.ID",
        "select * from Country C, CountryLanguage L where C.Code = L.CountryCode and L.Language = 'Spanish'",
        "select Name, Language from Country , CountryLanguage where Code = CountryCode",
        "select * from Country , CountryLanguage where Code = CountryCode",
    ]


def expanded_queries() -> list[str]:
    """The 986-query skewed workload per Appendix B."""
    queries = base_queries()
    codes = [_country_code(index) for index in range(NUM_COUNTRIES)]
    languages = [_language_name(index) for index in range(NUM_LANGUAGES)]

    for code in codes:
        queries.append(f"select Population from Country where Code = '{code}'")
        queries.append(f"select * from City where CountryCode = '{code}'")
        queries.append(
            "select T.District from Country C, City T "
            f"where C.Code = '{code}' and C.Capital = T.ID"
        )
    for continent in CONTINENTS:
        queries.append(
            f"select count(Name) from Country where Continent = '{continent}'"
        )
        queries.append(
            f"select * from Country where Continent='{continent}' "
            "and Population > 5000000"
        )
    for lang in languages:
        queries.append(
            "select Name from Country , CountryLanguage "
            f"where Code = CountryCode and Language = '{lang}'"
        )
        queries.append(
            "select C.Name from Country C, CountryLanguage L "
            f"where C.Code = L.CountryCode and L.Language = '{lang}' "
            "and L.Percentage >= 50"
        )
    return queries


def world_workload(
    scale: float = 1.0,
    seed: int = 42,
    expanded: bool = True,
) -> Workload:
    """The skewed workload over the world database.

    With ``expanded=False`` only the 34 base queries of Table 7 are used
    (handy for fast tests and examples).
    """
    database = world_database(scale=scale, seed=seed)
    texts = expanded_queries() if expanded else base_queries()
    # Duplicate texts (expansion regenerates e.g. Q17 for 'USA') are kept —
    # the paper's workload also contains them and they model repeat buyers.
    queries: list[Query] = [sql_query(text, database) for text in texts]
    return Workload(
        name="skewed",
        database=database,
        queries=queries,
        description="world dataset, 986-query skewed workload (Table 7 + Appendix B)",
        default_support_size=1500,
    )
