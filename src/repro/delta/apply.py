"""Validate and apply market deltas to a support set.

The validate stage is all-or-nothing: a :class:`DeltaValidationError` means
the market was not touched. The apply stage mutates the support set (and
through it the shared base database) *in place* and returns a
:class:`DeltaEffect` — the exact invalidation footprint the layers above
use for surgical cache invalidation and touched-edge re-pricing.

Soundness of the footprint rests on the column-pruning lemma the conflict
backends already rely on: a support instance can conflict with ``Q`` only
if it patches a (table, column) pair ``Q`` references, and a base patch can
change ``Q(D)`` only if ``Q`` references the patched pair. Base-row inserts
can change any query over the table (e.g. a MIN over an untouched column),
so they invalidate by whole table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.delta.types import (
    AddInstance,
    DeltaOp,
    InsertBaseRows,
    PatchBase,
    RetireInstances,
)
from repro.exceptions import DeltaValidationError, SchemaError, SupportError
from repro.support.delta import SupportInstance
from repro.support.generator import SupportSet


@dataclass(frozen=True)
class DeltaEffect:
    """The invalidation footprint of one applied delta.

    ``column_pairs`` lists the (table, column) pairs whose referencing
    queries may change; ``whole_tables`` lists tables where *any* reference
    invalidates (base-row inserts). Cached entries whose referenced columns
    are disjoint from both stay bit-exact.
    """

    kind: str
    column_pairs: frozenset[tuple[str, str]] = frozenset()
    whole_tables: frozenset[str] = frozenset()
    added_ids: tuple[int, ...] = ()
    retired_ids: tuple[int, ...] = ()
    base_changed: bool = False
    data_version: int | None = field(default=None, compare=False)

    @property
    def touched_tables(self) -> frozenset[str]:
        return frozenset(table for table, _ in self.column_pairs) | self.whole_tables

    def invalidates(
        self, columns: frozenset[tuple[str, str]] | None
    ) -> bool:
        """Whether an entry with the given referenced columns may change.

        ``None`` means the entry's footprint is unknown (e.g. restored from
        a snapshot without metadata) — invalidate conservatively.
        """
        if columns is None:
            return True
        if self.column_pairs & columns:
            return True
        if self.whole_tables and any(
            table in self.whole_tables for table, _ in columns
        ):
            return True
        return False


def _require_table(support: SupportSet, table: str):
    if not support.base.has_table(table):
        raise DeltaValidationError(f"unknown table {table!r}")
    return support.base.table(table)


def _validate_cell(support: SupportSet, table: str, row_index: int, column: str, value) -> None:
    relation = _require_table(support, table)
    if not relation.schema.has_column(column):
        raise DeltaValidationError(
            f"table {table!r} has no column {column!r}"
        )
    if not 0 <= row_index < len(relation):
        raise DeltaValidationError(
            f"row index {row_index} out of range for table {table!r} "
            f"({len(relation)} rows)"
        )
    dtype = relation.schema.column(column).dtype
    if not dtype.accepts(value):
        raise DeltaValidationError(
            f"value {value!r} invalid for column {table}.{column}"
        )


def validate_op(op: DeltaOp, support: SupportSet) -> None:
    """Raise :class:`DeltaValidationError` unless ``op`` is safe to apply."""
    if isinstance(op, AddInstance):
        if not op.deltas:
            raise DeltaValidationError("add_instance requires cell deltas")
        seen = set()
        for delta in op.deltas:
            _validate_cell(support, delta.table, delta.row_index, delta.column, delta.value)
            relation = support.base.table(delta.table)
            if delta.value == relation.cell(delta.row_index, delta.column):
                raise DeltaValidationError(
                    f"delta on {delta.table}[{delta.row_index}].{delta.column} "
                    f"equals the base value {delta.value!r} (no-op neighbor)"
                )
            if delta.key() in seen:
                raise DeltaValidationError(
                    f"duplicate delta for cell {delta.key()}"
                )
            seen.add(delta.key())
        return
    if isinstance(op, RetireInstances):
        if not op.instance_ids:
            raise DeltaValidationError("retire_instances requires instance ids")
        if len(set(op.instance_ids)) != len(op.instance_ids):
            raise DeltaValidationError("duplicate instance ids in retire")
        for instance_id in op.instance_ids:
            if not 0 <= instance_id < len(support):
                raise DeltaValidationError(
                    f"instance {instance_id} out of range [0, {len(support)})"
                )
            if support.is_retired(instance_id):
                raise DeltaValidationError(
                    f"instance {instance_id} is already retired"
                )
        return
    if isinstance(op, PatchBase):
        _validate_cell(support, op.table, op.row_index, op.column, op.value)
        relation = support.base.table(op.table)
        if op.value == relation.cell(op.row_index, op.column):
            raise DeltaValidationError(
                f"patch of {op.table}[{op.row_index}].{op.column} equals the "
                f"current value {op.value!r}"
            )
        # A live neighbor whose delta on this cell equals the new base value
        # would become a no-op neighbor — exactly what SupportInstance
        # construction forbids. Refuse rather than silently degrade.
        key = (op.table.lower(), op.column.lower())
        for instance_id in support.instances_touching_column(op.table, op.column):
            for delta in support.instance(instance_id).deltas:
                if (
                    (delta.table.lower(), delta.column.lower()) == key
                    and delta.row_index == op.row_index
                    and delta.value == op.value
                ):
                    raise DeltaValidationError(
                        f"patch would make instance {instance_id}'s delta on "
                        f"{op.table}[{op.row_index}].{op.column} a no-op"
                    )
        return
    if isinstance(op, InsertBaseRows):
        relation = _require_table(support, op.table)
        if not op.rows:
            raise DeltaValidationError("insert_base_rows requires rows")
        for row in op.rows:
            try:
                relation.schema.validate_row(tuple(row))
            except SchemaError as exc:
                raise DeltaValidationError(
                    f"row {row!r} invalid for table {op.table!r}: {exc}"
                ) from exc
        return
    raise DeltaValidationError(f"unknown delta op {op!r}")


def apply_to_support(op: DeltaOp, support: SupportSet) -> DeltaEffect:
    """Apply a *validated* op in place and return its footprint."""
    if isinstance(op, AddInstance):
        instance_id = len(support)
        try:
            instance = SupportInstance(instance_id, tuple(op.deltas))
        except SupportError as exc:
            raise DeltaValidationError(str(exc)) from exc
        support.append_instances([instance])
        return DeltaEffect(
            kind=op.kind,
            column_pairs=instance.touched_columns,
            added_ids=(instance_id,),
        )
    if isinstance(op, RetireInstances):
        pairs: set[tuple[str, str]] = set()
        for instance_id in op.instance_ids:
            pairs.update(support.instance(instance_id).touched_columns)
        support.retire_instances(list(op.instance_ids))
        return DeltaEffect(
            kind=op.kind,
            column_pairs=frozenset(pairs),
            retired_ids=tuple(sorted(op.instance_ids)),
        )
    if isinstance(op, PatchBase):
        support.patch_base(op.table, op.row_index, op.column, op.value)
        return DeltaEffect(
            kind=op.kind,
            column_pairs=op.touched_columns,
            base_changed=True,
        )
    if isinstance(op, InsertBaseRows):
        support.insert_base_rows(op.table, list(op.rows))
        return DeltaEffect(
            kind=op.kind,
            whole_tables=frozenset({op.table.lower()}),
            base_changed=True,
        )
    raise DeltaValidationError(f"unknown delta op {op!r}")
