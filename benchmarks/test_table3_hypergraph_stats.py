"""Table 3: hypergraph characteristics of the four workloads.

The paper's m values are matched exactly (986 / 1000 / 701 / 220 — ours come
from the same template expansions); B and average edge size depend on support
scale, so only their qualitative ordering is asserted: the uniform workload
has far larger average edges and max degree than the skewed one.
"""

from repro.experiments.figures import table3_hypergraph_characteristics

PAPER_M = {"uniform": 1000, "skewed": 986, "ssb": 701, "tpch": 220}


def test_table3_characteristics(benchmark):
    artifact = benchmark.pedantic(
        table3_hypergraph_characteristics, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    stats = artifact.data["stats"]

    for name, expected_m in PAPER_M.items():
        assert stats[name].num_edges == expected_m, name

    assert stats["uniform"].avg_edge_size > 10 * stats["skewed"].avg_edge_size
    assert stats["uniform"].max_degree > stats["skewed"].max_degree
    # SSB and TPC-H sit between the extremes on average edge size.
    assert stats["skewed"].avg_edge_size < stats["ssb"].avg_edge_size * 20
