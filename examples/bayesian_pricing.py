"""Bayesian posted pricing: price before valuations realize.

The paper assumes the broker learned every buyer's exact valuation through
market research. This example relaxes that: valuations are *distributions*
(what market research actually produces), and the broker must commit to
prices up front. It compares, on the skewed world-dataset workload:

1. the expected-revenue-optimal uniform bundle price computed from full
   knowledge of the distributions,
2. sample-average approximation (SAA) — post the price that was best on N
   sampled valuation profiles — for growing N, and
3. the hindsight benchmark: rerunning UBP after seeing each realization.

Takeaway: a few dozen samples already recover ~95% of the
distribution-optimal expected revenue, and the gap to hindsight is the
(unavoidable) price of committing ex ante.

Run:  python examples/bayesian_pricing.py
"""

from __future__ import annotations


from repro.bayesian import (
    BayesianInstance,
    ExpectedRevenueUBP,
    ExponentialValuation,
    UniformValuation,
    average_realized_revenue,
    expected_revenue,
    saa_uniform_bundle_price,
)
from repro.core.algorithms import UBP
from repro.workloads import world_workload


def build_bayesian_instance() -> BayesianInstance:
    """Skewed workload hypergraph with size-correlated valuation noise.

    Mirrors the paper's scaled-valuation model (Section 6.3): bigger
    conflict sets mean more information, so their valuations center higher —
    but here each buyer's willingness to pay is uncertain, not a point.
    """
    workload = world_workload(expanded=False)
    support = workload.support(size=400, seed=7)
    hypergraph = workload.hypergraph(support)
    distributions = []
    for edge in hypergraph.edges:
        size = len(edge)
        if size == 0:
            distributions.append(UniformValuation(0.0, 1.0))
        elif size <= 10:
            # Narrow queries: modest, fairly predictable value.
            distributions.append(UniformValuation(1.0, 4.0 + size))
        else:
            # Broad queries: high but volatile value.
            distributions.append(ExponentialValuation(float(size) ** 0.75))
    return BayesianInstance(hypergraph, distributions, name="skewed-bayesian")


def main() -> None:
    instance = build_bayesian_instance()
    print(f"instance: {instance.name}")
    print(f"  edges: {instance.num_edges}, items: {instance.num_items}")
    print(f"  expected welfare (sum of mean valuations): "
          f"{instance.expected_welfare():.1f}\n")

    # 1. Full-knowledge ex-ante optimum (uniform bundle family).
    ev_pricing, ev_revenue = ExpectedRevenueUBP().run(instance)
    print("expected-revenue-optimal uniform bundle price")
    print(f"  price = {ev_pricing.bundle_price:.2f}, "
          f"expected revenue = {ev_revenue:.1f}\n")

    # 2. SAA with growing sample budgets.
    print("sample-average approximation (UBP family)")
    print(f"  {'N':>5}  {'posted price':>12}  {'E[revenue]':>10}  {'of optimal':>10}")
    for num_samples in (2, 8, 32, 128, 512):
        result = saa_uniform_bundle_price(instance, num_samples, rng=num_samples)
        price = result.pricing.price(frozenset())
        fraction = result.true_expected_revenue / ev_revenue
        print(f"  {num_samples:>5}  {price:>12.2f}  "
              f"{result.true_expected_revenue:>10.1f}  {fraction:>9.1%}")

    # 3. Hindsight benchmark.
    hindsight = average_realized_revenue(UBP(), instance, num_rounds=40, rng=0)
    print("\nhindsight UBP (reprice after observing valuations)")
    print(f"  average realized revenue = {hindsight:.1f}")
    print(f"  ex-ante optimum captures {ev_revenue / hindsight:.1%} of hindsight")

    # Bonus: score a few fixed flat fees to show the curve's shape.
    print("\nrevenue curve samples (flat fee P -> expected revenue)")
    for price in (1.0, 5.0, 10.0, 20.0, 50.0):
        pricing = ExpectedRevenueUBP().run(instance)[0].__class__(price)
        print(f"  P = {price:>5.1f}  ->  "
              f"{expected_revenue(pricing, instance):>8.1f}")


if __name__ == "__main__":
    main()
