"""Pricing-service throughput benchmarks.

Two serving claims are asserted here:

- **Micro-batched caching beats sequential quoting** — the canonical quote
  cache plus the micro-batching scheduler must beat one-at-a-time
  ``QueryMarket.quote`` by at least 3x on a Zipf-repeated uniform-workload
  request stream (measured margin is ~2x over the bar; absolute wall-clock
  numbers flake on shared runners, ratios do not). Written to
  ``BENCH_service_batching.json``.
- **Sharding scales the tier** — ``ShardedPricingService`` at 4 shards must
  serve the same stream at >= 1.5x the 1-shard throughput (measured margin
  ~2x over the bar). Cache budgets are per shard, so the 4-shard tier holds
  a working set that thrashes one shard's caches; prices stay bit-equal to
  the unsharded sequential oracle (asserted inside the figure), and the
  shard/shed counters proving how traffic was served land in
  ``BENCH_service.json`` — the file ``repro-pricing bench-check`` gates
  against ``benchmarks/baselines/``.
"""

import pytest

from repro.experiments.figures import service_throughput, sharded_throughput

from benchmarks.conftest import save_bench_json

#: CI-scale stream: 4000 requests over 120 distinct queries, 8 clients.
CI_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.15,
    "support_size": 250,
    "num_queries": 120,
    "num_requests": 4000,
    "zipf_s": 1.1,
    "num_clients": 8,
}

#: Laptop-scale stream for the --runslow tier: more distinct queries, a
#: larger support (costlier cold misses), and a longer stream.
FULL_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.3,
    "support_size": 600,
    "num_queries": 300,
    "num_requests": 12000,
    "zipf_s": 1.1,
    "num_clients": 8,
}

#: CI-scale sharded stream: the 160-query working set overflows one shard's
#: 48-entry caches (evict -> recompute) but fits in four shards' aggregate
#: 192 entries — the capacity-scaling regime the tier is built for.
SHARDED_CI_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.2,
    "support_size": 600,
    "num_queries": 160,
    "num_requests": 2500,
    "zipf_s": 0.6,
    "num_clients": 4,
    "shard_counts": (1, 4),
    "cache_capacity": 48,
}

#: Laptop-scale sharded stream for the --runslow tier.
SHARDED_FULL_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.3,
    "support_size": 1000,
    "num_queries": 300,
    "num_requests": 8000,
    "zipf_s": 0.6,
    "num_clients": 8,
    "shard_counts": (1, 2, 4),
    "cache_capacity": 80,
}


def _check(artifact, num_requests: int) -> None:
    # Price parity with the sequential oracle is asserted inside
    # service_throughput; here we assert the speedup and that the counters
    # prove which path served the traffic.
    assert artifact.data["speedups"]["service"] >= 3.0, artifact.data["speedups"]
    service = artifact.data["diagnostics"]["service"]
    cache = service["quote_cache"]
    # Counter consistency: every load-run request consulted the quote cache
    # exactly once (the snapshot is taken before the parity re-quotes).
    assert cache["hits"] + cache["misses"] == num_requests, cache
    # Zipf repetition must actually exercise the cache...
    assert cache["hit_rate"] >= 0.5, cache
    # ...and the misses must have been micro-batched, more than one per flush.
    assert service["batches"] >= 1, service
    assert service["mean_batch_size"] > 1.0, service
    assert artifact.data["latency"]["p99_ms"] > 0.0


def _check_sharded(artifact, kwargs) -> None:
    shard_counts = kwargs["shard_counts"]
    top = f"shards={shard_counts[-1]}"
    # The scaling claim: >= 1.5x stream throughput at the top shard count vs
    # one shard (bit-equal prices vs the unsharded sequential oracle are
    # asserted inside the figure, for every distinct query at every count).
    assert artifact.data["speedups"][top] >= 1.5, artifact.data["speedups"]
    for num_shards in shard_counts:
        report = artifact.data["diagnostics"][f"shards={num_shards}"]
        service = report["service"]
        assert service["num_shards"] == num_shards, service
        # Admission-control counter proof: every request was explicitly
        # accepted or shed, and this closed-loop stream sheds nothing.
        assert service["requests_shed"] == 0, service
        assert service["requests_accepted"] > 0, service
        assert report["shed"] == 0, report
        # Every shard actually served traffic: its scheduler flushed
        # batches and its caches were consulted.
        for shard in service["shards"]:
            assert shard["batcher"]["batches"] >= 1, shard
            assert shard["quote_cache"]["hits"] + shard["quote_cache"]["misses"] > 0, shard
        # The loadgen broke latency down by home shard.
        assert len(report["per_shard_latency"]) == num_shards, report
    # The capacity story in counters: one shard must be evicting (cache
    # pressure), the top count must hit far more often.
    single = artifact.data["diagnostics"]["shards=1"]["service"]["quote_cache"]
    top_cache = artifact.data["diagnostics"][top]["service"]["quote_cache"]
    assert single["evictions"] > 0, single
    assert top_cache["hit_rate"] > single["hit_rate"], (single, top_cache)


def test_service_throughput_uniform(benchmark):
    artifact = benchmark.pedantic(
        service_throughput, kwargs=CI_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_service_batching.json")
    _check(artifact, CI_KWARGS["num_requests"])


def test_sharded_service_scaling(benchmark):
    artifact = benchmark.pedantic(
        sharded_throughput, kwargs=SHARDED_CI_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_service.json")
    _check_sharded(artifact, SHARDED_CI_KWARGS)


@pytest.mark.slow
def test_service_throughput_uniform_full(benchmark):
    """Laptop-scale variant, part of the workflow_dispatch --runslow job."""
    artifact = benchmark.pedantic(
        service_throughput, kwargs=FULL_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_service_full.json")
    _check(artifact, FULL_KWARGS["num_requests"])


@pytest.mark.slow
def test_sharded_service_scaling_full(benchmark):
    """Laptop-scale sharded variant (adds the 2-shard midpoint)."""
    artifact = benchmark.pedantic(
        sharded_throughput, kwargs=SHARDED_FULL_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_service_sharded_full.json")
    _check_sharded(artifact, SHARDED_FULL_KWARGS)
