"""Structural analysis of pricing instances.

Tools for understanding *why* an algorithm behaves the way it does on an
instance — used by EXPERIMENTS.md to explain where our reproduction matches
the paper and where (and why) it deviates:

- :func:`containment_stats` — how nested the hypergraph is: edges whose item
  set contains other edges ("umbrella" edges) are exactly what caps
  forced-frontier pricings like LPIP.
- :func:`frontier_cap` — for a valuation threshold, the provable upper bound
  on any item pricing that must sell the entire frontier: selling an umbrella
  edge ``u`` at price <= v_u caps the *summed* price of all its sub-edges at
  ``v_u`` (additivity), so nested structure + structure-independent
  valuations squeeze the frontier's extractable value.
- :func:`lpip_structural_bound` — the best frontier value over all
  thresholds after applying the umbrella caps; if this is far below the sum
  of valuations, no threshold-LP pricing can approach it, whatever the LP
  does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hypergraph import Hypergraph, PricingInstance


@dataclass(frozen=True)
class ContainmentStats:
    """Nesting structure of a hypergraph."""

    num_edges: int
    num_subset_pairs: int
    num_umbrella_edges: int
    max_children: int

    @property
    def nesting_ratio(self) -> float:
        """Subset pairs per edge — 0 for laminar-free instances."""
        if self.num_edges == 0:
            return 0.0
        return self.num_subset_pairs / self.num_edges


def subset_relation(hypergraph: Hypergraph) -> dict[int, list[int]]:
    """Map each edge to the indices of its strict sub-edges.

    Empty edges are trivially subsets of everything and are excluded (they
    carry no extractable value for item pricings).

    The incidence index makes this near-linear for sparse hypergraphs: a
    candidate superset must contain *some* item of the subset, so only edges
    sharing the subset's rarest item are examined.
    """
    edges = hypergraph.edges
    incidence = hypergraph.incidence
    degrees = hypergraph.degrees
    children: dict[int, list[int]] = {}
    for small_index, small in enumerate(edges):
        if not small:
            continue
        rarest = min(small, key=lambda item: degrees[item])
        for big_index in incidence[rarest]:
            if big_index == small_index:
                continue
            big = edges[big_index]
            if len(big) > len(small) and small < big:
                children.setdefault(big_index, []).append(small_index)
    return children


def containment_stats(hypergraph: Hypergraph) -> ContainmentStats:
    """Summary of the hypergraph's nesting structure."""
    children = subset_relation(hypergraph)
    num_pairs = sum(len(subs) for subs in children.values())
    max_children = max((len(subs) for subs in children.values()), default=0)
    return ContainmentStats(
        num_edges=hypergraph.num_edges,
        num_subset_pairs=num_pairs,
        num_umbrella_edges=len(children),
        max_children=max_children,
    )


def frontier_cap(
    instance: PricingInstance,
    threshold: float,
    children: dict[int, list[int]] | None = None,
) -> float:
    """Upper bound on Σ prices of any additive pricing selling the whole
    frontier ``F = {e : v_e >= threshold}``.

    For an umbrella edge ``u`` in the frontier whose frontier sub-edges have
    maximum per-item multiplicity ``m`` (each item of ``u`` lies in at most
    ``m`` of them), additivity gives

        sum_{e subset of u} price(e) <= m * price(u) <= m * v_u,

    since summing the sub-edge prices counts every item weight at most ``m``
    times and ``price(u) <= v_u`` because ``u`` must be sold. We charge each
    capped sub-edge at most its proportional share of ``m * v_u`` and every
    uncapped edge its own valuation — a *valid upper bound* on the frontier
    revenue of any pricing forced to sell all of ``F`` (LPIP's LP at this
    threshold).
    """
    if children is None:
        children = subset_relation(instance.hypergraph)
    valuations = instance.valuations
    edges = instance.edges
    frontier = {
        index
        for index in range(instance.num_edges)
        if valuations[index] >= threshold and edges[index]
    }
    if not frontier:
        return 0.0

    # Start optimistic: every frontier edge sells at its full valuation.
    capped_value = {index: float(valuations[index]) for index in frontier}
    for umbrella, subs in children.items():
        if umbrella not in frontier:
            continue
        frontier_subs = [s for s in subs if s in frontier]
        if not frontier_subs:
            continue
        multiplicity: dict[int, int] = {}
        for s in frontier_subs:
            for item in edges[s]:
                multiplicity[item] = multiplicity.get(item, 0) + 1
        m = max(multiplicity.values())
        limit = m * float(valuations[umbrella])
        current = sum(capped_value[s] for s in frontier_subs)
        if current > limit:
            scale = limit / current
            for s in frontier_subs:
                capped_value[s] *= scale
    return float(sum(capped_value.values()))


def lpip_structural_bound(instance: PricingInstance, max_thresholds: int = 64) -> float:
    """Best frontier value over thresholds, after umbrella caps.

    An upper bound on what any forced-frontier item pricing (LPIP) can earn
    *from its frontier*. Realized revenue can additionally pick up cheap
    edges outside the frontier, so this is diagnostic rather than absolute —
    but when it sits far below ``sum v``, the umbrella structure (not the LP
    or the threshold sampling) is what limits LPIP.
    """
    children = subset_relation(instance.hypergraph)
    thresholds = np.unique(instance.valuations)[::-1]
    if len(thresholds) > max_thresholds:
        positions = np.linspace(0, len(thresholds) - 1, max_thresholds)
        thresholds = thresholds[np.round(positions).astype(int)]
    best = 0.0
    for threshold in thresholds:
        best = max(best, frontier_cap(instance, float(threshold), children))
    return best
