"""``ProcessShardedPricingService``: one worker *process* per shard.

:class:`~repro.service.sharding.ShardedPricingService` scales cache capacity
and scheduling, but all of its shard markets compute under one GIL — the
conflict-set inner loop cannot use more than one core per Python process.
This module runs the same support-partitioned tier across real processes:

- **Fork over shared tensors** — the coordinator partitions the support,
  lays every partition's delta-tensor pair arrays out in POSIX shared
  memory (:mod:`repro.service.shm`), and forks one worker per shard.
  Workers re-attach the named segments on startup, so parent and children
  address one copy of the big arrays; everything else (base rows, patch
  values) rides fork's copy-on-write.
- **Pipe RPC, ids only** — scatter ships canonical-key fingerprints and
  query texts to every worker; gather receives sorted int64 arrays of
  *global* instance ids (the shard's partial conflict set). No pickled
  tensors, no support sets on the wire (:mod:`repro.service.worker`).
- **Coordinator-side policy** — consistent-hash routing, per-home-shard
  quote caches, micro-batching (one coordinator-side
  :class:`~repro.service.batching.MicroBatcher` per worker coalesces
  misses into one RPC), admission control, tier-global pricing under the
  same O(bundle) market lock as the in-process tiers, snapshots, and the
  delta log all stay in the coordinator — workers only compute.
- **Supervision** — every RPC doubles as a liveness probe (poll + process
  aliveness + heartbeat timeout ⇒ typed
  :class:`~repro.exceptions.WorkerCrashError`), and a heartbeat thread
  sweeps for silently dead workers. A dead shard is re-forked from the
  coordinator's *current* partition mirror (deltas included by
  construction) and its pinned bundle seeds are replayed, so the
  replacement serves bit-equal prices.
- **Cross-process deltas** — :meth:`apply_delta` validates against the
  full support, mutates the coordinator mirror, then fans the wire op out
  to every worker while holding every worker's RPC lock: in-flight
  computes finish against the pre-delta partitions, later ones see the
  post-delta state on every shard — the same version boundary the
  in-process tier guarantees with compute locks.

The in-process sharded tier remains the parity oracle: same partitioning,
same routing, same scatter/gather algebra, bit-equal prices.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import PricingFunction, extend_pricing
from repro.db.database import Database
from repro.db.query import Query, sql_query
from repro.delta import (
    DeltaEffect,
    DeltaLog,
    DeltaOp,
    DeltaRecord,
    apply_to_support,
    delta_from_dict,
    delta_to_dict,
    validate_op,
)
from repro.exceptions import (
    DeltaValidationError,
    PricingError,
    ServiceError,
    ServiceOverloadError,
    SnapshotError,
    WorkerCrashError,
)
from repro.qirana.backends import referenced_columns
from repro.qirana.broker import PriceQuote, Transaction
from repro.qirana.history import HistoryAwareLedger
from repro.qirana.persistence import QuoteEntry, load_market_state, save_market_state
from repro.service.batching import BatchRequest, MicroBatcher
from repro.service.cache import CacheStats, LRUCache, QuoteCache
from repro.service.server import CanonicalServingMixin
from repro.service.sharding import (
    ConsistentHashRouter,
    ShardStats,
    ShardedServiceStats,
    partition_support,
)
from repro.service.shm import SegmentRegistry, share_tensor
from repro.service.worker import WorkerRequest, resurrect_error, worker_main
from repro.support.generator import SupportSet

__all__ = [
    "MulticoreServiceStats",
    "ProcessShardStats",
    "ProcessShardedPricingService",
    "fork_available",
]

#: Liveness-probe cadence inside a blocking RPC wait (seconds).
_POLL_INTERVAL = 0.05


def fork_available() -> bool:
    """Whether this platform can fork workers (the tier requires it).

    The tier inherits partitions and copy-on-write state through ``fork``;
    ``spawn``-only platforms (Windows) cannot run it.
    """
    return "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProcessShardStats(ShardStats):
    """One process shard's counters: coordinator side plus the worker's own."""

    #: The worker process id (-1 when unknown).
    pid: int = -1
    #: Times this shard's worker was re-forked after a crash.
    restarts: int = 0
    #: Compute batches / batched requests the worker itself served.
    worker: dict | None = None

    def as_dict(self) -> dict:
        payload = super().as_dict()
        payload["pid"] = self.pid
        payload["restarts"] = self.restarts
        payload["worker"] = self.worker
        return payload


@dataclass(frozen=True)
class MulticoreServiceStats(ShardedServiceStats):
    """Tier snapshot with the supervision counters the process tier adds."""

    worker_restarts: int = 0

    def as_dict(self) -> dict:
        payload = super().as_dict()
        payload["worker_restarts"] = self.worker_restarts
        return payload


# ---------------------------------------------------------------------------
# Worker handle (coordinator side)
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """The coordinator's end of one shard: process, pipe, RPC framing.

    ``lock`` serializes pipe access (one request/response frame at a time);
    it is re-entrant so the delta fan-out can respawn a crashed worker while
    already holding it. ``generation`` lets concurrent crash observers agree
    on who respawns: a respawn is a no-op unless the caller saw the current
    generation.
    """

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        self.process = None
        self.conn = None
        self.lock = threading.RLock()
        self.generation = 0
        self.restarts = 0
        self._next_id = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def adopt(self, process, conn, *, restart: bool) -> None:
        self.process = process
        self.conn = conn
        self.generation += 1
        if restart:
            self.restarts += 1

    def call(self, kind: str, payload=None, *, timeout: float | None = None):
        """One RPC round trip; raises :class:`WorkerCrashError` on death.

        Every call is a liveness probe: while waiting for the response the
        worker process's aliveness is checked each poll interval, so a
        SIGKILLed worker surfaces within ~50ms instead of hanging the
        caller on a pipe that will never speak again.
        """
        with self.lock:
            self._next_id += 1
            request_id = self._next_id
            try:
                self.conn.send(WorkerRequest(kind, request_id, payload))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerCrashError(
                    f"shard {self.shard_id} worker pipe is broken "
                    f"(send {kind!r}): {exc}"
                ) from exc
            waited = 0.0
            while not self.conn.poll(_POLL_INTERVAL):
                waited += _POLL_INTERVAL
                if not self.alive:
                    raise WorkerCrashError(
                        f"shard {self.shard_id} worker died with "
                        f"{kind!r} in flight"
                    )
                if timeout is not None and waited >= timeout:
                    raise WorkerCrashError(
                        f"shard {self.shard_id} worker missed the "
                        f"{timeout:g}s heartbeat deadline for {kind!r}"
                    )
            try:
                response = self.conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerCrashError(
                    f"shard {self.shard_id} worker hung up mid-response "
                    f"({kind!r})"
                ) from exc
        if response.request_id != request_id:
            raise WorkerCrashError(
                f"shard {self.shard_id} worker protocol desync: expected "
                f"response {request_id}, got {response.request_id}"
            )
        if not response.ok:
            raise resurrect_error(response)
        return response.result

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop, escalating to SIGTERM/SIGKILL (idempotent)."""
        process = self.process
        if process is None:
            return
        try:
            self.call("shutdown", timeout=timeout)
        except (WorkerCrashError, ServiceError):
            pass
        process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout)
        if process.is_alive():
            process.kill()
            process.join(timeout)
        self.close_pipe()

    def close_pipe(self) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# The process-sharded service
# ---------------------------------------------------------------------------


class ProcessShardedPricingService(CanonicalServingMixin):
    """Support-partitioned serving across worker processes: true multi-core.

    Parameters mirror :class:`ShardedPricingService`; the additions:

    heartbeat_interval:
        Cadence of the supervision sweep that re-forks silently dead
        workers (seconds; ``0`` disables the sweep — crashes are then
        detected only by in-flight RPCs).
    heartbeat_timeout:
        How long a control RPC (ping/stats/seed/delta) may go unanswered
        before the worker is declared dead. Compute RPCs have no deadline
        (a cold conflict-set build is legitimately slow) but still detect
        process death each poll interval.
    """

    def __init__(
        self,
        support: SupportSet,
        *,
        num_shards: int = 4,
        replicas: int = 64,
        conflict_backend: str = "auto",
        max_batch_size: int = 64,
        max_batch_delay: float = 0.001,
        max_queue_depth: int | None = 256,
        cache_capacity: int = 4096,
        bundle_cache_capacity: int | None = None,
        plan_memo_capacity: int = 8192,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 30.0,
        start: bool = True,
    ):
        if not fork_available():
            raise ServiceError(
                "ProcessShardedPricingService requires the fork start "
                "method; this platform only offers "
                f"{multiprocessing.get_all_start_methods()}"
            )
        self._ctx = multiprocessing.get_context("fork")
        self.support = support
        self.partitions = partition_support(support, num_shards)
        self.num_shards = num_shards
        self.conflict_backend = conflict_backend
        self.heartbeat_timeout = heartbeat_timeout
        self._router = ConsistentHashRouter(num_shards, replicas=replicas)
        if bundle_cache_capacity is None:
            bundle_cache_capacity = cache_capacity
        self._bundle_cache_capacity = bundle_cache_capacity
        self._plan_memo_capacity = plan_memo_capacity
        # Shared-memory layout: every partition's delta tensors are built
        # now, copied into owned segments, and the shm-backed views are
        # installed back into the partitions — the state workers attach to.
        self._registry = SegmentRegistry()
        self._layouts: list[dict[str, object]] = []
        for partition in self.partitions:
            layouts: dict[str, object] = {}
            for table in sorted(partition.support._by_table):
                layout, shared = share_tensor(
                    partition.support.delta_tensor(table), self._registry
                )
                partition.support._delta_tensors[table] = shared
                layouts[table] = layout
            self._layouts.append(layouts)
        # Workers fork *before* any coordinator thread starts: the children
        # must never inherit a running scheduler's half-held locks.
        self._handles = [_WorkerHandle(shard) for shard in range(num_shards)]
        for shard in range(num_shards):
            self._fork_worker(shard, restart=False)
        self._batchers = [
            MicroBatcher(
                self._make_execute(shard),
                max_batch_size=max_batch_size,
                max_batch_delay=max_batch_delay,
                max_queue_depth=max_queue_depth,
                name=f"pricing-proc-shard-{shard}",
                start=start,
            )
            for shard in range(num_shards)
        ]
        self._quote_caches = [QuoteCache(cache_capacity) for _ in self.partitions]
        self._plans = LRUCache(plan_memo_capacity)
        self._shard_of = np.empty(len(support), dtype=np.int64)
        for partition in self.partitions:
            self._shard_of[partition.global_ids] = partition.shard_id
        self._market_lock = threading.RLock()
        self._pricing: PricingFunction | None = None
        self._ledger = HistoryAwareLedger(None)
        self._delta_log = DeltaLog()
        self.transactions: list[Transaction] = []
        self._requests_accepted = [0] * num_shards
        self._requests_shed = [0] * num_shards
        #: Replayed into a re-forked worker: snapshot-seeded partials.
        self._pinned: list[dict[str, np.ndarray]] = [{} for _ in range(num_shards)]
        self._closed = False
        self._stop_supervisor = threading.Event()
        self._supervisor: threading.Thread | None = None
        if heartbeat_interval > 0:
            self._supervisor = threading.Thread(
                target=self._supervise,
                args=(heartbeat_interval,),
                name="pricing-proc-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _fork_worker(self, shard: int, *, restart: bool) -> None:
        """Fork shard ``shard`` from the coordinator's current partition.

        The child inherits the partition mirror as of this instant — every
        applied delta included — so a re-fork needs no delta replay. The
        shared-tensor layouts are passed only while still current (a
        structural delta replaces the cached tensors with process-local
        arrays, after which attaching the original segments would resurrect
        the pre-delta pairs).
        """
        handle = self._handles[shard]
        parent_conn, child_conn = self._ctx.Pipe()
        config = {
            "shard_id": shard,
            "num_shards": self.num_shards,
            "conflict_backend": self.conflict_backend,
            "bundle_cache_capacity": self._bundle_cache_capacity,
            "plan_memo_capacity": self._plan_memo_capacity,
            "layouts": self._layouts[shard],
        }
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.partitions[shard], config),
            name=f"pricing-shard-{shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.adopt(process, parent_conn, restart=restart)

    def _respawn(self, shard: int, generation: int) -> None:
        """Re-fork a dead shard and replay its pinned state (idempotent).

        ``generation`` is the handle generation the caller observed when it
        saw the crash: if another thread already respawned, this call is a
        no-op. Runs under the market lock so the fork captures a consistent
        partition mirror (no delta mid-mutation).
        """
        with self._market_lock:
            handle = self._handles[shard]
            with handle.lock:
                if handle.generation != generation:
                    return  # someone else already re-forked this shard
                if self._closed:
                    raise ServiceError(
                        f"shard {shard} worker died after the tier closed"
                    )
                handle.close_pipe()
                process = handle.process
                if process is not None and process.is_alive():
                    process.kill()
                if process is not None:
                    process.join(5.0)
                self._fork_worker(shard, restart=True)
                pinned = list(self._pinned[shard].items())
                if pinned:
                    handle.call("seed", pinned, timeout=self.heartbeat_timeout)

    def _supervise(self, interval: float) -> None:
        """Heartbeat sweep: re-fork any worker found dead between RPCs."""
        while not self._stop_supervisor.wait(interval):
            for shard, handle in enumerate(self._handles):
                if self._closed:
                    return
                if not handle.alive:
                    try:
                        self._respawn(shard, handle.generation)
                    except ServiceError:
                        pass  # closed concurrently, or next sweep retries

    def ping(self, shard: int) -> bool:
        """Heartbeat one worker (True when it answered in time)."""
        try:
            return (
                self._handles[shard].call(
                    "ping", timeout=self.heartbeat_timeout
                )
                == "pong"
            )
        except WorkerCrashError:
            return False

    def start(self) -> None:
        """Start every coordinator-side scheduler thread (idempotent)."""
        for batcher in self._batchers:
            batcher.start()

    def close(self) -> None:
        """Drain schedulers, stop workers, release every shared segment."""
        with self._market_lock:
            if self._closed:
                return
            self._closed = True
        self._stop_supervisor.set()
        if self._supervisor is not None:
            self._supervisor.join()
        # Schedulers first: their final flushes still need live workers.
        for batcher in self._batchers:
            batcher.close()
        for handle in self._handles:
            handle.shutdown()
        self._registry.close()

    def __enter__(self) -> "ProcessShardedPricingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pricing management
    # ------------------------------------------------------------------

    @property
    def pricing(self) -> PricingFunction | None:
        return self._pricing

    @property
    def base(self) -> Database:
        """The seller's database (coordinator copy)."""
        return self.support.base

    @property
    def ledger(self) -> HistoryAwareLedger:
        return self._ledger

    @property
    def revenue(self) -> float:
        return sum(transaction.price for transaction in self.transactions)

    def install_pricing(self, pricing: PricingFunction) -> None:
        """Install a new pricing; cached quotes re-price in place.

        Pricing is coordinator-only state — workers never price — so an
        install needs no fan-out at all.
        """
        with self._market_lock:
            self._pricing = pricing
            self._ledger.pricing = pricing
            for cache in self._quote_caches:
                cache.reprice(
                    lambda quote: PriceQuote(
                        quote.query_text,
                        pricing.price(quote.bundle),
                        quote.bundle,
                    )
                )

    def optimize_pricing(
        self,
        queries: list[Query | str],
        valuations,
        algorithm: PricingAlgorithm,
    ) -> PricingResult:
        """Price a workload through the scatter/gather path and install it."""
        instance = self.build_instance(queries, valuations)
        result = algorithm.run(instance)
        self.install_pricing(result.pricing)
        return result

    def build_instance(
        self,
        queries: list[Query | str],
        valuations,
        name: str = "process-sharded-market",
    ) -> PricingInstance:
        """Scatter/gather a workload into a pricing instance."""
        if len(queries) != len(valuations):
            raise PricingError(
                f"{len(queries)} queries but {len(valuations)} valuations"
            )
        resolved = [self._canonical(query) for query in queries]
        gathers = self._scatter(resolved)
        edges = [self._gather(requests) for requests in gathers]
        hypergraph = Hypergraph(len(self.support), edges)
        return PricingInstance(
            hypergraph, np.asarray(valuations, dtype=float), name
        )

    # ------------------------------------------------------------------
    # Buyer-facing API
    # ------------------------------------------------------------------

    def quote_many(self, queries: list[Query | str]) -> list[PriceQuote]:
        """Price many queries; misses scatter together for batching."""
        resolved = [self._canonical(query) for query in queries]
        results: list[PriceQuote | None] = []
        misses: list[tuple[int, Query, str, tuple[int, int]]] = []
        for position, (planned, key) in enumerate(resolved):
            cache = self._quote_caches[self._router.route(key)]
            cached = cache.get(key)
            if cached is not None:
                results.append(self._restamp(cached, planned))
            else:
                results.append(None)
                misses.append((position, planned, key, cache.stamps()))
        if misses:
            if self._pricing is None:
                raise PricingError(
                    "no pricing installed; call install_pricing first"
                )
            gathers = self._scatter(
                [(planned, key) for _, planned, key, _ in misses]
            )
            for (position, planned, key, stamps), requests in zip(misses, gathers):
                bundle = self._gather(requests)
                results[position] = self._price_and_cache(
                    planned, key, bundle, stamps
                )
        return results

    def home_shard(self, query: Query | str) -> int:
        """The shard owning this query's cache entry and accounting."""
        _, key = self._canonical(query)
        return self._router.route(key)

    # ------------------------------------------------------------------
    # Online deltas
    # ------------------------------------------------------------------

    @property
    def delta_log(self) -> DeltaLog:
        return self._delta_log

    @property
    def data_version(self) -> int:
        return self._delta_log.applied_version

    def accept_delta(self, op: DeltaOp | dict) -> int:
        """Stage a delta for later apply/cancel; returns its id."""
        if isinstance(op, dict):
            op = delta_from_dict(op)
        return self._delta_log.accept(op)

    def cancel_delta(self, delta_id: int) -> DeltaRecord:
        """Cancel a staged delta (typed error if not staged)."""
        return self._delta_log.cancel(delta_id)

    def apply_delta(self, delta: DeltaOp | dict | int) -> DeltaEffect:
        """Validate once, mutate the coordinator, fan out to every worker.

        The fan-out holds the market lock *and* every worker's RPC lock:
        each in-flight compute finished against the pre-delta partition on
        every shard (its cache put is policed by the delta epoch), and any
        compute submitted afterwards waits until every worker acked the
        mutation — the cross-process version boundary. A worker that dies
        mid-fan-out is re-forked from the already-mutated coordinator
        mirror, so the replacement is post-delta by construction and the
        op is *not* re-sent to it.
        """
        if isinstance(delta, int):
            delta_id = delta
            op = self._delta_log.staged_op(delta_id)
        else:
            op = delta_from_dict(delta) if isinstance(delta, dict) else delta
            delta_id = self._delta_log.accept(op)
        with self._market_lock:
            for handle in self._handles:
                handle.lock.acquire()
            try:
                try:
                    validate_op(op, self.support)
                except DeltaValidationError as exc:
                    self._delta_log.mark_rejected(delta_id, str(exc))
                    raise
                effect = self._apply_to_coordinator(op)
                self._delta_log.mark_applied(delta_id)
                if effect.added_ids and self._pricing is not None:
                    self._pricing = extend_pricing(
                        self._pricing, len(self.support)
                    )
                    self._ledger.pricing = self._pricing
                if effect.added_ids or effect.retired_ids:
                    # Structural deltas replaced every partition's cached
                    # tensors with process-local arrays; the original
                    # segments describe a stale pair layout and must not be
                    # re-attached by future re-forks.
                    self._layouts = [{} for _ in range(self.num_shards)]
                payload = {
                    "op": delta_to_dict(op),
                    "column_pairs": sorted(effect.column_pairs),
                    "whole_tables": sorted(effect.whole_tables),
                    "added": list(effect.added_ids),
                    "retired": list(effect.retired_ids),
                    "base_changed": effect.base_changed,
                }
                for shard, handle in enumerate(self._handles):
                    try:
                        handle.call(
                            "apply_delta",
                            payload,
                            timeout=self.heartbeat_timeout,
                        )
                    except WorkerCrashError:
                        self._respawn(shard, handle.generation)
                for cache in self._quote_caches:
                    cache.invalidate(effect.column_pairs, effect.whole_tables)
            finally:
                for handle in reversed(self._handles):
                    handle.lock.release()
        return effect

    def _apply_to_coordinator(self, op: DeltaOp) -> DeltaEffect:
        """Mutate the full support and the partition mirrors in this process."""
        effect = apply_to_support(op, self.support)
        if effect.base_changed:
            # Partitions share the coordinator's Database object, so the
            # rows already changed; they only need cache notification.
            for partition in self.partitions:
                partition.support.note_base_change()
        for global_id in effect.added_ids:
            self._add_to_partition(global_id)
        if effect.retired_ids:
            self._retire_from_partitions(effect.retired_ids)
        return effect

    def _add_to_partition(self, global_id: int) -> None:
        shard = global_id % self.num_shards
        partition = self.partitions[shard]
        instance = self.support.instances[global_id]
        local = len(partition.support.instances)
        partition.support.append_instances(
            [dataclasses.replace(instance, instance_id=local)]
        )
        self.partitions[shard] = dataclasses.replace(
            partition,
            global_ids=np.append(partition.global_ids, np.int64(global_id)),
        )
        self._shard_of = np.append(self._shard_of, np.int64(shard))

    def _retire_from_partitions(self, retired_ids) -> None:
        by_shard: dict[int, list[int]] = {}
        for global_id in retired_ids:
            shard = int(self._shard_of[global_id])
            partition = self.partitions[shard]
            local = int(np.searchsorted(partition.global_ids, global_id))
            by_shard.setdefault(shard, []).append(local)
        for shard, local_ids in by_shard.items():
            self.partitions[shard].support.retire_instances(local_ids)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self, path: str | Path) -> None:
        """Persist pricing, transactions, histories, and cached quotes."""
        with self._market_lock:
            if self._pricing is None:
                raise PricingError("no pricing installed; nothing to snapshot")
            entries = [
                QuoteEntry(key, quote.query_text, quote.price, quote.bundle)
                for cache in self._quote_caches
                for key, quote in cache.entries()
            ]
            save_market_state(
                self._pricing,
                {entry.query_text: entry.bundle for entry in entries},
                path,
                transactions=self.transactions,
                ledger=self._ledger,
                quotes=entries,
                data_version=self._delta_log.applied_version,
            )

    def restore(self, path: str | Path) -> None:
        """Rehydrate warm: re-home quotes, seed and *pin* worker partials.

        The per-shard partial bundles are both seeded into the live workers
        and pinned on the coordinator, so a worker that crashes later gets
        them replayed into its replacement.
        """
        state = load_market_state(path)
        if state.data_version < self._delta_log.applied_version:
            raise SnapshotError(
                f"snapshot data version {state.data_version} is older than "
                f"the live market ({self._delta_log.applied_version}); its "
                f"bundles predate applied deltas and must not be served"
            )
        with self._market_lock:
            self._delta_log = DeltaLog(start_version=state.data_version)
            self._pricing = state.pricing
            self._ledger.pricing = state.pricing
            self.transactions[:] = list(state.transactions)
            self._ledger.owned = dict(state.owned)
            self._ledger.total_paid = dict(state.total_paid)
            for cache in self._quote_caches:
                cache.bump_generation()
            for entry in state.quotes:
                home = self._router.route(entry.key)
                self._quote_caches[home].put(
                    entry.key,
                    PriceQuote(entry.query_text, entry.price, entry.bundle),
                )
                self._pin_partials(entry.key, entry.bundle)
            for shard, handle in enumerate(self._handles):
                pinned = list(self._pinned[shard].items())
                if not pinned:
                    continue
                try:
                    handle.call("seed", pinned, timeout=self.heartbeat_timeout)
                except WorkerCrashError:
                    self._respawn(shard, handle.generation)

    def _pin_partials(self, key: str, bundle: frozenset[int]) -> None:
        members = np.fromiter(bundle, dtype=np.int64, count=len(bundle))
        members.sort()
        owners = self._shard_of[members] if len(members) else members
        for shard in range(self.num_shards):
            self._pinned[shard][key] = members[owners == shard]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> MulticoreServiceStats:
        with self._market_lock:
            accepted = list(self._requests_accepted)
            shed = list(self._requests_shed)
        shards = []
        for shard, handle in enumerate(self._handles):
            try:
                worker = handle.call("stats", timeout=self.heartbeat_timeout)
            except (WorkerCrashError, ServiceError):
                worker = None
            bundles = (
                _cache_stats_from(worker["bundles"])
                if worker is not None
                else CacheStats(0, 0, 0, 0, 0, 0, 0)
            )
            shards.append(
                ProcessShardStats(
                    shard_id=shard,
                    support_size=len(self.partitions[shard]),
                    quotes=self._quote_caches[shard].stats(),
                    bundles=bundles,
                    batcher=self._batchers[shard].stats(),
                    requests_accepted=accepted[shard],
                    requests_shed=shed[shard],
                    pid=handle.process.pid if handle.process else -1,
                    restarts=handle.restarts,
                    worker=worker,
                )
            )
        return MulticoreServiceStats(
            shards=tuple(shards),
            plans=self._plans.stats(),
            transactions=len(self.transactions),
            deltas=self._delta_log.counters.as_dict(),
            data_version=self._delta_log.applied_version,
            worker_restarts=sum(handle.restarts for handle in self._handles),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _plan(self, text: str) -> Query:
        return sql_query(text, self.base)

    def _quote_planned(self, planned: Query, key: str) -> PriceQuote:
        cache = self._quote_caches[self._router.route(key)]
        cached = cache.get(key)
        if cached is not None:
            return self._restamp(cached, planned)
        if self._pricing is None:
            raise PricingError("no pricing installed; call install_pricing first")
        stamps = cache.stamps()
        (requests,) = self._scatter([(planned, key)])
        bundle = self._gather(requests)
        return self._price_and_cache(planned, key, bundle, stamps)

    def _make_execute(self, shard: int):
        """The coordinator-side flush of shard ``shard``: one compute RPC.

        Dedupes canonical keys within the flush (the worker computes each
        key once) and retries exactly once through a respawn when the
        worker died mid-call — the replacement was forked from the same
        partition state, so the retried answer is bit-equal.
        """

        def execute(batch: list[BatchRequest]) -> list[frozenset[int]]:
            items: list[tuple[str, str]] = []
            seen: set[str] = set()
            for request in batch:
                if request.key not in seen:
                    seen.add(request.key)
                    items.append((request.key, request.payload.text))
            handle = self._handles[shard]
            generation = handle.generation
            try:
                arrays = handle.call("compute", items)
            except WorkerCrashError:
                self._respawn(shard, generation)
                arrays = self._handles[shard].call("compute", items)
            resolved = {
                key: frozenset(int(member) for member in array)
                for (key, _), array in zip(items, arrays)
            }
            return [resolved[request.key] for request in batch]

        return execute

    def _scatter(
        self, resolved: list[tuple[Query, str]]
    ) -> list[list[BatchRequest]]:
        """One sub-request per (query, shard); same admission story as the
        in-process tier (pre-check every queue, all-or-nothing, sheds
        charged to the home shard)."""
        rows = [
            [BatchRequest.make(planned, key) for _ in self._batchers]
            for planned, key in resolved
        ]
        homes = [self._router.route(key) for _, key in resolved]
        try:
            for batcher in self._batchers:
                if batcher.would_shed(len(rows)):
                    raise ServiceOverloadError(
                        f"{batcher.name} queue is full; request shed "
                        f"before scatter"
                    )
            for index, batcher in enumerate(self._batchers):
                batcher.submit([row[index] for row in rows])
        except ServiceOverloadError:
            with self._market_lock:
                for home in homes:
                    self._requests_shed[home] += 1
            raise
        with self._market_lock:
            for home in homes:
                self._requests_accepted[home] += 1
        return rows

    def _gather(self, requests: list[BatchRequest]) -> frozenset[int]:
        """Union the partial conflict sets of one scattered query."""
        partials = [request.future.result() for request in requests]
        return frozenset().union(*partials)

    def _price_and_cache(
        self,
        planned: Query,
        key: str,
        bundle: frozenset[int],
        stamps: tuple[int, int] | None = None,
    ) -> PriceQuote:
        cache = self._quote_caches[self._router.route(key)]
        with self._market_lock:
            if self._pricing is None:
                raise PricingError(
                    "no pricing installed; call install_pricing first"
                )
            price = self._pricing.price(bundle)
            generation = cache.generation
            delta_epoch = stamps[1] if stamps is not None else None
        quote = PriceQuote(planned.text, price, bundle)
        cache.put(
            key,
            quote,
            generation=generation,
            columns=frozenset(referenced_columns(planned, self.base)),
            delta_epoch=delta_epoch,
        )
        return quote

    def _append_transaction(self, transaction: Transaction) -> None:
        """Record a completed sale (caller holds the market lock)."""
        self.transactions.append(transaction)


def _cache_stats_from(payload: dict) -> CacheStats:
    """Rebuild a :class:`CacheStats` from a worker's wire dict."""
    return CacheStats(
        capacity=payload["capacity"],
        size=payload["size"],
        hits=payload["hits"],
        misses=payload["misses"],
        evictions=payload["evictions"],
        stale_drops=payload["stale_drops"],
        generation=payload["generation"],
        delta_drops=payload["delta_drops"],
    )
