"""Valuation distributions and single-buyer posted-pricing theory.

A posted price ``p`` offered to a buyer whose valuation is drawn from ``F``
earns ``p`` with probability ``S(p) = 1 - F(p^-)`` (the buyer purchases iff
``v >= p``), so the *revenue curve* is ``R(p) = p * S(p)`` and the optimal
posted price maximizes it — Myerson's classic result that for a single item
a posted price is the optimal mechanism [Myerson 1981].

Every distribution here exposes ``survival`` (right-continuous tail
probability with purchase-at-equality semantics), sampling, and — where a
closed form exists — the exact optimal posted price. The generic fallback
:func:`optimal_posted_price` grid-searches the revenue curve and refines with
a golden-section pass, which is exact for the unimodal (regular) case and a
high-quality heuristic otherwise.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import optimize, stats

from repro.exceptions import PricingError


class ValuationDistribution:
    """Base class: a non-negative distribution of buyer valuations."""

    def survival(self, price: float) -> float:
        """``P(v >= price)`` — the probability a posted price sells."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected valuation ``E[v]``."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw valuations (scalar for ``size=None``, else an array)."""
        raise NotImplementedError

    def upper_bound(self) -> float:
        """A finite price above which the survival is (essentially) zero."""
        raise NotImplementedError

    def revenue(self, price: float) -> float:
        """Expected revenue ``price * P(v >= price)`` of posting ``price``."""
        if price < 0:
            raise PricingError("posted prices must be non-negative")
        return price * self.survival(price)

    def optimal_price(self) -> tuple[float, float]:
        """``(price, expected_revenue)`` of the optimal posted price.

        Subclasses with a closed form override this; the default delegates
        to the numeric search in :func:`optimal_posted_price`.
        """
        return _numeric_optimal_price(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@dataclass(frozen=True, repr=False)
class UniformValuation(ValuationDistribution):
    """``v ~ Uniform[low, high]`` — the paper's sampled-valuation model."""

    low: float
    high: float

    def __post_init__(self):
        if not 0 <= self.low < self.high:
            raise PricingError("need 0 <= low < high")

    def survival(self, price: float) -> float:
        if price <= self.low:
            return 1.0
        if price >= self.high:
            return 0.0
        return (self.high - price) / (self.high - self.low)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.uniform(self.low, self.high, size)

    def upper_bound(self) -> float:
        return self.high

    def optimal_price(self) -> tuple[float, float]:
        # R(p) = p (high - p) / (high - low) on [low, high]: unconstrained
        # peak at high/2, clamped into the support from below.
        price = max(self.low, self.high / 2.0)
        return price, self.revenue(price)

    def __repr__(self) -> str:
        return f"UniformValuation({self.low:g}, {self.high:g})"


@dataclass(frozen=True, repr=False)
class ExponentialValuation(ValuationDistribution):
    """``v ~ Exponential(scale)`` — the paper's scaled-valuation model."""

    scale: float

    def __post_init__(self):
        if self.scale <= 0:
            raise PricingError("scale must be positive")

    def survival(self, price: float) -> float:
        if price <= 0:
            return 1.0
        return math.exp(-price / self.scale)

    def mean(self) -> float:
        return self.scale

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.exponential(self.scale, size)

    def upper_bound(self) -> float:
        # S(40 * scale) ~ 4e-18: negligible revenue beyond this point.
        return 40.0 * self.scale

    def optimal_price(self) -> tuple[float, float]:
        # d/dp [p e^{-p/s}] = 0 at p = s; revenue s / e.
        return self.scale, self.scale / math.e

    def __repr__(self) -> str:
        return f"ExponentialValuation(scale={self.scale:g})"


@dataclass(frozen=True, repr=False)
class NormalValuation(ValuationDistribution):
    """``v ~ Normal(mu, sigma)`` truncated at zero (valuations are >= 0)."""

    mu: float
    sigma: float

    def __post_init__(self):
        if self.sigma <= 0:
            raise PricingError("sigma must be positive")

    def _tail_mass(self) -> float:
        return float(stats.norm.sf(0.0, self.mu, self.sigma))

    def survival(self, price: float) -> float:
        if price <= 0:
            return 1.0
        return float(stats.norm.sf(price, self.mu, self.sigma)) / self._tail_mass()

    def mean(self) -> float:
        # Mean of the truncated normal, E[v | v >= 0].
        alpha = -self.mu / self.sigma
        hazard = stats.norm.pdf(alpha) / stats.norm.sf(alpha)
        return self.mu + self.sigma * float(hazard)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            while True:
                draw = rng.normal(self.mu, self.sigma)
                if draw >= 0:
                    return draw
        draws = rng.normal(self.mu, self.sigma, size)
        while np.any(draws < 0):
            negatives = draws < 0
            draws[negatives] = rng.normal(self.mu, self.sigma, int(negatives.sum()))
        return draws

    def upper_bound(self) -> float:
        return self.mu + 10.0 * self.sigma

    def __repr__(self) -> str:
        return f"NormalValuation(mu={self.mu:g}, sigma={self.sigma:g})"


@dataclass(frozen=True, repr=False)
class ParetoValuation(ValuationDistribution):
    """``v ~ Pareto(shape, minimum)`` — heavy tails, the zipf analogue.

    For ``shape > 1`` the revenue curve ``p (minimum/p)^shape`` is decreasing
    past the minimum, so the optimal posted price is the minimum itself. For
    ``shape <= 1`` expected revenue is unbounded and the distribution refuses
    to construct (no finite optimal price exists).
    """

    shape: float
    minimum: float

    def __post_init__(self):
        if self.shape <= 1:
            raise PricingError("Pareto shape must exceed 1 (finite revenue)")
        if self.minimum <= 0:
            raise PricingError("Pareto minimum must be positive")

    def survival(self, price: float) -> float:
        if price <= self.minimum:
            return 1.0
        return (self.minimum / price) ** self.shape

    def mean(self) -> float:
        return self.shape * self.minimum / (self.shape - 1.0)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.minimum * (1.0 + rng.pareto(self.shape, size))

    def upper_bound(self) -> float:
        # Revenue at this price is minimum * eps^(shape - 1): negligible.
        return self.minimum * 10.0 ** (6.0 / (self.shape - 1.0))

    def optimal_price(self) -> tuple[float, float]:
        return self.minimum, self.minimum

    def __repr__(self) -> str:
        return f"ParetoValuation(shape={self.shape:g}, min={self.minimum:g})"


class DiscreteValuation(ValuationDistribution):
    """A finite-support valuation distribution.

    The optimal posted price of a discrete distribution is always one of the
    support points (lowering the price strictly between support points loses
    revenue without gaining buyers), so the optimum is exact here.
    """

    def __init__(self, values: Sequence[float], probabilities: Sequence[float]):
        values = np.asarray(values, dtype=np.float64)
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if values.ndim != 1 or values.shape != probabilities.shape or not len(values):
            raise PricingError("values and probabilities must be matching vectors")
        if np.any(values < 0):
            raise PricingError("valuations must be non-negative")
        if np.any(probabilities < 0) or not math.isclose(
            float(probabilities.sum()), 1.0, rel_tol=1e-9, abs_tol=1e-9
        ):
            raise PricingError("probabilities must be non-negative and sum to 1")
        order = np.argsort(values, kind="stable")
        self.values = values[order]
        self.probabilities = probabilities[order]
        # tail[i] = P(v >= values[i])
        self._tails = self.probabilities[::-1].cumsum()[::-1]

    def survival(self, price: float) -> float:
        index = bisect_left(self.values.tolist(), price)
        if index >= len(self.values):
            return 0.0
        return float(self._tails[index])

    def mean(self) -> float:
        return float((self.values * self.probabilities).sum())

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.choice(self.values, size=size, p=self.probabilities)

    def upper_bound(self) -> float:
        return float(self.values[-1])

    def optimal_price(self) -> tuple[float, float]:
        revenues = self.values * self._tails
        best = int(np.argmax(revenues))
        return float(self.values[best]), float(revenues[best])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiscreteValuation(support={len(self.values)})"


class EmpiricalValuation(DiscreteValuation):
    """The empirical distribution of observed valuations (uniform weights).

    This is the bridge from samples to pricing: SAA posts the optimal price
    of the empirical distribution.
    """

    def __init__(self, samples: Sequence[float]):
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 1 or not len(samples):
            raise PricingError("need at least one sample")
        super().__init__(samples, np.full(len(samples), 1.0 / len(samples)))


def _numeric_optimal_price(
    distribution: ValuationDistribution, grid_size: int = 512
) -> tuple[float, float]:
    """Grid search plus golden-section refinement of the revenue curve."""
    high = distribution.upper_bound()
    if high <= 0:
        return 0.0, 0.0
    grid = np.linspace(0.0, high, grid_size)
    revenues = np.array([distribution.revenue(p) for p in grid])
    anchor = int(np.argmax(revenues))
    lo = grid[max(0, anchor - 1)]
    hi = grid[min(grid_size - 1, anchor + 1)]
    refined = optimize.minimize_scalar(
        lambda p: -distribution.revenue(p), bounds=(lo, hi), method="bounded"
    )
    candidates = [(float(grid[anchor]), float(revenues[anchor]))]
    if refined.success:
        price = float(refined.x)
        candidates.append((price, distribution.revenue(price)))
    return max(candidates, key=lambda pair: pair[1])


def optimal_posted_price(
    distribution: ValuationDistribution,
) -> tuple[float, float]:
    """``(price, expected_revenue)`` of the optimal posted price.

    Dispatches to the distribution's closed form when it has one.
    """
    return distribution.optimal_price()


def myerson_reserve(
    distribution: ValuationDistribution,
    lo: float = 1e-9,
    hi: float | None = None,
) -> float:
    """The Myerson reserve price — the zero of the virtual value.

    ``phi(p) = p - S(p)/f(p)``; for regular distributions the reserve equals
    the optimal posted price. The density is estimated by central
    differences on the survival function, so the result is numeric; use
    :func:`optimal_posted_price` when you only need the revenue optimum.
    """
    hi = hi if hi is not None else distribution.upper_bound()
    step = max(hi * 1e-7, 1e-9)

    def virtual(price: float) -> float:
        survival = distribution.survival(price)
        density = (
            distribution.survival(price - step) - distribution.survival(price + step)
        ) / (2.0 * step)
        if density <= 0:
            # Flat region: treat the virtual value as the price itself
            # (no mass to trade off against).
            return price
        return price - survival / density

    low_value = virtual(lo)
    high_value = virtual(hi)
    if low_value >= 0:
        return lo
    if high_value <= 0:
        return hi
    return float(optimize.brentq(virtual, lo, hi, xtol=1e-9 * max(1.0, hi)))


def has_monotone_hazard_rate(
    distribution: ValuationDistribution,
    grid_size: int = 256,
    tolerance: float = 1e-6,
) -> bool:
    """Numerically check the MHR condition ``f(p)/S(p)`` non-decreasing.

    MHR distributions are regular, so posted pricing enjoys the strongest
    approximation guarantees of the Bayesian literature the paper cites.
    The check is a grid test, so it certifies "no violation found on the
    grid" rather than a proof.
    """
    high = distribution.upper_bound()
    grid = np.linspace(high * 1e-4, high * 0.999, grid_size)
    step = high * 1e-6
    hazards = []
    for price in grid:
        survival = distribution.survival(price)
        if survival <= 1e-12:
            break
        density = (
            distribution.survival(price - step) - distribution.survival(price + step)
        ) / (2.0 * step)
        hazards.append(max(density, 0.0) / survival)
    return all(
        later >= earlier * (1.0 - tolerance) - tolerance
        for earlier, later in zip(hazards, hazards[1:])
    )
