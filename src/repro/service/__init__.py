"""The serving tier: concurrent, cached, micro-batched query pricing.

Where :mod:`repro.qirana` optimizes and prices a *workload*,
:mod:`repro.service` serves a *request stream*:

- :mod:`repro.service.canonical` — plan-level fingerprints so textual
  variants of one query share a cache entry,
- :mod:`repro.service.cache` — bounded, generation-invalidated LRU caching,
- :mod:`repro.service.server` — :class:`PricingService`, the thread-safe
  micro-batching facade over :class:`~repro.qirana.broker.QueryMarket`,
- :mod:`repro.service.loadgen` / :mod:`repro.service.metrics` — synthetic
  open/closed-loop traffic and latency accounting for benchmarks.
"""

from repro.service.cache import CacheStats, LRUCache, QuoteCache
from repro.service.canonical import canonical_form, canonical_key
from repro.service.loadgen import LoadProfile, LoadReport, run_load, zipf_schedule
from repro.service.metrics import LatencyRecorder, LatencySummary
from repro.service.server import BuyerSession, PricingService, ServiceStats

__all__ = [
    "BuyerSession",
    "CacheStats",
    "LRUCache",
    "LatencyRecorder",
    "LatencySummary",
    "LoadProfile",
    "LoadReport",
    "PricingService",
    "QuoteCache",
    "ServiceStats",
    "canonical_form",
    "canonical_key",
    "run_load",
    "zipf_schedule",
]
