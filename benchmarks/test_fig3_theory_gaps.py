"""Figure 3 / Lemmas 1-4: the revenue gaps between pricing families.

Reproduces the theory picture empirically: on each lower-bound construction
the designated family loses a growing (logarithmic) factor while some other
succinct family (or the full subadditive pricing) extracts everything.
"""


from repro.core.algorithms import LPIP, UBP, UIP
from repro.experiments.report import format_table
from repro.workloads.synthetic import (
    harmonic_instance,
    laminar_instance,
    partition_instance,
)


def _gap_rows():
    rows = []
    for m in (64, 256, 1024):
        instance = harmonic_instance(m)
        optimal = instance.total_valuation()
        ubp = UBP().run(instance).revenue
        item = LPIP(max_programs=25).run(instance).revenue
        rows.append(
            ["harmonic (Lemma 2)", f"m={m}", f"{optimal / ubp:.2f}",
             f"{optimal / max(item, 1e-9):.2f}"]
        )
    for n in (16, 64, 256):
        instance = partition_instance(n)
        optimal = instance.total_valuation()
        ubp = UBP().run(instance).revenue
        item = LPIP(max_programs=1).run(instance).revenue
        rows.append(
            ["partition (Lemma 3)", f"n={n}", f"{optimal / ubp:.2f}",
             f"{optimal / max(item, 1e-9):.2f}"]
        )
    for t in (3, 5, 7):
        instance = laminar_instance(t)
        optimal = instance.total_valuation()
        ubp = UBP().run(instance).revenue
        item = UIP().run(instance).revenue
        rows.append(
            ["laminar (Lemma 4)", f"t={t}", f"{optimal / ubp:.2f}",
             f"{optimal / max(item, 1e-9):.2f}"]
        )
    return rows


def test_fig3_pricing_family_gaps(benchmark):
    rows = benchmark.pedantic(_gap_rows, rounds=1, iterations=1)
    text = format_table(
        ["construction", "size", "OPT/UBP", "OPT/item"],
        rows,
        title="Figure 3 (empirical): revenue gaps of succinct families",
    )
    print("\n" + text)

    # Lemma 2: UBP gap grows with m while item pricing stays optimal.
    harmonic = [row for row in rows if row[0].startswith("harmonic")]
    assert float(harmonic[0][2]) < float(harmonic[-1][2])
    assert all(float(row[3]) < 1.05 for row in harmonic)

    # Lemma 3: item gap grows with n while UBP stays optimal.
    partition = [row for row in rows if row[0].startswith("partition")]
    assert float(partition[0][3]) < float(partition[-1][3])
    assert all(float(row[2]) < 1.05 for row in partition)

    # Lemma 4: both gaps grow with t.
    laminar = [row for row in rows if row[0].startswith("laminar")]
    assert float(laminar[0][2]) < float(laminar[-1][2])
    assert float(laminar[0][3]) < float(laminar[-1][3])
