"""Sampling neighboring databases — Qirana's support-set strategy.

"Qirana generates a support set S by randomly sampling 'neighboring'
databases of the underlying database D, i.e. databases from I that differ
from D only in a few places." (Section 6.1.) The sampler perturbs random
cells with type-aware replacement values drawn from the column's active
domain, guaranteeing each instance differs from the base.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.schema import ColumnType, Value
from repro.exceptions import SupportError
from repro.support.delta import CellDelta, SupportInstance


class SupportSet:
    """An ordered collection of support instances over a base database.

    The index maps lowercased table names (and (table, column) pairs) to the
    instance ids touching them — the conflict engine's pruning structure.
    Materialized neighbor databases are cached so that pricing a workload of
    hundreds of queries materializes each instance once.
    """

    def __init__(self, base: Database, instances: list[SupportInstance]):
        for position, instance in enumerate(instances):
            if instance.instance_id != position:
                raise SupportError(
                    f"instance ids must be consecutive, got {instance.instance_id} "
                    f"at position {position}"
                )
        self.base = base
        self.instances = instances
        self._by_table: dict[str, list[int]] = {}
        self._by_column: dict[tuple[str, str], list[int]] = {}
        for instance in instances:
            for table in instance.touched_tables:
                self._by_table.setdefault(table, []).append(instance.instance_id)
            for pair in instance.touched_columns:
                self._by_column.setdefault(pair, []).append(instance.instance_id)
        self._materialized: dict[int, Database] = {}
        self._delta_tensors: dict[str, object] = {}
        self._data_version = 0
        self._retired: set[int] = set()

    @property
    def data_version(self) -> int:
        """A stamp that changes whenever cached support-derived state resets.

        Template caches key compiled plans to the tensors current at compile
        time; a bumped version (``clear_cache``) lazily invalidates them.
        """
        return self._data_version

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[SupportInstance]:
        return iter(self.instances)

    def instance(self, instance_id: int) -> SupportInstance:
        return self.instances[instance_id]

    def instances_touching_table(self, table: str) -> list[int]:
        return self._by_table.get(table.lower(), [])

    def instances_touching_column(self, table: str, column: str) -> list[int]:
        return self._by_column.get((table.lower(), column.lower()), [])

    def materialize(self, instance_id: int) -> Database:
        """The neighbor database for ``instance_id`` (cached)."""
        if instance_id in self._retired:
            raise SupportError(f"instance {instance_id} is retired")
        cached = self._materialized.get(instance_id)
        if cached is None:
            cached = self.instances[instance_id].materialize(self.base)
            self._materialized[instance_id] = cached
        return cached

    def delta_tensor(self, table: str):
        """The :class:`~repro.support.tensor.TableDeltaTensor` of ``table``.

        Built once per table and cached — the batch conflict engine shares it
        across every query of a workload.
        """
        from repro.support.tensor import build_delta_tensor

        key = table.lower()
        tensor = self._delta_tensors.get(key)
        if tensor is None:
            tensor = build_delta_tensor(self, table)
            self._delta_tensors[key] = tensor
        return tensor

    def clear_cache(self) -> None:
        """Drop materialized databases and delta tensors (memory relief)."""
        self._materialized.clear()
        self._delta_tensors.clear()
        self._data_version += 1

    # ------------------------------------------------------------------
    # Online mutation (delta subsystem)
    # ------------------------------------------------------------------

    @property
    def retired_ids(self) -> frozenset[int]:
        """Ids of retired instances (allocated but no longer live)."""
        return frozenset(self._retired)

    def is_retired(self, instance_id: int) -> bool:
        return instance_id in self._retired

    @property
    def live_size(self) -> int:
        """Number of non-retired instances."""
        return len(self.instances) - len(self._retired)

    def append_instances(self, instances: list[SupportInstance]) -> list[int]:
        """Append fresh instances, maintaining indexes and cached tensors.

        Ids must continue the consecutive sequence (the next id is
        ``len(self)``). Cached delta tensors are extended incrementally —
        tables the new instances touch gain their pairs, all others only
        grow their ``pair_counts``.
        """
        from repro.support.tensor import extend_delta_tensor, grow_delta_tensor

        next_id = len(self.instances)
        for offset, instance in enumerate(instances):
            if instance.instance_id != next_id + offset:
                raise SupportError(
                    f"appended instance ids must be consecutive, expected "
                    f"{next_id + offset}, got {instance.instance_id}"
                )
        self.instances.extend(instances)
        touched: set[str] = set()
        for instance in instances:
            for table in instance.touched_tables:
                self._by_table.setdefault(table, []).append(instance.instance_id)
                touched.add(table)
            for pair in instance.touched_columns:
                self._by_column.setdefault(pair, []).append(instance.instance_id)
        for key, tensor in list(self._delta_tensors.items()):
            if key in touched:
                self._delta_tensors[key] = extend_delta_tensor(
                    tensor, instances, len(self.instances)
                )
            else:
                self._delta_tensors[key] = grow_delta_tensor(
                    tensor, len(self.instances)
                )
        self._data_version += 1
        return [instance.instance_id for instance in instances]

    def retire_instances(self, instance_ids: list[int]) -> None:
        """Retire instances in place (ids stay allocated, never reused).

        Retired instances disappear from the pruning indexes and cached
        tensors, so no conflict engine can ever decide them as candidates
        again; existing hyperedges must be updated by the caller (the market
        drops retired items from every touched edge).
        """
        ids = sorted({int(instance_id) for instance_id in instance_ids})
        for instance_id in ids:
            if not 0 <= instance_id < len(self.instances):
                raise SupportError(
                    f"instance {instance_id} out of range "
                    f"[0, {len(self.instances)})"
                )
            if instance_id in self._retired:
                raise SupportError(f"instance {instance_id} is already retired")
        from repro.support.tensor import retire_from_delta_tensor

        for instance_id in ids:
            instance = self.instances[instance_id]
            for table in instance.touched_tables:
                bucket = self._by_table.get(table)
                if bucket is not None and instance_id in bucket:
                    bucket.remove(instance_id)
            for pair in instance.touched_columns:
                bucket = self._by_column.get(pair)
                if bucket is not None and instance_id in bucket:
                    bucket.remove(instance_id)
            self._materialized.pop(instance_id, None)
            self._retired.add(instance_id)
        for key, tensor in list(self._delta_tensors.items()):
            self._delta_tensors[key] = retire_from_delta_tensor(tensor, ids)
        self._data_version += 1

    def patch_base(self, table: str, row_index: int, column: str, value) -> None:
        """Patch one base cell in place and refresh derived caches.

        The shared :class:`Database` object is mutated directly, so conflict
        backends holding ``support.base`` by reference observe the change.
        Cached delta tensors stay valid (they encode *instance* deltas and
        row indices, neither of which a cell patch changes); materialized
        neighbors embed base rows and are dropped.
        """
        self.base.table(table).set_cell(row_index, column, value)
        self.note_base_change()

    def insert_base_rows(self, table: str, rows) -> None:
        """Append validated rows to a base table in place."""
        self.base.table(table).insert_many(rows)
        self.note_base_change()

    def note_base_change(self) -> None:
        """Record that the shared base database was mutated elsewhere.

        Sharded serving mutates the one shared base once and then notifies
        each shard's :class:`SupportSet` view through this hook. Cached
        delta tensors survive (patches keep row counts, inserts only append
        rows, so stored row indices stay valid); materialized neighbors are
        rebuilt lazily and the data version bumps so stamped template
        entries drop on next access.
        """
        self._materialized.clear()
        self._data_version += 1

    def restrict(self, size: int) -> "SupportSet":
        """A prefix support set of the first ``size`` instances.

        Used by the support-size sweep experiments (Figure 8, Tables 5/6):
        shrinking the support keeps instance identities stable, so revenue
        differences come from granularity alone.
        """
        if not 0 <= size <= len(self.instances):
            raise SupportError(f"cannot restrict {len(self.instances)} instances to {size}")
        return SupportSet(self.base, self.instances[:size])


class NeighborSampler:
    """Type-aware random perturbation of base-database cells.

    Parameters
    ----------
    base:
        The seller's database ``D``.
    rng:
        numpy Generator (deterministic support sets for reproducibility).
    cells_per_instance:
        How many cells each neighbor differs in (``mode="cell"``).
    perturb_primary_keys:
        When False (default), primary-key columns are never modified, so
        neighbors keep the same join structure — matching how Qirana
        perturbs attribute values rather than identities.
    mode:
        ``"cell"`` — each neighbor differs in ``cells_per_instance`` random
        cells anywhere in the database; ``"row"`` — each neighbor differs in
        one random *row* (every non-primary-key cell of it), which is how
        Qirana's neighbors behave and what reproduces the paper's hypergraph
        densities (a query conflicts with an instance iff the perturbed row
        is relevant to it).
    """

    MODES = ("cell", "row")

    def __init__(
        self,
        base: Database,
        rng: np.random.Generator | int | None = None,
        cells_per_instance: int = 1,
        perturb_primary_keys: bool = False,
        mode: str = "cell",
    ):
        if cells_per_instance < 1:
            raise SupportError("cells_per_instance must be at least 1")
        if mode not in self.MODES:
            raise SupportError(f"mode must be one of {self.MODES}, got {mode!r}")
        self.mode = mode
        self.base = base
        self.rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        self.cells_per_instance = cells_per_instance
        self._targets = self._collect_targets(perturb_primary_keys)
        if not self._targets:
            raise SupportError("base database has no perturbable cells")
        # Sample (table, column) proportionally to the number of cells in the
        # column, so deltas are uniform over perturbable *cells* — large
        # tables absorb proportionally more perturbations, as in Qirana.
        weights = np.array(
            [len(self.base.table(table)) for table, _ in self._targets],
            dtype=np.float64,
        )
        self._target_probabilities = weights / weights.sum()
        self._domains: dict[tuple[str, str], list[Value]] = {}

    def _collect_targets(self, perturb_primary_keys: bool) -> list[tuple[str, str]]:
        """(table, column) pairs eligible for perturbation."""
        targets: list[tuple[str, str]] = []
        for relation in self.base.tables():
            if len(relation) == 0:
                continue
            pk = {name.lower() for name in relation.schema.primary_key}
            for column in relation.schema.columns:
                if not perturb_primary_keys and column.name.lower() in pk:
                    continue
                targets.append((relation.schema.name, column.name))
        return targets

    def _column_domain(self, table: str, column: str) -> list[Value]:
        key = (table.lower(), column.lower())
        domain = self._domains.get(key)
        if domain is None:
            values = self.base.table(table).column_values(column)
            domain = list(dict.fromkeys(value for value in values if value is not None))
            self._domains[key] = domain
        return domain

    def _perturb_value(self, table: str, column: str, current: Value) -> Value:
        """A replacement value guaranteed to differ from ``current``."""
        relation = self.base.table(table)
        dtype = relation.schema.column(column).dtype
        domain = self._column_domain(table, column)
        alternatives = [value for value in domain if value != current]
        if alternatives:
            choice = alternatives[int(self.rng.integers(len(alternatives)))]
            # For numeric columns, occasionally jitter instead of resampling
            # the domain, giving neighbors values outside the active domain.
            if dtype in (ColumnType.INT, ColumnType.FLOAT) and self.rng.random() < 0.5:
                return self._jitter(current, dtype)
            return choice
        return self._fallback_value(current, dtype)

    def _jitter(self, current: Value, dtype: ColumnType) -> Value:
        base = current if isinstance(current, (int, float)) else 0
        offset = int(self.rng.integers(1, 10))
        if self.rng.random() < 0.5:
            offset = -offset
        if dtype is ColumnType.INT:
            return int(base) + offset
        return float(base) + offset + float(self.rng.random())

    def _fallback_value(self, current: Value, dtype: ColumnType) -> Value:
        if dtype is ColumnType.INT:
            return (int(current) + 1) if isinstance(current, int) else 0
        if dtype is ColumnType.FLOAT:
            return (float(current) + 1.0) if isinstance(current, (int, float)) else 0.0
        return (str(current) + "~") if current is not None else "~"

    def sample_instance(self, instance_id: int) -> SupportInstance:
        """One neighbor, per the configured ``mode``."""
        if self.mode == "row":
            return self._sample_row_instance(instance_id)
        return self._sample_cell_instance(instance_id)

    def _sample_row_instance(self, instance_id: int) -> SupportInstance:
        """Perturb every non-PK cell of one randomly chosen row."""
        # Choose a table proportionally to its row count, then a row.
        tables = [r for r in self.base.tables() if len(r) > 0]
        weights = np.array([len(r) for r in tables], dtype=float)
        relation = tables[int(self.rng.choice(len(tables), p=weights / weights.sum()))]
        row_index = int(self.rng.integers(len(relation)))
        schema = relation.schema
        pk = {name.lower() for name in schema.primary_key}

        deltas: list[CellDelta] = []
        for column in schema.columns:
            if column.name.lower() in pk:
                continue
            current = relation.cell(row_index, column.name)
            replacement = self._perturb_value(schema.name, column.name, current)
            if replacement == current:
                replacement = self._fallback_value(current, column.dtype)
            if replacement == current:
                continue
            deltas.append(CellDelta(schema.name, row_index, column.name, replacement))
        if not deltas:
            # Degenerate row (all PK): fall back to a cell perturbation.
            return self._sample_cell_instance(instance_id)
        return SupportInstance(instance_id, tuple(deltas))

    def _sample_cell_instance(self, instance_id: int) -> SupportInstance:
        """One neighbor differing from the base in ``cells_per_instance`` cells."""
        deltas: list[CellDelta] = []
        used: set[tuple[str, int, str]] = set()
        attempts = 0
        while len(deltas) < self.cells_per_instance:
            attempts += 1
            if attempts > 100 * self.cells_per_instance:
                raise SupportError("could not sample enough distinct cells")
            target_index = int(
                self.rng.choice(len(self._targets), p=self._target_probabilities)
            )
            table, column = self._targets[target_index]
            relation: Relation = self.base.table(table)
            row_index = int(self.rng.integers(len(relation)))
            key = (table.lower(), row_index, column.lower())
            if key in used:
                continue
            current = relation.cell(row_index, column)
            replacement = self._perturb_value(table, column, current)
            if replacement == current:
                continue
            used.add(key)
            deltas.append(CellDelta(table, row_index, column, replacement))
        return SupportInstance(instance_id, tuple(deltas))

    def generate(self, size: int) -> SupportSet:
        """A support set of ``size`` sampled neighbors."""
        if size < 0:
            raise SupportError("support size must be non-negative")
        instances = [self.sample_instance(index) for index in range(size)]
        return SupportSet(self.base, instances)
