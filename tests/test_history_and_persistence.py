"""Tests for history-aware (marginal) pricing and JSON persistence."""

import numpy as np
import pytest

from repro.core.pricing import ItemPricing, UniformBundlePricing, XOSPricing
from repro.exceptions import PricingError, SnapshotError
from repro.qirana.history import HistoryAwareLedger
from repro.qirana.persistence import (
    load_market_state,
    load_pricing,
    pricing_from_dict,
    pricing_to_dict,
    save_market_state,
    save_pricing,
)


@pytest.fixture
def item_pricing():
    return ItemPricing([1.0, 2.0, 3.0, 4.0])


class TestHistoryAwareLedger:
    def test_first_purchase_pays_fresh_price(self, item_pricing):
        ledger = HistoryAwareLedger(item_pricing)
        quote = ledger.quote("alice", frozenset({0, 1}))
        assert quote.marginal_price == quote.fresh_price == 3.0
        assert quote.refund == 0.0

    def test_overlap_is_refunded(self, item_pricing):
        ledger = HistoryAwareLedger(item_pricing)
        ledger.record_purchase("alice", frozenset({0, 1}))
        quote = ledger.quote("alice", frozenset({1, 2}))
        assert quote.fresh_price == 5.0
        assert quote.marginal_price == 3.0  # item 1 already owned
        assert quote.refund == 2.0

    def test_fully_owned_bundle_is_free(self, item_pricing):
        ledger = HistoryAwareLedger(item_pricing)
        ledger.record_purchase("alice", frozenset({0, 1, 2}))
        assert ledger.quote("alice", frozenset({1})).marginal_price == 0.0

    def test_histories_are_per_buyer(self, item_pricing):
        ledger = HistoryAwareLedger(item_pricing)
        ledger.record_purchase("alice", frozenset({0}))
        assert ledger.quote("bob", frozenset({0})).marginal_price == 1.0

    def test_telescoping_invariant(self, item_pricing):
        ledger = HistoryAwareLedger(item_pricing)
        rng = np.random.default_rng(0)
        for _ in range(20):
            bundle = frozenset(
                int(x) for x in rng.choice(4, size=rng.integers(1, 4), replace=False)
            )
            ledger.record_purchase("alice", bundle)
        assert ledger.cumulative_price_consistent("alice")

    def test_marginal_never_exceeds_fresh_for_subadditive(self):
        rng = np.random.default_rng(1)
        pricing = XOSPricing([rng.uniform(0, 5, 8) for _ in range(3)])
        ledger = HistoryAwareLedger(pricing)
        ledger.record_purchase("alice", frozenset({0, 1, 2}))
        for _ in range(50):
            bundle = frozenset(
                int(x) for x in rng.choice(8, size=rng.integers(1, 5), replace=False)
            )
            quote = ledger.quote("alice", bundle)
            assert quote.marginal_price <= quote.fresh_price + 1e-9
            assert quote.marginal_price >= -1e-9

    def test_split_purchase_pays_same_as_one_shot(self, item_pricing):
        """Combination arbitrage across sessions is impossible."""
        split = HistoryAwareLedger(item_pricing)
        split.record_purchase("alice", frozenset({0}))
        split.record_purchase("alice", frozenset({1}))
        split.record_purchase("alice", frozenset({0, 1, 2}))
        one_shot = item_pricing.price(frozenset({0, 1, 2}))
        assert split.total_paid["alice"] == pytest.approx(one_shot)

    def test_non_monotone_pricing_detected(self):
        class Bad(ItemPricing):
            def price(self, bundle):
                return -float(len(bundle))

        ledger = HistoryAwareLedger(Bad([0.0, 0.0]))
        ledger.owned["alice"] = frozenset({0}) | frozenset()
        ledger.owned["alice"] = frozenset({0})
        with pytest.raises(PricingError, match="not monotone"):
            # owning {0}, buying {1}: price({0,1}) - price({0}) = -2 + 1 < 0
            ledger.quote("alice", frozenset({1}))


class TestPersistence:
    def test_uniform_roundtrip(self, tmp_path):
        path = tmp_path / "p.json"
        save_pricing(UniformBundlePricing(7.5), path)
        loaded = load_pricing(path)
        assert isinstance(loaded, UniformBundlePricing)
        assert loaded.bundle_price == 7.5

    def test_item_roundtrip(self, tmp_path, item_pricing):
        path = tmp_path / "p.json"
        save_pricing(item_pricing, path)
        loaded = load_pricing(path)
        assert isinstance(loaded, ItemPricing)
        assert np.array_equal(loaded.weights, item_pricing.weights)

    def test_xos_roundtrip(self, tmp_path):
        pricing = XOSPricing([[1.0, 2.0], [3.0, 0.5]])
        path = tmp_path / "p.json"
        save_pricing(pricing, path)
        loaded = load_pricing(path)
        assert isinstance(loaded, XOSPricing)
        for bundle in (frozenset(), frozenset({0}), frozenset({0, 1})):
            assert loaded.price(bundle) == pricing.price(bundle)

    def test_unknown_family_rejected_on_load(self):
        with pytest.raises(PricingError, match="unknown pricing family"):
            pricing_from_dict({"family": "mystery"})

    def test_unknown_family_rejected_on_save(self):
        class Custom(UniformBundlePricing):
            pass

        # Subclasses of known families still serialize (isinstance check).
        assert pricing_to_dict(Custom(1.0))["family"] == "uniform-bundle"

        class Alien:
            pass

        with pytest.raises(PricingError, match="cannot serialize"):
            pricing_to_dict(Alien())

    def test_market_state_roundtrip(self, tmp_path, item_pricing):
        bundles = {
            "select 1 from T": frozenset({1, 2}),
            "select 2 from T": frozenset(),
        }
        path = tmp_path / "market.json"
        save_market_state(item_pricing, bundles, path)
        state = load_market_state(path)
        assert state.bundles == bundles
        assert state.pricing.price(frozenset({1, 2})) == item_pricing.price(
            frozenset({1, 2})
        )
        # Nothing was recorded, so the optional sections load empty.
        assert state.transactions == ()
        assert state.owned == {}
        assert state.total_paid == {}

    def test_market_state_roundtrips_ledgers(self, tmp_path, item_pricing):
        """Regression: transactions + history-aware state survive a restart."""
        from repro.qirana.broker import Transaction
        from repro.qirana.history import HistoryAwareLedger

        ledger = HistoryAwareLedger(item_pricing)
        ledger.record_purchase("alice", frozenset({0, 1}))
        ledger.record_purchase("alice", frozenset({1, 2}))
        ledger.record_purchase("bob", frozenset({3}))
        transactions = [
            Transaction("alice", "select 1 from T", 3.0),
            Transaction("alice", "select 2 from T", 3.0),
            Transaction("bob", "select 3 from T", 4.0),
        ]
        path = tmp_path / "market.json"
        save_market_state(
            item_pricing,
            {"select 1 from T": frozenset({1, 2})},
            path,
            transactions=transactions,
            ledger=ledger,
        )
        state = load_market_state(path)
        assert state.transactions == tuple(transactions)
        assert state.owned == ledger.owned
        assert state.total_paid == pytest.approx(ledger.total_paid)
        # The restored state rebuilds a ledger whose telescoping invariant
        # still holds — returning buyers are not re-charged.
        restored = HistoryAwareLedger(
            state.pricing, dict(state.owned), dict(state.total_paid)
        )
        assert restored.cumulative_price_consistent("alice")
        assert restored.quote("alice", frozenset({0, 1, 2})).marginal_price == 0.0

    def test_market_state_roundtrips_quote_cache(self, tmp_path, item_pricing):
        """The canonical quote cache survives a restart (warm start)."""
        from repro.qirana.persistence import QuoteEntry

        entries = [
            QuoteEntry("a" * 64, "select 1 from T", 3.25, frozenset({0, 2})),
            QuoteEntry("b" * 64, "select 2 from T", 0.0, frozenset()),
        ]
        path = tmp_path / "market.json"
        save_market_state(item_pricing, {}, path, quotes=entries)
        state = load_market_state(path)
        assert state.quotes == tuple(entries)
        # Prices round-trip bit-exactly (JSON floats are repr-faithful).
        assert state.quotes[0].price == 3.25
        assert state.quotes[1].bundle == frozenset()

    def test_legacy_state_without_ledgers_loads(self, tmp_path, item_pricing):
        """Snapshot files from before transactions/history stay readable."""
        import json

        from repro.qirana.persistence import bundles_to_dict, pricing_to_dict

        path = tmp_path / "old.json"
        path.write_text(
            json.dumps(
                {
                    "pricing": pricing_to_dict(item_pricing),
                    "bundles": bundles_to_dict({"q": frozenset({1})}),
                }
            )
        )
        state = load_market_state(path)
        assert state.bundles == {"q": frozenset({1})}
        assert state.transactions == ()
        assert state.owned == {}
        assert state.quotes == ()

    def test_loaded_pricing_prices_quotes_identically(
        self, tmp_path, mini_support
    ):
        from repro.core.algorithms import get_algorithm
        from repro.qirana.broker import QueryMarket

        market = QueryMarket(mini_support)
        queries = ["select Name from Country", "select avg(Population) from Country"]
        market.optimize_pricing(queries, [30.0, 10.0], get_algorithm("lpip"))
        path = tmp_path / "state.json"
        save_market_state(market.pricing, market._bundle_cache, path)

        state = load_market_state(path)
        fresh_market = QueryMarket(mini_support)
        fresh_market.set_pricing(state.pricing)
        fresh_market._bundle_cache.update(state.bundles)
        for sql in queries:
            assert fresh_market.quote(sql).price == pytest.approx(
                market.quote(sql).price
            )


class TestSnapshotErrors:
    """A bad snapshot raises a typed SnapshotError that names the path."""

    def test_missing_file(self, tmp_path):
        path = tmp_path / "nowhere.json"
        with pytest.raises(SnapshotError, match="cannot read snapshot") as info:
            load_market_state(path)
        assert str(path) in str(info.value)

    def test_truncated_file(self, tmp_path, item_pricing):
        path = tmp_path / "market.json"
        save_market_state(item_pricing, {"q": frozenset({1})}, path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # a crash mid-write
        with pytest.raises(SnapshotError, match="not valid JSON") as info:
            load_market_state(path)
        assert str(path) in str(info.value)

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "market.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SnapshotError, match="expected a JSON object"):
            load_market_state(path)

    def test_missing_required_key(self, tmp_path):
        path = tmp_path / "market.json"
        path.write_text('{"bundles": {}}')
        with pytest.raises(SnapshotError, match="KeyError") as info:
            load_market_state(path)
        assert str(path) in str(info.value)

    def test_unknown_pricing_family(self, tmp_path):
        path = tmp_path / "market.json"
        path.write_text('{"pricing": {"family": "quantum"}, "bundles": {}}')
        with pytest.raises(SnapshotError, match="unknown pricing family"):
            load_market_state(path)

    def test_mistyped_quote_entry(self, tmp_path, item_pricing):
        import json as json_module

        path = tmp_path / "market.json"
        save_market_state(item_pricing, {}, path)
        payload = json_module.loads(path.read_text())
        payload["quotes"] = [{"key": "k"}]  # entry missing its fields
        path.write_text(json_module.dumps(payload))
        with pytest.raises(SnapshotError, match="corrupt snapshot"):
            load_market_state(path)

    def test_snapshot_error_is_a_repro_error(self):
        from repro.exceptions import ReproError

        assert issubclass(SnapshotError, ReproError)
