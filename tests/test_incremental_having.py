"""HAVING queries through the incremental conflict machinery.

The planner compiles HAVING into ``Project -> Filter -> Aggregate``; the
incremental matcher must recognize the shape, recompute group visibility
under each patch, and agree with full re-evaluation — including when HAVING
forces aggregates the SELECT list never shows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.query import sql_query
from repro.db.testing import random_star_database
from repro.qirana.conflict import ConflictSetEngine
from repro.qirana.incremental import build_incremental_checker
from repro.support.generator import NeighborSampler

#: The random star schema is ``F(fid, g, x, y)`` + dimension ``D(g, w)``.
HAVING_QUERIES = [
    # Plain group filter on a shown aggregate.
    "select g, count(*) from F group by g having count(*) > 1",
    # HAVING on a select alias.
    "select g, sum(x) as s from F group by g having s > 50",
    # Hidden aggregate: max(x) is never projected.
    "select g from F group by g having max(x) > 10",
    # Scalar aggregate (single group) with HAVING.
    "select count(*) from F having count(*) >= 3",
    # Group-key predicate in HAVING.
    "select g, min(x) from F group by g having g = 'a'",
    # HAVING over a join.
    "select F.g, count(*) from F, D where F.g = D.g "
    "group by F.g having sum(w) > 20",
]


@pytest.fixture(scope="module")
def star():
    rng = np.random.default_rng(7)
    db = random_star_database(rng, fact_rows=30)
    sampler = NeighborSampler(
        db, rng=np.random.default_rng(11), cells_per_instance=1
    )
    return db, sampler.generate(60)


class TestIncrementalHavingDifferential:
    @pytest.mark.parametrize("sql", HAVING_QUERIES)
    def test_incremental_matches_full_evaluation(self, star, sql):
        db, support = star
        query = sql_query(sql, db)
        checker = build_incremental_checker(query, db)
        assert checker is not None, "HAVING shape must compile incrementally"
        baseline = query.run(db)
        decided = 0
        for instance in support:
            decision = checker(instance)
            if decision is None:
                continue
            decided += 1
            patched = instance.materialize(db)
            truth = query.run(patched) != baseline
            assert decision == truth, (sql, instance)
        assert decided > 0  # the checker must actually decide something

    def test_conflict_engine_agrees_with_and_without_incremental(self, star):
        db, support = star
        query = sql_query(HAVING_QUERIES[2], db)
        fast = ConflictSetEngine(support, use_incremental=True).compute(query)
        slow = ConflictSetEngine(support, use_incremental=False).compute(query)
        assert fast.conflict_set == slow.conflict_set
